"""Text and DOT visualisation helpers.

The paper visualises s-line graphs with NetworkX (Figure 5) and plots
log-log degree/edge-count series (Figures 4 and 6).  In an offline,
matplotlib-free environment the equivalents are:

* Graphviz DOT export of hypergraphs (as bipartite graphs) and s-line graphs
  so results can be rendered elsewhere;
* ASCII bar charts and log-scale sparklines for quick terminal inspection,
  used by the example scripts.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

from repro.core.slinegraph import SLineGraph
from repro.hypergraph.hypergraph import Hypergraph


def slinegraph_to_dot(
    graph: SLineGraph,
    h: Optional[Hypergraph] = None,
    name: str = "slinegraph",
    max_penwidth: float = 6.0,
) -> str:
    """Graphviz DOT source for an s-line graph.

    Edge pen widths are proportional to the overlap counts, mirroring the
    paper's Figure 2 where edge width encodes connection strength; node
    labels use the hypergraph's hyperedge names when ``h`` is given.
    """
    lines = [f'graph "{name}" {{', "  node [shape=circle];"]
    nodes = (
        graph.active_vertices.tolist()
        if graph.active_vertices is not None
        else graph.vertex_ids.tolist()
    )
    for node in nodes:
        label = str(h.edge_name(int(node))) if h is not None else str(int(node))
        lines.append(f'  n{int(node)} [label="{label}"];')
    max_weight = int(graph.weights.max()) if graph.num_edges else 1
    for (i, j), w in zip(graph.edges, graph.weights):
        width = 1.0 + (max_penwidth - 1.0) * (int(w) / max_weight)
        lines.append(
            f"  n{int(i)} -- n{int(j)} [penwidth={width:.2f}, label={int(w)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def hypergraph_to_dot(h: Hypergraph, name: str = "hypergraph") -> str:
    """Graphviz DOT source for the bipartite representation ``B(H)``."""
    lines = [f'graph "{name}" {{', "  rankdir=LR;"]
    for e in range(h.num_edges):
        lines.append(f'  e{e} [shape=box, label="{h.edge_name(e)}"];')
    for v in range(h.num_vertices):
        lines.append(f'  v{v} [shape=circle, label="{h.vertex_name(v)}"];')
    for e, members in h.iter_edges():
        for v in members:
            lines.append(f"  e{int(e)} -- v{int(v)};")
    lines.append("}")
    return "\n".join(lines)


def ascii_bar_chart(
    series: Mapping[object, float],
    width: int = 50,
    log_scale: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render ``{label: value}`` as a horizontal ASCII bar chart.

    ``log_scale`` plots ``log10(1 + value)`` — the terminal analogue of the
    paper's log-log Figure 4.
    """
    if not series:
        return title or ""
    values = {k: float(v) for k, v in series.items()}
    transform = (lambda v: math.log10(1.0 + v)) if log_scale else (lambda v: v)
    transformed = {k: transform(v) for k, v in values.items()}
    peak = max(transformed.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [] if title is None else [title]
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * transformed[key] / peak)))
        lines.append(f"{str(key):>{label_width}s} | {bar} {value:g}")
    return "\n".join(lines)


def degree_histogram_ascii(
    degrees: Sequence[int], bins: int = 10, width: int = 40, title: Optional[str] = None
) -> str:
    """ASCII histogram of a degree sequence (equal-width bins)."""
    values = [int(d) for d in degrees]
    if not values:
        return title or "(empty)"
    lo, hi = min(values), max(values)
    bins = max(1, min(bins, hi - lo + 1))
    edges = [lo + (hi - lo + 1) * i / bins for i in range(bins + 1)]
    counts: Dict[str, float] = {}
    for b in range(bins):
        label = f"[{int(edges[b])},{int(edges[b + 1])})"
        counts[label] = 0
    for v in values:
        b = min(bins - 1, int((v - lo) / ((hi - lo + 1) / bins)))
        label = list(counts)[b]
        counts[label] += 1
    return ascii_bar_chart(counts, width=width, title=title)
