"""Top-level dispatch for s-line-graph computations.

:func:`s_line_graph` is the library's main entry point: it selects one of
the registered algorithms by name and returns the computed
:class:`~repro.core.slinegraph.SLineGraph` (optionally with workload
statistics).  :func:`s_line_graph_ensemble` is the multi-``s`` counterpart
built on Algorithm 3.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.algorithms.base import AlgorithmResult
from repro.core.algorithms.ensemble import s_line_graph_ensemble_hashmap
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.core.algorithms.naive import s_line_graph_naive
from repro.core.algorithms.spgemm import s_line_graph_spgemm, s_line_graph_spgemm_upper
from repro.core.algorithms.vectorized import s_line_graph_vectorized
from repro.core.slinegraph import SLineGraph, SLineGraphEnsemble
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.parallel.workload import WorkloadStats
from repro.utils.validation import ValidationError

#: Registered single-s algorithms.  ``naive`` and the SpGEMM variants ignore
#: the parallel configuration (they are inherently single-pass baselines).
ALGORITHMS: Dict[str, str] = {
    "naive": "All-pairs set intersection (correctness oracle)",
    "heuristic": "Algorithm 1: wedge enumeration + set intersection with heuristics",
    "hashmap": "Algorithm 2: hashmap overlap counting (paper's contribution)",
    "vectorized": "Algorithm 2 with NumPy-vectorised counting",
    "spgemm": "SpGEMM+Filter baseline (full H^T H product)",
    "spgemm_upper": "SpGEMM+Filter+Upper baseline (upper-triangular product)",
}


def _run(
    h: Hypergraph, s: int, algorithm: str, config: ParallelConfig
) -> AlgorithmResult:
    if algorithm == "naive":
        return s_line_graph_naive(h, s)
    if algorithm == "heuristic":
        return s_line_graph_heuristic(h, s, config=config)
    if algorithm == "hashmap":
        return s_line_graph_hashmap(h, s, config=config)
    if algorithm == "vectorized":
        return s_line_graph_vectorized(h, s, config=config)
    if algorithm == "spgemm":
        return s_line_graph_spgemm(h, s)
    if algorithm == "spgemm_upper":
        return s_line_graph_spgemm_upper(h, s)
    raise ValidationError(
        f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
    )


def s_line_graph(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    return_workload: bool = False,
) -> Union[SLineGraph, Tuple[SLineGraph, WorkloadStats]]:
    """Compute the s-line graph ``L_s(H)`` of a hypergraph.

    Parameters
    ----------
    h:
        Input hypergraph.
    s:
        Overlap threshold (``>= 1``); ``s = 1`` on the dual hypergraph gives
        the classic clique expansion.
    algorithm:
        One of :data:`ALGORITHMS` (default ``"hashmap"``, the paper's
        Algorithm 2).
    config:
        Optional :class:`~repro.parallel.executor.ParallelConfig` controlling
        partitioning, worker count and backend.
    return_workload:
        When True, also return the per-worker :class:`WorkloadStats`.

    Examples
    --------
    >>> from repro.hypergraph import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]])
    >>> s_line_graph(h, s=2).edge_set()
    {(0, 1), (0, 2), (1, 2)}
    """
    result = _run(h, s, algorithm, config or ParallelConfig())
    if return_workload:
        return result.graph, result.workload
    return result.graph


def s_line_graph_ensemble(
    h: Hypergraph,
    s_values: Sequence[int],
    config: Optional[ParallelConfig] = None,
    memory_budget_bytes: Optional[int] = None,
    return_workload: bool = False,
) -> Union[SLineGraphEnsemble, Tuple[SLineGraphEnsemble, WorkloadStats]]:
    """Compute s-line graphs for several ``s`` values in one pass (Algorithm 3).

    See :func:`repro.core.algorithms.ensemble.s_line_graph_ensemble_hashmap`
    for the memory-budget semantics.
    """
    ensemble, workload = s_line_graph_ensemble_hashmap(
        h,
        s_values,
        config=config or ParallelConfig(),
        memory_budget_bytes=memory_budget_bytes,
    )
    if return_workload:
        return ensemble, workload
    return ensemble
