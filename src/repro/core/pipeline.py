"""The five-stage s-line-graph framework (Section IV of the paper).

Stage 1  Pre-processing: remove empty hyperedges / isolated vertices and
         optionally relabel hyperedges by degree.
Stage 2  (optional) Toplex computation: keep only maximal hyperedges.
Stage 3  s-overlap: compute the edge list of the s-line graph with one of
         the registered algorithms.
Stage 4  (optional) ID squeezing: remap the hypersparse hyperedge-ID space
         of the line graph to a contiguous range and build the graph.
Stage 5  s-metric computation: run graph analytics (connected components,
         LPCC, betweenness, PageRank, …) on the squeezed s-line graph.

:class:`SLinePipeline` mirrors this structure and records a per-stage timing
breakdown compatible with the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.engine.engine import QueryEngine

import numpy as np

from repro.core.dispatch import s_line_graph as _dispatch_s_line_graph
from repro.core.dispatch import ALGORITHMS
from repro.core.slinegraph import SLineGraph
from repro.graph.betweenness import betweenness_centrality
from repro.graph.connected_components import (
    connected_components,
    label_propagation_components,
)
from repro.graph.distance import closeness_centrality, eccentricity
from repro.graph.graph import Graph
from repro.graph.pagerank import pagerank
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.preprocessing import (
    PreprocessResult,
    RelabelOrder,
    SqueezeResult,
    preprocess,
)
from repro.hypergraph.toplexes import simplify
from repro.parallel.executor import ParallelConfig
from repro.parallel.workload import WorkloadStats
from repro.utils.timing import StageTimes
from repro.utils.validation import ValidationError, check_s_value

#: Metric name → callable(Graph) -> result.  All metrics run on the squeezed
#: s-line graph; results are arrays over the squeezed vertex IDs.
METRIC_FUNCTIONS: Dict[str, Callable[[Graph], np.ndarray]] = {
    "connected_components": connected_components,
    "lpcc": label_propagation_components,
    "betweenness": betweenness_centrality,
    "closeness": closeness_centrality,
    "eccentricity": eccentricity,
    "pagerank": pagerank,
}


@dataclass
class PipelineResult:
    """Everything produced by one end-to-end pipeline run."""

    s: int
    line_graph: SLineGraph
    squeezed_graph: Optional[Graph]
    squeeze_mapping: Optional[SqueezeResult]
    metrics: Dict[str, np.ndarray] = field(default_factory=dict)
    stage_times: StageTimes = field(default_factory=StageTimes)
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    preprocess_info: Optional[PreprocessResult] = None

    @property
    def num_line_graph_edges(self) -> int:
        """Edges in the computed s-line graph."""
        return self.line_graph.num_edges

    def num_components(self) -> Optional[int]:
        """Number of s-connected components (if a component metric was computed)."""
        for key in ("connected_components", "lpcc"):
            if key in self.metrics and self.metrics[key].size:
                return int(self.metrics[key].max()) + 1
        if "connected_components" in self.metrics or "lpcc" in self.metrics:
            return 0
        return None

    def metric_by_hyperedge(self, metric: str) -> Dict[int, float]:
        """Map a squeezed-graph metric back to original hyperedge IDs."""
        if metric not in self.metrics:
            raise KeyError(f"metric {metric!r} was not computed")
        values = self.metrics[metric]
        if self.squeeze_mapping is None:
            return {int(i): float(v) for i, v in enumerate(values)}
        return {
            int(self.squeeze_mapping.new_to_old[i]): float(v)
            for i, v in enumerate(values)
        }


class SLinePipeline:
    """Configurable five-stage s-line-graph pipeline.

    Parameters
    ----------
    algorithm:
        Stage-3 algorithm name (see :data:`repro.core.dispatch.ALGORITHMS`).
    relabel:
        Stage-1 relabel-by-degree order ("ascending", "descending", "none").
    compute_toplexes:
        Run the optional Stage 2 simplification.
    squeeze:
        Run the optional Stage 4 ID squeezing (required for Stage-5 metrics).
    metrics:
        Names of Stage-5 metrics (keys of :data:`METRIC_FUNCTIONS`).
    config:
        Parallel configuration forwarded to the Stage-3 algorithm.
    engine:
        Optional :class:`repro.engine.QueryEngine` built over the same
        hypergraph.  When set, Stage 3 is served from the engine's overlap
        index (a cached threshold view) instead of being recomputed, and
        Stage 4/5 results are shared with the engine's cache.  Incompatible
        with ``compute_toplexes`` (the index describes the unsimplified
        hypergraph).
    store_path:
        Optional path of a persistent index store
        (:class:`repro.store.IndexStore`).  The first :meth:`run` builds
        the overlap index once and persists it there; every later run —
        including in a *new process* — reuses the snapshot instead of
        recomputing, provided the hypergraph fingerprint matches (a stale
        snapshot for a different hypergraph is rebuilt in place).  Mutually
        exclusive with ``engine`` and ``compute_toplexes``.

    Examples
    --------
    >>> from repro.hypergraph import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]])
    >>> result = SLinePipeline(metrics=("connected_components",)).run(h, s=2)
    >>> result.num_line_graph_edges
    3
    """

    def __init__(
        self,
        algorithm: str = "hashmap",
        relabel: RelabelOrder = "none",
        compute_toplexes: bool = False,
        squeeze: bool = True,
        metrics: Sequence[str] = ("connected_components",),
        config: Optional[ParallelConfig] = None,
        drop_empty_edges: bool = True,
        drop_isolated_vertices: bool = True,
        engine: Optional["QueryEngine"] = None,
        store_path: Optional[str] = None,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
            )
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise ValidationError(
                f"unknown metrics {unknown}; available: {sorted(METRIC_FUNCTIONS)}"
            )
        if metrics and not squeeze:
            raise ValidationError("Stage-5 metrics require squeeze=True")
        if (engine is not None or store_path is not None) and compute_toplexes:
            raise ValidationError(
                "engine/store reuse is incompatible with compute_toplexes: "
                "the overlap index describes the unsimplified hypergraph"
            )
        if engine is not None and store_path is not None:
            raise ValidationError(
                "pass either engine= or store_path=, not both (a persistent "
                "engine can be opened with QueryEngine.from_store)"
            )
        self.engine = engine
        self.store_path = None if store_path is None else str(store_path)
        self._store_engine: Optional["QueryEngine"] = None
        self.algorithm = algorithm
        self.relabel: RelabelOrder = relabel
        self.compute_toplexes = compute_toplexes
        self.squeeze = squeeze
        self.metrics = tuple(metrics)
        self.config = config or ParallelConfig()
        self.drop_empty_edges = drop_empty_edges
        self.drop_isolated_vertices = drop_isolated_vertices

    def run(self, h: Hypergraph, s: int) -> PipelineResult:
        """Execute all configured stages on ``h`` for overlap threshold ``s``."""
        s = check_s_value(s)
        if self.engine is not None:
            return self._run_via_engine(h, s, self.engine)
        if self.store_path is not None:
            return self._run_via_engine(h, s, self._engine_for_store(h))
        times = StageTimes()

        # Stage 1 — preprocessing.
        with times.stage("preprocessing"):
            prep = preprocess(
                h,
                relabel=self.relabel,
                drop_empty_edges=self.drop_empty_edges,
                drop_isolated_vertices=self.drop_isolated_vertices,
            )
        working = prep.hypergraph

        # Stage 2 — optional toplex simplification.
        if self.compute_toplexes:
            with times.stage("toplexes"):
                working = simplify(working)

        # Stage 3 — s-overlap computation.
        with times.stage("s_overlap"):
            graph, workload = _dispatch_s_line_graph(
                working,
                s,
                algorithm=self.algorithm,
                config=self.config,
                return_workload=True,
            )

        # Map the edge IDs back to the IDs of the *input* hypergraph whenever
        # the mapping is well defined (no toplex simplification, which drops
        # edges irreversibly with respect to contiguous numbering).
        line_graph = graph
        if not self.compute_toplexes:
            line_graph = self._restore_original_ids(graph, prep, h.num_edges)

        # Stage 4 — ID squeezing and graph construction.
        squeezed_graph: Optional[Graph] = None
        mapping: Optional[SqueezeResult] = None
        if self.squeeze:
            with times.stage("squeeze"):
                squeezed_line, mapping = line_graph.squeeze()
                squeezed_graph = squeezed_line.to_graph(squeezed=False)

        # Stage 5 — s-metric computation.
        metric_results: Dict[str, np.ndarray] = {}
        if self.metrics and squeezed_graph is not None:
            for name in self.metrics:
                with times.stage(name):
                    metric_results[name] = METRIC_FUNCTIONS[name](squeezed_graph)

        return PipelineResult(
            s=s,
            line_graph=line_graph,
            squeezed_graph=squeezed_graph,
            squeeze_mapping=mapping,
            metrics=metric_results,
            stage_times=times,
            workload=workload,
            preprocess_info=prep,
        )

    def _engine_for_store(self, h: Hypergraph) -> "QueryEngine":
        """The persist/reuse path: open (or build) the store-backed engine.

        The engine is cached across runs; a different hypergraph than the
        cached one re-opens the store, rebuilding its snapshot in place when
        the fingerprints disagree (stale persisted index).
        """
        from repro.engine.engine import QueryEngine

        cached = self._store_engine
        if cached is not None and (
            h is cached.hypergraph or h.fingerprint() == cached.fingerprint()
        ):
            return cached
        self._store_engine = QueryEngine.from_store(
            self.store_path,
            hypergraph=h,
            create=True,
            on_mismatch="rebuild",
            algorithm=self.algorithm,
            config=self.config,
        )
        return self._store_engine

    def _run_via_engine(
        self, h: Hypergraph, s: int, engine: "QueryEngine"
    ) -> PipelineResult:
        """Serve Stage 3–5 from the engine's overlap index and result cache.

        Pairwise overlaps are invariant under Stage-1 preprocessing (dropping
        empty hyperedges / isolated vertices and relabelling never change
        ``inc(e_i, e_j)``, and the pipeline maps IDs back to the input
        hypergraph anyway), so the engine's threshold view *is* the Stage-3
        result in original IDs.  Stage 1 still runs for its diagnostics.
        """
        if h is not engine.hypergraph and h.fingerprint() != engine.fingerprint():
            raise ValidationError(
                "engine reuse requires the same hypergraph the engine serves "
                "(fingerprints differ)"
            )
        times = StageTimes()
        with times.stage("preprocessing"):
            prep = preprocess(
                h,
                relabel=self.relabel,
                drop_empty_edges=self.drop_empty_edges,
                drop_isolated_vertices=self.drop_isolated_vertices,
            )
        with times.stage("s_overlap"):
            line_graph = engine.line_graph(s)

        squeezed_graph: Optional[Graph] = None
        mapping: Optional[SqueezeResult] = None
        if self.squeeze:
            with times.stage("squeeze"):
                squeezed_graph, mapping = engine.squeezed_graph(s)

        metric_results: Dict[str, np.ndarray] = {}
        if self.metrics and squeezed_graph is not None:
            for name in self.metrics:
                with times.stage(name):
                    metric_results[name] = engine.metric(s, name)

        return PipelineResult(
            s=s,
            line_graph=line_graph,
            squeezed_graph=squeezed_graph,
            squeeze_mapping=mapping,
            metrics=metric_results,
            stage_times=times,
            workload=engine.index.workload,
            preprocess_info=prep,
        )

    @staticmethod
    def _restore_original_ids(
        graph: SLineGraph, prep: PreprocessResult, num_original_edges: int
    ) -> SLineGraph:
        """Translate algorithm edge IDs back through relabelling and edge dropping."""
        # Chain: algorithm id --(relabel new→old)--> preprocessed id
        #        --(kept_edge_ids)--> original id.
        if prep.kept_edge_ids is not None:
            kept = prep.kept_edge_ids
        else:
            kept = np.arange(num_original_edges, dtype=np.int64)
        if prep.relabel is not None:
            to_pre = prep.relabel.new_to_old
        else:
            to_pre = np.arange(kept.size, dtype=np.int64)
        full_map = kept[to_pre]
        edges = full_map[graph.edges] if graph.num_edges else graph.edges
        active = (
            full_map[graph.active_vertices]
            if graph.active_vertices is not None
            else None
        )
        return SLineGraph(
            s=graph.s,
            edges=edges,
            weights=graph.weights.copy(),
            num_hyperedges=num_original_edges,
            active_vertices=active,
        )
