"""Boolean filtration of weighted overlap structures (Section II-B).

Given the weighted hyperedge adjacency matrix ``L = H^T H`` (or any
collection of weighted overlap pairs), the s-line graph is obtained by the
Boolean filtration ``L_s[i, j] = 1 iff L[i, j] >= s`` with the diagonal
removed.  These helpers implement the filtration both on scipy matrices and
on weighted edge lists, and are reused by the ensemble algorithm and the
SpGEMM baselines.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np
from scipy import sparse

from repro.core.slinegraph import SLineGraph
from repro.utils.validation import check_s_value


def filtration_matrix(weighted: sparse.spmatrix, s: int) -> sparse.csr_matrix:
    """Boolean filtration of a weighted adjacency matrix at threshold ``s``.

    Off-diagonal entries ``>= s`` become 1; everything else (including the
    diagonal, which holds edge sizes in ``H^T H``) becomes 0.
    """
    s = check_s_value(s)
    coo = sparse.coo_matrix(weighted)
    mask = (coo.row != coo.col) & (coo.data >= s)
    out = sparse.coo_matrix(
        (np.ones(int(mask.sum()), dtype=np.int8), (coo.row[mask], coo.col[mask])),
        shape=coo.shape,
    )
    return out.tocsr()


def filter_weighted_edges(
    pairs: Iterable[Tuple[int, int, int]],
    s: int,
    num_hyperedges: int,
    active_vertices: np.ndarray | None = None,
) -> SLineGraph:
    """Filter ``(i, j, overlap)`` triples at threshold ``s`` into an :class:`SLineGraph`."""
    s = check_s_value(s)
    kept: List[Tuple[int, int, int]] = [
        (int(i), int(j), int(w)) for i, j, w in pairs if int(w) >= s
    ]
    return SLineGraph.from_weighted_pairs(
        s=s, pairs=kept, num_hyperedges=num_hyperedges, active_vertices=active_vertices
    )


def filter_weighted_arrays(
    edges: np.ndarray,
    weights: np.ndarray,
    s: int,
    num_hyperedges: int,
    active_vertices: np.ndarray | None = None,
) -> SLineGraph:
    """Vectorised filtration of a ``(k, 2)`` pair array at threshold ``s``.

    The array counterpart of :func:`filter_weighted_edges`, used by the
    :class:`repro.engine.OverlapIndex` hot path: given all weighted overlap
    pairs as flat arrays, keep those with ``weight >= s`` without a Python
    loop.
    """
    s = check_s_value(s)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    weights = np.asarray(weights, dtype=np.int64)
    if weights.size != edges.shape[0]:
        raise ValueError("weights length must equal the number of pairs")
    mask = weights >= s
    return SLineGraph(
        s=s,
        edges=edges[mask],
        weights=weights[mask],
        num_hyperedges=num_hyperedges,
        active_vertices=active_vertices,
    )


def line_graph_from_filtration(h, s: int, index=None) -> SLineGraph:
    """Build ``L_s(H)`` directly from the filtration of ``L = H^T H``.

    A convenience wrapper used in tests as yet another independent oracle.
    When an :class:`repro.engine.OverlapIndex` built from ``h`` is passed as
    ``index``, the filtration is delegated to its precomputed weight-sorted
    pair store instead of re-multiplying ``H^T H``.
    """
    from repro.core.algorithms.base import active_hyperedges
    from repro.hypergraph.incidence import line_graph_weight_matrix

    s = check_s_value(s)
    if index is not None:
        if index.num_hyperedges != h.num_edges or not np.array_equal(
            index.edge_sizes, h.edge_sizes()
        ):
            raise ValueError(
                "index does not describe this hypergraph (hyperedge count or "
                "sizes differ)"
            )
        return index.line_graph(s)
    L = line_graph_weight_matrix(h)
    coo = sparse.coo_matrix(L)
    mask = (coo.row < coo.col) & (coo.data >= s)
    pairs = [
        (int(i), int(j), int(v))
        for i, j, v in zip(coo.row[mask], coo.col[mask], coo.data[mask])
    ]
    return SLineGraph.from_weighted_pairs(
        s=s,
        pairs=pairs,
        num_hyperedges=h.num_edges,
        active_vertices=active_hyperedges(h, s),
    )
