"""Boolean filtration of weighted overlap structures (Section II-B).

Given the weighted hyperedge adjacency matrix ``L = H^T H`` (or any
collection of weighted overlap pairs), the s-line graph is obtained by the
Boolean filtration ``L_s[i, j] = 1 iff L[i, j] >= s`` with the diagonal
removed.  These helpers implement the filtration both on scipy matrices and
on weighted edge lists, and are reused by the ensemble algorithm and the
SpGEMM baselines.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np
from scipy import sparse

from repro.core.slinegraph import SLineGraph
from repro.utils.validation import check_s_value


def filtration_matrix(weighted: sparse.spmatrix, s: int) -> sparse.csr_matrix:
    """Boolean filtration of a weighted adjacency matrix at threshold ``s``.

    Off-diagonal entries ``>= s`` become 1; everything else (including the
    diagonal, which holds edge sizes in ``H^T H``) becomes 0.
    """
    s = check_s_value(s)
    coo = sparse.coo_matrix(weighted)
    mask = (coo.row != coo.col) & (coo.data >= s)
    out = sparse.coo_matrix(
        (np.ones(int(mask.sum()), dtype=np.int8), (coo.row[mask], coo.col[mask])),
        shape=coo.shape,
    )
    return out.tocsr()


def filter_weighted_edges(
    pairs: Iterable[Tuple[int, int, int]],
    s: int,
    num_hyperedges: int,
    active_vertices: np.ndarray | None = None,
) -> SLineGraph:
    """Filter ``(i, j, overlap)`` triples at threshold ``s`` into an :class:`SLineGraph`."""
    s = check_s_value(s)
    kept: List[Tuple[int, int, int]] = [
        (int(i), int(j), int(w)) for i, j, w in pairs if int(w) >= s
    ]
    return SLineGraph.from_weighted_pairs(
        s=s, pairs=kept, num_hyperedges=num_hyperedges, active_vertices=active_vertices
    )


def line_graph_from_filtration(h, s: int) -> SLineGraph:
    """Build ``L_s(H)`` directly from the filtration of ``L = H^T H``.

    A convenience wrapper used in tests as yet another independent oracle.
    """
    from repro.core.algorithms.base import active_hyperedges
    from repro.hypergraph.incidence import line_graph_weight_matrix

    s = check_s_value(s)
    L = line_graph_weight_matrix(h)
    coo = sparse.coo_matrix(L)
    mask = (coo.row < coo.col) & (coo.data >= s)
    pairs = [
        (int(i), int(j), int(v))
        for i, j, v in zip(coo.row[mask], coo.col[mask], coo.data[mask])
    ]
    return SLineGraph.from_weighted_pairs(
        s=s,
        pairs=pairs,
        num_hyperedges=h.num_edges,
        active_vertices=active_hyperedges(h, s),
    )
