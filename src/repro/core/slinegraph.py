"""Result types for s-line-graph computations.

An *s-line graph* ``L_s(H) = <E_s, F>`` has one vertex per hyperedge of
``H`` with ``|e| >= s`` and an (undirected) edge ``{e_i, e_j}`` whenever the
two hyperedges share at least ``s`` vertices.  We keep the overlap count
``inc(e_i, e_j)`` as the edge weight (the paper's Figure 2 draws edge widths
proportional to it).

:class:`SLineGraph` stores the edge list in *original hyperedge IDs*; the ID
squeezing of Stage 4 and conversion to graph structures are offered as
methods so downstream s-metric code can operate on a compact graph while
still reporting results in terms of the original hyperedges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.hypergraph.preprocessing import SqueezeResult, squeeze_ids
from repro.utils.validation import ValidationError, check_array_int, check_s_value


def _normalise_edges(
    edges: np.ndarray | Sequence[Tuple[int, int]],
    weights: Optional[np.ndarray | Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalise an undirected edge list: (i, j) with i < j, sorted, deduplicated."""
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError("edges must be an array of shape (k, 2)")
    if weights is None:
        w = np.ones(arr.shape[0], dtype=np.int64)
    else:
        w = check_array_int(weights, "weights")
        if w.size != arr.shape[0]:
            raise ValidationError("weights length must equal the number of edges")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    if np.any(lo == hi):
        raise ValidationError("self-loops are not allowed in an s-line graph")
    order = np.lexsort((hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    keep = np.ones(lo.size, dtype=bool)
    keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    if not np.all(keep):
        # Duplicate undirected edges: keep the maximum recorded weight.
        group = np.cumsum(keep) - 1
        max_w = np.zeros(int(group[-1]) + 1, dtype=np.int64)
        np.maximum.at(max_w, group, w)
        lo, hi = lo[keep], hi[keep]
        w = max_w
    return np.column_stack([lo, hi]), w


@dataclass
class SLineGraph:
    """An s-line graph as an undirected, weighted edge list over hyperedge IDs.

    Attributes
    ----------
    s:
        The overlap threshold used to build this graph.
    edges:
        ``(k, 2)`` int64 array; each row ``(i, j)`` with ``i < j`` is an
        undirected edge between hyperedges ``i`` and ``j`` of the original
        hypergraph.
    weights:
        Length-``k`` int64 array of overlap counts ``inc(e_i, e_j) >= s``.
    num_hyperedges:
        Number of hyperedges in the source hypergraph (defines the un-squeezed
        vertex-ID space).
    active_vertices:
        IDs of hyperedges with ``|e| >= s`` — the vertex set ``E_s`` of the
        s-line graph (isolated vertices included).
    """

    s: int
    edges: np.ndarray
    weights: np.ndarray
    num_hyperedges: int
    active_vertices: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.s = check_s_value(self.s)
        self.edges, self.weights = _normalise_edges(self.edges, self.weights)
        if self.num_hyperedges < 0:
            raise ValidationError("num_hyperedges must be non-negative")
        if self.edges.size and int(self.edges.max()) >= self.num_hyperedges:
            raise ValidationError("edge endpoint exceeds num_hyperedges")
        if self.weights.size and int(self.weights.min()) < self.s:
            raise ValidationError("all edge weights must be >= s")
        if self.active_vertices is not None:
            self.active_vertices = np.unique(
                check_array_int(self.active_vertices, "active_vertices")
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_weighted_pairs(
        cls,
        s: int,
        pairs: Iterable[Tuple[int, int, int]],
        num_hyperedges: int,
        active_vertices: Optional[np.ndarray] = None,
    ) -> "SLineGraph":
        """Build from an iterable of ``(i, j, overlap_count)`` triples."""
        pairs = list(pairs)
        if not pairs:
            return cls(
                s=s,
                edges=np.empty((0, 2), dtype=np.int64),
                weights=np.empty(0, dtype=np.int64),
                num_hyperedges=num_hyperedges,
                active_vertices=active_vertices,
            )
        arr = np.asarray(pairs, dtype=np.int64)
        return cls(
            s=s,
            edges=arr[:, :2],
            weights=arr[:, 2],
            num_hyperedges=num_hyperedges,
            active_vertices=active_vertices,
        )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of edges in the s-line graph."""
        return int(self.edges.shape[0])

    @property
    def vertex_ids(self) -> np.ndarray:
        """Hyperedge IDs that appear as endpoints of at least one edge."""
        if self.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.edges.ravel())

    @property
    def num_active_vertices(self) -> int:
        """Size of the vertex set ``E_s`` (falls back to non-isolated endpoints)."""
        if self.active_vertices is not None:
            return int(self.active_vertices.size)
        return int(self.vertex_ids.size)

    def degree_of(self, hyperedge_id: int) -> int:
        """Degree of a hyperedge in the s-line graph."""
        if self.num_edges == 0:
            return 0
        return int(np.count_nonzero(self.edges == hyperedge_id))

    def edge_set(self) -> set[Tuple[int, int]]:
        """The edge list as a set of ``(i, j)`` tuples with ``i < j``."""
        return {(int(i), int(j)) for i, j in self.edges}

    def weight_map(self) -> Dict[Tuple[int, int], int]:
        """Mapping ``(i, j) -> overlap count`` with ``i < j``."""
        return {
            (int(i), int(j)): int(w)
            for (i, j), w in zip(self.edges, self.weights)
        }

    # ------------------------------------------------------------------ #
    # Stage-4 squeezing and graph conversion
    # ------------------------------------------------------------------ #
    def squeeze(self, include_isolated: bool = False) -> Tuple["SLineGraph", SqueezeResult]:
        """Remap the vertex IDs to a contiguous range (Stage 4 of the framework).

        Parameters
        ----------
        include_isolated:
            When True, hyperedges in ``active_vertices`` that have no
            incident edges are retained as isolated vertices of the squeezed
            graph; otherwise only edge endpoints are kept (the paper's
            default, since hypersparse rows are dropped).

        Returns
        -------
        (squeezed_graph, squeeze_result):
            The squeezed :class:`SLineGraph` (IDs ``0..k-1``) and the ID
            mapping.
        """
        if include_isolated and self.active_vertices is not None:
            id_pool = np.union1d(self.vertex_ids, self.active_vertices)
        else:
            id_pool = self.vertex_ids
        squeezer = squeeze_ids(id_pool) if id_pool.size else SqueezeResult(
            new_to_old=np.empty(0, dtype=np.int64), old_to_new={}
        )
        if self.num_edges:
            lookup = np.full(self.num_hyperedges, -1, dtype=np.int64)
            lookup[squeezer.new_to_old] = np.arange(squeezer.num_ids, dtype=np.int64)
            new_edges = lookup[self.edges]
        else:
            new_edges = np.empty((0, 2), dtype=np.int64)
        squeezed = SLineGraph(
            s=self.s,
            edges=new_edges,
            weights=self.weights.copy(),
            num_hyperedges=max(squeezer.num_ids, 1) if squeezer.num_ids else 0,
            active_vertices=np.arange(squeezer.num_ids, dtype=np.int64),
        )
        return squeezed, squeezer

    def adjacency_matrix(
        self, squeezed: bool = False, weighted: bool = False
    ) -> sparse.csr_matrix:
        """The symmetric adjacency matrix of the s-line graph.

        Parameters
        ----------
        squeezed:
            When True, the matrix is over the compact ID space returned by
            :meth:`squeeze`; otherwise over ``num_hyperedges`` IDs.
        weighted:
            When True entries hold the overlap counts, otherwise 1.
        """
        if squeezed:
            graph, _ = self.squeeze()
            return graph.adjacency_matrix(squeezed=False, weighted=weighted)
        n = self.num_hyperedges
        if self.num_edges == 0:
            return sparse.csr_matrix((n, n), dtype=np.int64)
        vals = self.weights if weighted else np.ones(self.num_edges, dtype=np.int64)
        i, j = self.edges[:, 0], self.edges[:, 1]
        mat = sparse.coo_matrix(
            (np.concatenate([vals, vals]), (np.concatenate([i, j]), np.concatenate([j, i]))),
            shape=(n, n),
        )
        return mat.tocsr()

    def to_graph(self, squeezed: bool = True):
        """Convert to a :class:`repro.graph.Graph` (CSR graph substrate)."""
        from repro.graph.graph import Graph

        source = self
        mapping = None
        if squeezed:
            source, mapping = self.squeeze()
        graph = Graph.from_edge_list(
            num_vertices=source.num_hyperedges if not squeezed else source.num_active_vertices,
            edges=source.edges,
            weights=source.weights,
        )
        graph.metadata["s"] = self.s
        if mapping is not None:
            graph.metadata["squeeze"] = mapping
        return graph

    def to_networkx(self, use_original_ids: bool = True):
        """Convert to a weighted :mod:`networkx` graph (edge attribute ``weight``)."""
        import networkx as nx

        g = nx.Graph(s=self.s)
        if use_original_ids and self.active_vertices is not None:
            g.add_nodes_from(int(v) for v in self.active_vertices)
        for (i, j), w in zip(self.edges, self.weights):
            g.add_edge(int(i), int(j), weight=int(w))
        return g

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SLineGraph):
            return NotImplemented
        return (
            self.s == other.s
            and self.num_hyperedges == other.num_hyperedges
            and np.array_equal(self.edges, other.edges)
            and np.array_equal(self.weights, other.weights)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SLineGraph(s={self.s}, num_edges={self.num_edges}, "
            f"num_hyperedges={self.num_hyperedges})"
        )


@dataclass
class SLineGraphEnsemble:
    """A family of s-line graphs computed from a single overlap-counting pass.

    Produced by Algorithm 3; indexable by ``s``.
    """

    graphs: Dict[int, SLineGraph] = field(default_factory=dict)

    def __getitem__(self, s: int) -> SLineGraph:
        return self.graphs[int(s)]

    def __contains__(self, s: int) -> bool:
        return int(s) in self.graphs

    def __len__(self) -> int:
        return len(self.graphs)

    @property
    def s_values(self) -> List[int]:
        """The sorted list of s values in the ensemble."""
        return sorted(self.graphs)

    def edge_counts(self) -> Dict[int, int]:
        """Mapping ``s -> number of edges`` (the quantity plotted in Figure 4)."""
        return {s: self.graphs[s].num_edges for s in self.s_values}

    def items(self):
        """Iterate ``(s, SLineGraph)`` pairs in increasing s."""
        for s in self.s_values:
            yield s, self.graphs[s]
