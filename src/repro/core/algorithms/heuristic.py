"""Algorithm 1 of the paper: wedge enumeration + explicit set intersection.

This is the prior state-of-the-art algorithm (Liu et al., HiPC'21) that the
paper's hashmap algorithms are compared against.  For every hyperedge
``e_i`` (degree-pruned), the algorithm walks the wedges ``(e_i, v_k, e_j)``
with ``j > i`` and, for every *distinct* neighbour ``e_j`` reached this way,
performs a set intersection of the two hyperedges' vertex lists.  The
heuristics of the original algorithm are reproduced:

* **degree-based pruning** — skip hyperedges with ``|e| < s`` on both sides;
* **skipping already-visited hyperedges** — each ``e_j`` is intersected at
  most once per ``e_i`` even if multiple wedges lead to it;
* **short-circuiting** — the merge-based intersection stops as soon as the
  threshold ``s`` is reached (optional, because it yields weights truncated
  to ``s``) or as soon as the remaining elements cannot reach ``s``;
* **upper triangle only** — wedges are traversed with ``j > i`` only.

The number of set intersections performed is reported in the workload
counters (the paper's Table I reports 8.66×10⁹ of them for LiveJournal).
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, build_result
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig, run_partitioned
from repro.parallel.workload import WorkerCounters
from repro.utils.validation import check_s_value


def _sorted_intersection_count(
    a: np.ndarray, b: np.ndarray, s: int, short_circuit: bool
) -> int:
    """Merge-count of common elements of two sorted arrays.

    Always abandons the merge when the remaining elements cannot reach ``s``
    (a pure pruning optimisation that never changes the outcome).  When
    ``short_circuit`` is True it additionally returns as soon as ``s``
    common elements are found, in which case the returned count is a lower
    bound truncated at ``s`` (exactly what the original algorithm does).
    """
    i = j = 0
    count = 0
    na, nb = a.size, b.size
    while i < na and j < nb:
        # Failure short-circuit: not enough elements left to reach s.
        if count + min(na - i, nb - j) < s:
            return count
        ai, bj = a[i], b[j]
        if ai == bj:
            count += 1
            if short_circuit and count >= s:
                return count
            i += 1
            j += 1
        elif ai < bj:
            i += 1
        else:
            j += 1
    return count


def _heuristic_kernel(
    edge_indptr: np.ndarray,
    edge_indices: np.ndarray,
    vertex_indptr: np.ndarray,
    vertex_indices: np.ndarray,
    edge_sizes: np.ndarray,
    s: int,
    short_circuit: bool,
    edge_ids: np.ndarray,
    worker_id: int,
) -> Tuple[List[Tuple[int, int, int]], WorkerCounters]:
    """Per-partition body of Algorithm 1 (module-level so it pickles for processes)."""
    pairs: List[Tuple[int, int, int]] = []
    counters = WorkerCounters(worker_id=worker_id)
    for i in edge_ids:
        i = int(i)
        if edge_sizes[i] < s:
            continue
        counters.edges_processed += 1
        members_i = edge_indices[edge_indptr[i] : edge_indptr[i + 1]]
        visited: set[int] = set()
        for v in members_i:
            start, stop = vertex_indptr[v], vertex_indptr[v + 1]
            for j in vertex_indices[start:stop]:
                j = int(j)
                counters.wedges_visited += 1
                if j <= i or j in visited:
                    continue
                visited.add(j)
                if edge_sizes[j] < s:
                    continue
                members_j = edge_indices[edge_indptr[j] : edge_indptr[j + 1]]
                counters.set_intersections += 1
                count = _sorted_intersection_count(members_i, members_j, s, short_circuit)
                if count >= s:
                    pairs.append((i, j, count))
                    counters.line_edges_emitted += 1
    return pairs, counters


def s_line_graph_heuristic(
    h: Hypergraph,
    s: int,
    config: ParallelConfig = ParallelConfig(),
    short_circuit: bool = False,
) -> AlgorithmResult:
    """Compute ``L_s(H)`` with Algorithm 1 (set-intersection + heuristics).

    Parameters
    ----------
    h:
        Input hypergraph.
    s:
        Overlap threshold.
    config:
        Partitioning of the outer hyperedge loop (blocked/cyclic, worker
        count, backend).
    short_circuit:
        Stop each intersection as soon as ``s`` common vertices are found.
        This matches the original algorithm but truncates edge weights at
        ``s``; leave False when exact overlap counts are needed.
    """
    s = check_s_value(s)
    kernel = partial(
        _heuristic_kernel,
        h.edges_csr.indptr,
        h.edges_csr.indices,
        h.vertices_csr.indptr,
        h.vertices_csr.indices,
        h.edge_sizes(),
        s,
        short_circuit,
    )
    results = run_partitioned(kernel, np.arange(h.num_edges, dtype=np.int64), config)
    pairs: List[Tuple[int, int, int]] = []
    counters: List[WorkerCounters] = []
    for partial_pairs, partial_counters in results:
        pairs.extend(partial_pairs)
        counters.append(partial_counters)
    return build_result(h, s, pairs, counters, algorithm="heuristic")
