"""SpGEMM-based s-line-graph baselines (the paper's Figure 11 comparison).

``SpGEMM+Filter``: compute the full weighted hyperedge adjacency matrix
``L = H^T H`` with a general sparse matrix product, then threshold the
off-diagonal entries at ``s``.

``SpGEMM+Filter+Upper``: a modified product that only materialises the
strict upper triangle of the symmetric result before thresholding, halving
the multiply–add work (the paper's modification of the SpGEMM library).

Both variants must first materialise the product matrix — the very cost the
hashmap algorithms avoid — so they serve as the "too general" baseline in
the evaluation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.core.algorithms.base import AlgorithmResult, build_result
from repro.hypergraph.hypergraph import Hypergraph
from repro.linalg.spgemm import spgemm_scipy, spgemm_upper_triangle
from repro.parallel.workload import WorkerCounters
from repro.utils.validation import check_s_value


def _pairs_from_upper(matrix: sparse.csr_matrix, s: int) -> List[Tuple[int, int, int]]:
    """Extract ``(i, j, value)`` triples with ``i < j`` and ``value >= s``."""
    coo = sparse.coo_matrix(matrix)
    mask = (coo.row < coo.col) & (coo.data >= s)
    return [
        (int(i), int(j), int(v))
        for i, j, v in zip(coo.row[mask], coo.col[mask], coo.data[mask])
    ]


def s_line_graph_spgemm(h: Hypergraph, s: int, kernel: str = "scipy") -> AlgorithmResult:
    """``SpGEMM+Filter``: full ``H^T H`` product then threshold at ``s``.

    Parameters
    ----------
    kernel:
        ``"scipy"`` (default) uses scipy's compiled CSR product — the role of
        the optimised SpGEMM library in the paper; ``"gustavson"`` uses the
        pure-Python Gustavson kernel from :mod:`repro.linalg.spgemm`, which
        keeps the comparison against the (equally pure-Python) hashmap
        algorithms on the same execution substrate.

    The workload counter records the number of stored entries of the product
    matrix that had to be materialised before filtering.
    """
    s = check_s_value(s)
    H = h.incidence_matrix().astype(np.int64)
    if kernel == "scipy":
        product = spgemm_scipy(H.T, H)
    elif kernel == "gustavson":
        from repro.linalg.spgemm import spgemm_gustavson

        product = spgemm_gustavson(H.T, H)
    else:
        raise ValueError(f"unknown SpGEMM kernel {kernel!r}")
    pairs = _pairs_from_upper(product, s)
    counters = WorkerCounters(
        worker_id=0,
        edges_processed=h.num_edges,
        wedges_visited=int(product.nnz),
        line_edges_emitted=len(pairs),
    )
    return build_result(h, s, pairs, [counters], algorithm="spgemm")


def s_line_graph_spgemm_upper(h: Hypergraph, s: int) -> AlgorithmResult:
    """``SpGEMM+Filter+Upper``: upper-triangular Gustavson product then threshold.

    Mirrors the paper's modification of the SpGEMM library: exploit the
    symmetry of ``H^T H`` by only accumulating entries with ``j > i``.
    """
    s = check_s_value(s)
    H = h.incidence_matrix().astype(np.int64)
    product = spgemm_upper_triangle(H.T, H, strict=True)
    pairs = _pairs_from_upper(product, s)
    counters = WorkerCounters(
        worker_id=0,
        edges_processed=h.num_edges,
        wedges_visited=int(product.nnz),
        line_edges_emitted=len(pairs),
    )
    return build_result(h, s, pairs, [counters], algorithm="spgemm_upper")
