"""Naive all-pairs set-intersection s-line-graph construction.

This is the baseline the paper describes as "both compute- and
memory-intensive": for every unordered pair of hyperedges, intersect their
vertex sets and keep the pair if the intersection has at least ``s``
elements.  It is quadratic in the number of hyperedges regardless of
sparsity, so it is only practical for small inputs — which is exactly its
role here: a trivially-correct oracle for the property-based tests.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, build_result
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.workload import WorkerCounters
from repro.utils.validation import check_s_value


def s_line_graph_naive(h: Hypergraph, s: int) -> AlgorithmResult:
    """Compute ``L_s(H)`` by intersecting every pair of hyperedges.

    Parameters
    ----------
    h:
        Input hypergraph.
    s:
        Overlap threshold (``>= 1``).

    Returns
    -------
    AlgorithmResult
        Edge weights are the exact overlap counts.
    """
    s = check_s_value(s)
    members = [h.edge_members(i) for i in range(h.num_edges)]
    pairs: List[Tuple[int, int, int]] = []
    counters = WorkerCounters(worker_id=0)
    m = h.num_edges
    for i in range(m):
        counters.edges_processed += 1
        mi = members[i]
        for j in range(i + 1, m):
            counters.set_intersections += 1
            count = int(np.intersect1d(mi, members[j], assume_unique=True).size)
            if count >= s:
                pairs.append((i, j, count))
                counters.line_edges_emitted += 1
    return build_result(h, s, pairs, [counters], algorithm="naive")
