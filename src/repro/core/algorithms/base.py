"""Shared result type and helpers for the s-line-graph algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.slinegraph import SLineGraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.workload import WorkerCounters, WorkloadStats


@dataclass
class AlgorithmResult:
    """Output of a single s-line-graph construction.

    Attributes
    ----------
    graph:
        The computed :class:`~repro.core.slinegraph.SLineGraph` (edge IDs are
        those of the hypergraph passed to the algorithm).
    workload:
        Per-worker work counters (wedges visited, set intersections
        performed, edges emitted), used by the scaling and workload
        benchmarks.
    algorithm:
        Short name of the algorithm that produced the result.
    """

    graph: SLineGraph
    workload: WorkloadStats = field(default_factory=WorkloadStats)
    algorithm: str = ""

    @property
    def num_edges(self) -> int:
        """Number of edges in the computed s-line graph."""
        return self.graph.num_edges


def active_hyperedges(h: Hypergraph, s: int) -> np.ndarray:
    """The vertex set ``E_s`` of the s-line graph: hyperedges with ``|e| >= s``."""
    return np.flatnonzero(h.edge_sizes() >= s).astype(np.int64)


def build_result(
    h: Hypergraph,
    s: int,
    pairs: List[Tuple[int, int, int]],
    counters: List[WorkerCounters],
    algorithm: str,
) -> AlgorithmResult:
    """Assemble an :class:`AlgorithmResult` from per-worker edge triples."""
    graph = SLineGraph.from_weighted_pairs(
        s=s,
        pairs=pairs,
        num_hyperedges=h.num_edges,
        active_vertices=active_hyperedges(h, s),
    )
    return AlgorithmResult(
        graph=graph,
        workload=WorkloadStats.from_counters(counters),
        algorithm=algorithm,
    )
