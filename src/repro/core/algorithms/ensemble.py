"""Algorithm 3 of the paper: one counting pass for an ensemble of s values.

When several s-line graphs are needed (e.g. the algebraic-connectivity sweep
of Figure 6 or the density sweep of Figure 4), re-running Algorithm 2 per
``s`` repeats the counting work.  Algorithm 3 decouples counting from
filtering: the overlap counts of every hyperedge pair (reached through at
least one shared vertex, upper triangle only, degree-pruned by the smallest
requested ``s``) are accumulated once and then filtered per ``s``.

The price is memory: the full overlap structure must be materialised.  The
paper reports Algorithm 3 running out of memory on most large datasets; we
reproduce that behaviour in a controlled way with an explicit memory-budget
estimate that raises :class:`MemoryBudgetError` before attempting an
allocation that would not fit.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithms.base import active_hyperedges
from repro.core.slinegraph import SLineGraph, SLineGraphEnsemble
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig, run_partitioned
from repro.parallel.workload import WorkerCounters, WorkloadStats
from repro.utils.validation import check_s_values


class MemoryBudgetError(MemoryError):
    """Raised when the estimated overlap-table footprint exceeds the budget."""


#: Conservative per-stored-pair cost of a Python dict entry holding
#: (int key, int value): key object + value object + hash-table slot.
BYTES_PER_OVERLAP_ENTRY = 120


def estimate_overlap_memory(h: Hypergraph, s_min: int = 1) -> int:
    """Estimate the bytes needed to hold all pairwise overlap counts.

    The estimate is an upper bound based on the number of wedges (each wedge
    contributes at most one stored pair): ``sum over pruned hyperedges of
    sum over member vertices of deg(v)``, times a per-entry constant.
    """
    edge_sizes = h.edge_sizes()
    vertex_degrees = h.vertex_degrees()
    total_wedges = 0
    for i in range(h.num_edges):
        if edge_sizes[i] < s_min:
            continue
        members = h.edge_members(i)
        if members.size:
            total_wedges += int(vertex_degrees[members].sum())
    return total_wedges * BYTES_PER_OVERLAP_ENTRY


def _counting_kernel(
    edge_indptr: np.ndarray,
    edge_indices: np.ndarray,
    vertex_indptr: np.ndarray,
    vertex_indices: np.ndarray,
    edge_sizes: np.ndarray,
    s_min: int,
    edge_ids: np.ndarray,
    worker_id: int,
) -> Tuple[Dict[int, Dict[int, int]], WorkerCounters]:
    """Counting pass of Algorithm 3 over one partition of hyperedges."""
    overlap: Dict[int, Dict[int, int]] = {}
    counters = WorkerCounters(worker_id=worker_id)
    for i in edge_ids:
        i = int(i)
        if edge_sizes[i] < s_min:
            continue  # degree pruning by the smallest requested s
        counters.edges_processed += 1
        row: Dict[int, int] = {}
        for v in edge_indices[edge_indptr[i] : edge_indptr[i + 1]]:
            start, stop = vertex_indptr[v], vertex_indptr[v + 1]
            for j in vertex_indices[start:stop]:
                j = int(j)
                counters.wedges_visited += 1
                if j > i:
                    row[j] = row.get(j, 0) + 1
        if row:
            overlap[i] = row
    return overlap, counters


def s_line_graph_ensemble_hashmap(
    h: Hypergraph,
    s_values: Sequence[int],
    config: ParallelConfig = ParallelConfig(),
    memory_budget_bytes: Optional[int] = None,
) -> Tuple[SLineGraphEnsemble, WorkloadStats]:
    """Compute the s-line graphs for every ``s`` in ``s_values`` (Algorithm 3).

    Parameters
    ----------
    h:
        Input hypergraph.
    s_values:
        The overlap thresholds; duplicates are collapsed and the values are
        processed in ascending order.
    config:
        Partitioning/backend for the counting pass; the per-s filtering pass
        is parallelised over s values with the same worker count.
    memory_budget_bytes:
        Optional cap on the estimated size of the overlap table.  When the
        estimate exceeds the cap a :class:`MemoryBudgetError` is raised —
        this reproduces (deterministically) the out-of-memory behaviour the
        paper observed for Algorithm 3 on large datasets.

    Returns
    -------
    (ensemble, workload):
        The :class:`SLineGraphEnsemble` keyed by ``s`` and the counting-pass
        workload statistics.
    """
    s_list = check_s_values(s_values)
    s_min = s_list[0]
    if memory_budget_bytes is not None:
        estimate = estimate_overlap_memory(h, s_min)
        if estimate > memory_budget_bytes:
            raise MemoryBudgetError(
                f"estimated overlap table of {estimate} bytes exceeds the "
                f"budget of {memory_budget_bytes} bytes; use "
                "s_line_graph_hashmap per s value instead"
            )
    kernel = partial(
        _counting_kernel,
        h.edges_csr.indptr,
        h.edges_csr.indices,
        h.vertices_csr.indptr,
        h.vertices_csr.indices,
        h.edge_sizes(),
        s_min,
    )
    results = run_partitioned(kernel, np.arange(h.num_edges, dtype=np.int64), config)
    overlap: Dict[int, Dict[int, int]] = {}
    counters: List[WorkerCounters] = []
    for partial_overlap, partial_counters in results:
        overlap.update(partial_overlap)
        counters.append(partial_counters)

    # Filtering pass: build one edge list per s from the shared counts.
    graphs: Dict[int, SLineGraph] = {}
    for s in s_list:
        pairs: List[Tuple[int, int, int]] = []
        for i, row in overlap.items():
            for j, n in row.items():
                if n >= s:
                    pairs.append((i, j, n))
        graphs[s] = SLineGraph.from_weighted_pairs(
            s=s,
            pairs=pairs,
            num_hyperedges=h.num_edges,
            active_vertices=active_hyperedges(h, s),
        )
    return SLineGraphEnsemble(graphs=graphs), WorkloadStats.from_counters(counters)
