"""Algorithm 2 of the paper: hashmap-based overlap counting (no set intersections).

For every hyperedge ``e_i`` (degree-pruned), the algorithm walks the wedges
``(e_i, v_k, e_j)`` with ``j > i`` and increments ``overlap_count[e_j]``.
After the walk, every neighbour whose running count reached ``s`` becomes an
s-line-graph edge ``{e_i, e_j}`` with weight equal to the exact overlap.
This "confirms" common members instead of "searching" for them, eliminating
set intersections entirely (the paper's Table I reports zero intersections
versus 8.66×10⁹ for Algorithm 1 on LiveJournal).

Two overlap-counter policies are provided, mirroring the paper's
thread-local-storage discussion (Section III-F):

* ``dynamic`` (default) — a fresh ``dict`` per outer iteration;
* ``preallocated`` — a per-worker dense counter array reset between
  iterations, preferable for dense-overlap inputs (e.g. the Web dataset).
"""

from __future__ import annotations

from functools import partial
from typing import List, Literal, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, build_result
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig, run_partitioned
from repro.parallel.workload import WorkerCounters
from repro.utils.validation import ValidationError, check_s_value

CounterPolicy = Literal["dynamic", "preallocated"]


def _hashmap_kernel_dynamic(
    edge_indptr: np.ndarray,
    edge_indices: np.ndarray,
    vertex_indptr: np.ndarray,
    vertex_indices: np.ndarray,
    edge_sizes: np.ndarray,
    s: int,
    edge_ids: np.ndarray,
    worker_id: int,
) -> Tuple[List[Tuple[int, int, int]], WorkerCounters]:
    """Algorithm 2 with a dynamically allocated per-iteration hashmap."""
    pairs: List[Tuple[int, int, int]] = []
    counters = WorkerCounters(worker_id=worker_id)
    for i in edge_ids:
        i = int(i)
        if edge_sizes[i] < s:
            continue  # degree-based pruning: e_i cannot be in E_s
        counters.edges_processed += 1
        overlap_count: dict[int, int] = {}
        for v in edge_indices[edge_indptr[i] : edge_indptr[i + 1]]:
            start, stop = vertex_indptr[v], vertex_indptr[v + 1]
            for j in vertex_indices[start:stop]:
                j = int(j)
                counters.wedges_visited += 1
                if j > i:
                    overlap_count[j] = overlap_count.get(j, 0) + 1
        for j, n in overlap_count.items():
            if n >= s:
                pairs.append((i, j, n))
                counters.line_edges_emitted += 1
    return pairs, counters


def _hashmap_kernel_preallocated(
    edge_indptr: np.ndarray,
    edge_indices: np.ndarray,
    vertex_indptr: np.ndarray,
    vertex_indices: np.ndarray,
    edge_sizes: np.ndarray,
    s: int,
    edge_ids: np.ndarray,
    worker_id: int,
) -> Tuple[List[Tuple[int, int, int]], WorkerCounters]:
    """Algorithm 2 with a pre-allocated per-worker counter array (reset per iteration)."""
    num_edges = edge_sizes.size
    counts = np.zeros(num_edges, dtype=np.int64)
    touched: List[int] = []
    pairs: List[Tuple[int, int, int]] = []
    counters = WorkerCounters(worker_id=worker_id)
    for i in edge_ids:
        i = int(i)
        if edge_sizes[i] < s:
            continue
        counters.edges_processed += 1
        for v in edge_indices[edge_indptr[i] : edge_indptr[i + 1]]:
            start, stop = vertex_indptr[v], vertex_indptr[v + 1]
            for j in vertex_indices[start:stop]:
                j = int(j)
                counters.wedges_visited += 1
                if j > i:
                    if counts[j] == 0:
                        touched.append(j)
                    counts[j] += 1
        for j in touched:
            n = int(counts[j])
            if n >= s:
                pairs.append((i, j, n))
                counters.line_edges_emitted += 1
            counts[j] = 0
        touched.clear()
    return pairs, counters


def s_line_graph_hashmap(
    h: Hypergraph,
    s: int,
    config: ParallelConfig = ParallelConfig(),
    counter_policy: CounterPolicy = "dynamic",
) -> AlgorithmResult:
    """Compute ``L_s(H)`` with Algorithm 2 (hashmap overlap counting).

    Parameters
    ----------
    h:
        Input hypergraph.
    s:
        Overlap threshold.
    config:
        Partitioning of the outer hyperedge loop (blocked/cyclic, worker
        count, backend).
    counter_policy:
        ``"dynamic"`` for a fresh hashmap per hyperedge (the common case) or
        ``"preallocated"`` for a per-worker dense counter reused across
        iterations (dense-overlap inputs).
    """
    s = check_s_value(s)
    if counter_policy == "dynamic":
        kernel_fn = _hashmap_kernel_dynamic
    elif counter_policy == "preallocated":
        kernel_fn = _hashmap_kernel_preallocated
    else:
        raise ValidationError(f"unknown counter policy: {counter_policy!r}")
    kernel = partial(
        kernel_fn,
        h.edges_csr.indptr,
        h.edges_csr.indices,
        h.vertices_csr.indptr,
        h.vertices_csr.indices,
        h.edge_sizes(),
        s,
    )
    results = run_partitioned(kernel, np.arange(h.num_edges, dtype=np.int64), config)
    pairs: List[Tuple[int, int, int]] = []
    counters: List[WorkerCounters] = []
    for partial_pairs, partial_counters in results:
        pairs.extend(partial_pairs)
        counters.append(partial_counters)
    return build_result(h, s, pairs, counters, algorithm="hashmap")
