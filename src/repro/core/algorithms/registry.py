"""The paper's Table III variant notation and a runner for it.

A variant name is three characters, e.g. ``"2BA"``:

* first character — the algorithm: ``1`` (Algorithm 1, set-intersection
  heuristic) or ``2`` (Algorithm 2, hashmap);
* second character — the workload partitioning: ``B`` (blocked) or ``C``
  (cyclic);
* third character — relabel-by-degree: ``A`` (ascending), ``D``
  (descending) or ``N`` (no relabelling).

:func:`run_variant` performs the relabelling (its cost is charged to the
run, as in the paper), executes the chosen algorithm with the chosen
partitioning, and maps the resulting edge list back to the original
hyperedge IDs so different variants are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional

import numpy as np

from repro.core.algorithms.base import AlgorithmResult
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.core.slinegraph import SLineGraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.preprocessing import relabel_edges_by_degree
from repro.parallel.executor import Backend, ParallelConfig
from repro.parallel.workload import WorkloadStats
from repro.utils.timing import StageTimes
from repro.utils.validation import ValidationError

#: All twelve variants evaluated in the paper's Figure 7.
ALL_VARIANTS = [
    "1BA", "1BD", "1BN", "1CA", "1CD", "1CN",
    "2BA", "2BD", "2BN", "2CA", "2CD", "2CN",
]

_PARTITIONING = {"B": "blocked", "C": "cyclic"}
_RELABEL = {"A": "ascending", "D": "descending", "N": "none"}


@dataclass(frozen=True)
class VariantSpec:
    """Decoded variant: algorithm number, partitioning strategy and relabel order."""

    algorithm: int
    partitioning: Literal["blocked", "cyclic"]
    relabel: Literal["ascending", "descending", "none"]
    notation: str

    @property
    def uses_hashmap(self) -> bool:
        """True when the variant uses Algorithm 2 (hashmap counting)."""
        return self.algorithm == 2


@dataclass
class VariantRunResult:
    """Outcome of running one variant end to end."""

    spec: VariantSpec
    graph: SLineGraph
    times: StageTimes
    workload: WorkloadStats

    @property
    def total_seconds(self) -> float:
        """Total wall-clock seconds including relabelling."""
        return self.times.total


def parse_variant(notation: str) -> VariantSpec:
    """Decode a Table III variant name such as ``"2BA"`` into a :class:`VariantSpec`."""
    name = notation.strip().upper()
    if len(name) != 3:
        raise ValidationError(f"variant notation must have 3 characters, got {notation!r}")
    algo_char, part_char, relabel_char = name
    if algo_char not in ("1", "2"):
        raise ValidationError(f"unknown algorithm {algo_char!r} in variant {notation!r}")
    if part_char not in _PARTITIONING:
        raise ValidationError(f"unknown partitioning {part_char!r} in variant {notation!r}")
    if relabel_char not in _RELABEL:
        raise ValidationError(f"unknown relabelling {relabel_char!r} in variant {notation!r}")
    return VariantSpec(
        algorithm=int(algo_char),
        partitioning=_PARTITIONING[part_char],  # type: ignore[arg-type]
        relabel=_RELABEL[relabel_char],  # type: ignore[arg-type]
        notation=name,
    )


def _map_edges_to_original(graph: SLineGraph, new_to_old: np.ndarray) -> SLineGraph:
    """Translate the edge endpoints of a relabelled run back to original IDs."""
    if graph.num_edges:
        edges = new_to_old[graph.edges]
    else:
        edges = graph.edges
    active = None
    if graph.active_vertices is not None:
        active = new_to_old[graph.active_vertices]
    return SLineGraph(
        s=graph.s,
        edges=edges,
        weights=graph.weights.copy(),
        num_hyperedges=graph.num_hyperedges,
        active_vertices=active,
    )


def run_variant(
    h: Hypergraph,
    s: int,
    notation: str,
    num_workers: int = 1,
    backend: Backend = "serial",
    grainsize: Optional[int] = None,
) -> VariantRunResult:
    """Run one Table III variant end to end and return the s-line graph.

    Parameters
    ----------
    h:
        Input hypergraph (original IDs).
    s:
        Overlap threshold.
    notation:
        Three-character variant name (see module docstring).
    num_workers, backend, grainsize:
        Parallel-execution parameters forwarded to :class:`ParallelConfig`.

    Returns
    -------
    VariantRunResult
        The s-line graph in *original* hyperedge IDs, the per-stage timing
        breakdown (``relabel`` and ``s_overlap``) and the workload counters.
    """
    spec = parse_variant(notation)
    times = StageTimes()
    with times.stage("relabel"):
        relabel = relabel_edges_by_degree(h, spec.relabel)
    working = relabel.hypergraph
    config = ParallelConfig(
        num_workers=num_workers,
        strategy=spec.partitioning,
        backend=backend,
        grainsize=grainsize,
    )
    with times.stage("s_overlap"):
        if spec.algorithm == 1:
            result: AlgorithmResult = s_line_graph_heuristic(working, s, config=config)
        else:
            result = s_line_graph_hashmap(working, s, config=config)
    graph = _map_edges_to_original(result.graph, relabel.new_to_old)
    return VariantRunResult(
        spec=spec, graph=graph, times=times, workload=result.workload
    )


def run_all_variants(
    h: Hypergraph,
    s: int,
    variants: Optional[List[str]] = None,
    num_workers: int = 1,
    backend: Backend = "serial",
) -> Dict[str, VariantRunResult]:
    """Run several variants and return ``{notation: result}`` (Figure 7 helper)."""
    out: Dict[str, VariantRunResult] = {}
    for name in variants or ALL_VARIANTS:
        out[name] = run_variant(h, s, name, num_workers=num_workers, backend=backend)
    return out
