"""s-line-graph construction algorithms.

==================  =====================================================
Module              Algorithm
==================  =====================================================
``naive``           All-pairs set intersection (correctness reference).
``heuristic``       Algorithm 1 of the paper (Liu et al., HiPC'21): wedge
                    enumeration + explicit set intersection with degree
                    pruning, visited-skipping and short-circuiting.
``hashmap``         Algorithm 2: wedge enumeration with per-hyperedge
                    overlap-count hashmaps — no set intersections.
``vectorized``      Algorithm 2 with the inner counting expressed as NumPy
                    ``unique``/``bincount`` operations.
``ensemble``        Algorithm 3: one counting pass shared by an ensemble of
                    s values.
``spgemm``          SpGEMM-based baselines (``H^T H`` + filtration), both
                    the full-product variant and the upper-triangular
                    Gustavson variant.
``registry``        The paper's Table III variant notation (1BA … 2CD).
==================  =====================================================
"""

from repro.core.algorithms.base import AlgorithmResult
from repro.core.algorithms.naive import s_line_graph_naive
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.vectorized import s_line_graph_vectorized
from repro.core.algorithms.ensemble import s_line_graph_ensemble_hashmap, MemoryBudgetError
from repro.core.algorithms.spgemm import s_line_graph_spgemm, s_line_graph_spgemm_upper
from repro.core.algorithms.registry import (
    ALL_VARIANTS,
    VariantSpec,
    parse_variant,
    run_variant,
)

__all__ = [
    "AlgorithmResult",
    "s_line_graph_naive",
    "s_line_graph_heuristic",
    "s_line_graph_hashmap",
    "s_line_graph_vectorized",
    "s_line_graph_ensemble_hashmap",
    "MemoryBudgetError",
    "s_line_graph_spgemm",
    "s_line_graph_spgemm_upper",
    "parse_variant",
    "run_variant",
    "VariantSpec",
    "ALL_VARIANTS",
]
