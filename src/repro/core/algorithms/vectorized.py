"""Algorithm 2 with NumPy-vectorised inner counting.

The structure is identical to :mod:`repro.core.algorithms.hashmap` — one
outer pass over the (degree-pruned) hyperedges, counting 2-hop neighbours
reached through shared vertices — but the per-hyperedge counting is
expressed as array operations (gather + ``np.unique(return_counts=True)``)
instead of a Python dict, following the HPC-Python guideline of pushing hot
loops into NumPy.  Because the heavy lifting happens inside NumPy (which
releases the GIL), this variant also benefits from the ``thread`` backend.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, build_result
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig, run_partitioned
from repro.parallel.workload import WorkerCounters
from repro.utils.validation import check_s_value


def _vectorized_kernel(
    edge_indptr: np.ndarray,
    edge_indices: np.ndarray,
    vertex_indptr: np.ndarray,
    vertex_indices: np.ndarray,
    edge_sizes: np.ndarray,
    s: int,
    edge_ids: np.ndarray,
    worker_id: int,
) -> Tuple[List[Tuple[int, int, int]], WorkerCounters]:
    """Per-partition body: vectorised 2-hop neighbour counting."""
    pairs: List[Tuple[int, int, int]] = []
    counters = WorkerCounters(worker_id=worker_id)
    for i in edge_ids:
        i = int(i)
        if edge_sizes[i] < s:
            continue
        counters.edges_processed += 1
        members = edge_indices[edge_indptr[i] : edge_indptr[i + 1]]
        if members.size == 0:
            continue
        # Gather the hyperedge lists of every member vertex in one shot.
        starts = vertex_indptr[members]
        stops = vertex_indptr[members + 1]
        total = int((stops - starts).sum())
        if total == 0:
            continue
        neighbours = np.concatenate(
            [vertex_indices[a:b] for a, b in zip(starts, stops)]
        )
        counters.wedges_visited += int(neighbours.size)
        neighbours = neighbours[neighbours > i]
        if neighbours.size == 0:
            continue
        uniq, counts = np.unique(neighbours, return_counts=True)
        mask = counts >= s
        for j, n in zip(uniq[mask], counts[mask]):
            pairs.append((i, int(j), int(n)))
            counters.line_edges_emitted += 1
    return pairs, counters


def s_line_graph_vectorized(
    h: Hypergraph,
    s: int,
    config: ParallelConfig = ParallelConfig(),
) -> AlgorithmResult:
    """Compute ``L_s(H)`` with the NumPy-vectorised variant of Algorithm 2.

    Produces exactly the same edge list and weights as
    :func:`repro.core.algorithms.hashmap.s_line_graph_hashmap`.
    """
    s = check_s_value(s)
    kernel = partial(
        _vectorized_kernel,
        h.edges_csr.indptr,
        h.edges_csr.indices,
        h.vertices_csr.indptr,
        h.vertices_csr.indices,
        h.edge_sizes(),
        s,
    )
    results = run_partitioned(kernel, np.arange(h.num_edges, dtype=np.int64), config)
    pairs: List[Tuple[int, int, int]] = []
    counters: List[WorkerCounters] = []
    for partial_pairs, partial_counters in results:
        pairs.extend(partial_pairs)
        counters.append(partial_counters)
    return build_result(h, s, pairs, counters, algorithm="vectorized")
