"""s-clique graphs: vertex-centric high-order expansions (Section III-H).

The s-clique graph of a hypergraph links two *vertices* whenever they appear
together in at least ``s`` hyperedges; its s = 1 case is the classic clique
expansion (2-section).  The paper shows this is exactly the s-line graph of
the *dual* hypergraph, and that computing it with the hashmap algorithms
avoids materialising the (dense) weighted clique-expansion matrix
``W = H H^T − D_V``.

These wrappers expose the vertex-centric view directly so applications don't
need to dualise by hand, and provide the explicit weighted clique-expansion
matrix for small inputs and tests.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from scipy import sparse

from repro.core.dispatch import s_line_graph, s_line_graph_ensemble
from repro.core.slinegraph import SLineGraph, SLineGraphEnsemble
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.incidence import clique_expansion_weight_matrix
from repro.parallel.executor import ParallelConfig
from repro.parallel.workload import WorkloadStats


def s_clique_graph(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    return_workload: bool = False,
) -> Union[SLineGraph, Tuple[SLineGraph, WorkloadStats]]:
    """The s-clique graph of ``h``: vertices linked by >= s shared hyperedges.

    The returned :class:`SLineGraph`'s "hyperedge IDs" are the *vertex* IDs
    of ``h`` (they are the hyperedges of the dual).  ``s = 1`` gives the
    clique expansion / 2-section.

    Examples
    --------
    >>> from repro.hypergraph import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1], [0, 1], [1, 2]])
    >>> s_clique_graph(h, 2).edge_set()   # vertices 0 and 1 co-occur twice
    {(0, 1)}
    """
    return s_line_graph(
        h.dual(), s, algorithm=algorithm, config=config, return_workload=return_workload
    )


def s_clique_graph_ensemble(
    h: Hypergraph,
    s_values: Sequence[int],
    config: Optional[ParallelConfig] = None,
    memory_budget_bytes: Optional[int] = None,
) -> SLineGraphEnsemble:
    """s-clique graphs for several ``s`` values in one counting pass
    (Algorithm 3 on the dual)."""
    return s_line_graph_ensemble(
        h.dual(), s_values, config=config, memory_budget_bytes=memory_budget_bytes
    )


def two_section(h: Hypergraph, algorithm: str = "hashmap") -> SLineGraph:
    """The 2-section ``H_2`` (clique expansion) of ``h`` — the s = 1 s-clique graph."""
    return s_clique_graph(h, 1, algorithm=algorithm)


def weighted_clique_expansion(h: Hypergraph) -> sparse.csr_matrix:
    """The explicit weighted clique-expansion matrix ``W = H H^T − D_V``.

    Materialising ``W`` is exactly what the paper's approach avoids for large
    inputs; it is provided for small hypergraphs and as a test oracle (the
    s-clique graph is the filtration of ``W`` at ``s``).
    """
    return clique_expansion_weight_matrix(h)
