"""The paper's primary contribution: s-line-graph algorithms and framework.

Public entry points:

* :class:`repro.core.SLineGraph` — the result type: the edge list of an
  s-line graph over (a subset of) the hyperedge IDs, with overlap weights.
* :func:`repro.core.s_line_graph` — compute a single s-line graph with a
  selectable algorithm (``naive``, ``heuristic`` [Algorithm 1], ``hashmap``
  [Algorithm 2], ``vectorized``, ``spgemm``, ``spgemm_upper``).
* :func:`repro.core.s_line_graph_ensemble` — compute an ensemble of s-line
  graphs for several ``s`` values in one counting pass (Algorithm 3).
* :class:`repro.core.SLinePipeline` — the five-stage framework
  (preprocess → toplexes → s-overlap → squeeze → s-metrics).
* :mod:`repro.core.algorithms.registry` — the paper's variant notation
  (``1BA`` … ``2CD``) combining algorithm, partitioning and relabelling.
"""

from repro.core.slinegraph import SLineGraph, SLineGraphEnsemble
from repro.core.filtration import filter_weighted_edges, filtration_matrix
from repro.core.dispatch import s_line_graph, s_line_graph_ensemble, ALGORITHMS
from repro.core.pipeline import SLinePipeline, PipelineResult
from repro.core.algorithms.registry import (
    VariantSpec,
    parse_variant,
    run_variant,
    ALL_VARIANTS,
)
from repro.core.sclique import (
    s_clique_graph,
    s_clique_graph_ensemble,
    two_section,
    weighted_clique_expansion,
)

__all__ = [
    "s_clique_graph",
    "s_clique_graph_ensemble",
    "two_section",
    "weighted_clique_expansion",
    "SLineGraph",
    "SLineGraphEnsemble",
    "filter_weighted_edges",
    "filtration_matrix",
    "s_line_graph",
    "s_line_graph_ensemble",
    "ALGORITHMS",
    "SLinePipeline",
    "PipelineResult",
    "VariantSpec",
    "parse_variant",
    "run_variant",
    "ALL_VARIANTS",
]
