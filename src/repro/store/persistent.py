"""A query engine whose overlap index lives on disk.

:class:`PersistentQueryEngine` is a :class:`~repro.engine.engine.QueryEngine`
whose index is opened from (or built into) an :class:`~repro.store.IndexStore`
instead of being recomputed per process:

* **warm opens** — a process serving queries pays a manifest read plus mmap
  setup, never the wedge-enumeration pass;
* **durable updates** — every ``add_hyperedge`` / ``remove_hyperedge`` is
  appended to the store's write-ahead log *before* it is acknowledged, so a
  later process recovers the updated index without a rebuild;
* **out-of-core serving** — with ``sharded=True`` the engine streams
  threshold views from mmap'd shards (:class:`~repro.store.ShardedIndex`),
  so the full overlap structure never has to fit in RAM.
"""

from __future__ import annotations
from typing import Optional

from repro.engine.engine import QueryEngine
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.store.format import FingerprintMismatchError, PathLike
from repro.store.store import IndexStore
from repro.utils.validation import ValidationError


class PersistentQueryEngine(QueryEngine):
    """Store-backed query engine (see the module docstring).

    Construct via :meth:`open` or :meth:`build`; the plain constructor
    expects an already-opened :class:`IndexStore`.
    """

    def __init__(
        self,
        store: IndexStore,
        hypergraph: Optional[Hypergraph] = None,
        sharded: bool = False,
        max_resident_shards: Optional[int] = None,
        config: Optional[ParallelConfig] = None,
        cache_size: int = 256,
    ) -> None:
        h = hypergraph if hypergraph is not None else store.load_hypergraph()
        current = store.current_fingerprint()
        if current is not None and current != h.fingerprint():
            raise FingerprintMismatchError(
                f"store at {store.path} describes hypergraph {current[:12]}…, "
                f"not {h.fingerprint()[:12]}…"
            )
        if sharded:
            index = store.sharded_index(max_resident_shards=max_resident_shards)
        else:
            index = store.load_index()
        super().__init__(
            h,
            algorithm=index.algorithm or "hashmap",
            config=config,
            cache_size=cache_size,
            index=index,
        )
        self.store = store
        self.sharded = bool(sharded)
        self._max_resident_shards = max_resident_shards

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        path: PathLike,
        hypergraph: Optional[Hypergraph] = None,
        read_only: bool = False,
        **kwargs,
    ):
        """Open an existing store (recovering its WAL) and serve from it.

        ``read_only=True`` opens a non-truncating, never-writing handle
        suitable for concurrent reader processes; updates raise
        :class:`repro.store.ReadOnlyStoreError` before any in-memory state
        is touched.
        """
        return cls(
            IndexStore.open(path, read_only=read_only),
            hypergraph=hypergraph,
            **kwargs,
        )

    @classmethod
    def build(
        cls,
        h: Hypergraph,
        path: PathLike,
        algorithm: str = "hashmap",
        num_shards: int = 4,
        config: Optional[ParallelConfig] = None,
        save_hypergraph: bool = True,
        **kwargs,
    ):
        """Build a fresh store for ``h`` at ``path`` and serve from it."""
        store = IndexStore.build(
            h,
            path,
            algorithm=algorithm,
            num_shards=num_shards,
            config=config,
            save_hypergraph=save_hypergraph,
        )
        return cls(store, hypergraph=h, config=config, **kwargs)

    # ------------------------------------------------------------------ #
    # Updates (guarded up front so read-only handles never mutate the
    # in-memory index before the store would reject the WAL append)
    # ------------------------------------------------------------------ #
    def add_hyperedge(self, members, name=None) -> int:
        self.store.check_writable()
        return super().add_hyperedge(members, name)

    def remove_hyperedge(self, edge_id) -> None:
        self.store.check_writable()
        super().remove_hyperedge(edge_id)

    # ------------------------------------------------------------------ #
    # Durability hooks (called by QueryEngine after each update)
    # ------------------------------------------------------------------ #
    def _record_add(self, new_id, members, name, pair_ids, pair_weights) -> None:
        if pair_ids is None:
            raise ValidationError(
                "persistent engine updated without an overlap row (index "
                "was not loaded); this is a bug"
            )
        self.store.append_add(
            new_id,
            members,
            pair_ids,
            pair_weights,
            fingerprint=self.fingerprint(),
            name=None if name is None else str(name),
        )

    def _record_remove(self, edge_id) -> None:
        self.store.append_remove(edge_id, fingerprint=self.fingerprint())

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release file-backed resources (the index's mmap'd shard handles).

        Engines opened speculatively — e.g. by a read replica's refresh
        that then loses the install race — must be closed instead of
        dropped, or every superseded refresh leaks open shard mmaps until
        garbage collection gets around to them.
        """
        index = self._index
        close_index = getattr(index, "close", None)
        if close_index is not None:
            close_index()

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def compact(self, num_shards: Optional[int] = None) -> None:
        """Fold the WAL into a fresh snapshot generation.

        The served index is re-opened against the new generation —
        compaction sweeps the old generation's shard files, so a sharded
        (mmap-streaming) index must not keep referencing them.  Cached
        query results stay valid: compaction changes the representation,
        never the logical state (the fingerprint is unchanged).
        """
        self.store.check_writable()
        self.store.compact(num_shards=num_shards)
        if self.sharded:
            self._index = self.store.sharded_index(
                max_resident_shards=self._max_resident_shards
            )
        else:
            self._index = self.store.load_index()
