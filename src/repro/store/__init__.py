"""Persistent sharded overlap-index store: snapshot + WAL + out-of-core views.

PR 1's :class:`~repro.engine.OverlapIndex` reified the paper's central
observation — every s-line graph is a threshold view of one weighted overlap
structure — but that structure died with the process.  This package makes it
the system's storage layer:

* :mod:`repro.store.format` / :mod:`repro.store.snapshot` — the versioned
  snapshot format: the weight-sorted pair arrays partitioned into mmap-able
  row-block shards plus a JSON manifest (fingerprint, shard boundaries,
  format version, build provenance);
* :mod:`repro.store.wal` — a checksummed write-ahead log of incremental
  ``add`` / ``remove`` updates with torn-tail crash recovery;
* :class:`ShardedIndex` — an out-of-core ``OverlapIndex`` drop-in streaming
  threshold views from lazily mmap'd shards;
* :class:`IndexStore` — the directory manager (build / open / update /
  compact);
* :class:`PersistentQueryEngine` — a store-backed
  :class:`~repro.engine.QueryEngine` with durable updates and warm opens;
* :mod:`repro.store.replication` — mirror a whole store directory over
  the serving protocol (:class:`StoreMirror`): checksum-driven delta
  syncs, byte-identical copies, no shared filesystem required.
"""

from repro.store.format import (
    FORMAT_VERSION,
    FingerprintMismatchError,
    Manifest,
    ReadOnlyStoreError,
    ShardInfo,
    StoreError,
    StoreFormatError,
    read_manifest,
)
from repro.store.persistent import PersistentQueryEngine
from repro.store.replication import (
    LocalReplicationSource,
    ReplicationError,
    ReplicationStaleError,
    StoreMirror,
    SyncReport,
)
from repro.store.sharded import ShardedIndex
from repro.store.snapshot import materialize_index, write_snapshot
from repro.store.store import IndexStore
from repro.store.wal import WalRecord, WriteAheadLog

__all__ = [
    "FORMAT_VERSION",
    "FingerprintMismatchError",
    "IndexStore",
    "LocalReplicationSource",
    "Manifest",
    "PersistentQueryEngine",
    "ReadOnlyStoreError",
    "ReplicationError",
    "ReplicationStaleError",
    "ShardInfo",
    "ShardedIndex",
    "StoreError",
    "StoreFormatError",
    "StoreMirror",
    "SyncReport",
    "WalRecord",
    "WriteAheadLog",
    "materialize_index",
    "read_manifest",
    "write_snapshot",
]
