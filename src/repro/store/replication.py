"""Snapshot replication: mirror a store directory over the serving protocol.

PR 3-4 let any number of replica processes serve one store — provided they
could *see* its directory.  This module removes the shared-filesystem
requirement: a :class:`StoreMirror` materialises (and keeps current) a
local store directory purely from three read-only replication ops any
serving peer answers:

``repl_manifest``
    The live manifest (verbatim JSON text, so the mirror is byte-identical)
    plus the size and CRC32 of every snapshot file it references, pinned to
    one generation.
``repl_fetch``
    One chunk of one snapshot file (shard arrays, the generation-named
    edge-size array, ``hypergraph.npz``) at a pinned generation, sized
    under the frame cap.  On a protocol v2 connection the chunk rides a
    binary frame as raw (optionally compressed) bytes; v1 peers get
    base64-in-JSON (see ``docs/PROTOCOL.md``).
``repl_wal``
    The write-ahead-log tail.  Cursor-capable peers ask with a
    ``(generation, byte_offset, next_seq)`` cursor and receive the raw
    validated on-disk suffix — O(suffix) per poll, byte-identical by
    construction, with a ``rebase`` signal when the source log shrank
    under the cursor.  The legacy shape (records after a ``(generation,
    seq)`` cursor, re-framed by the mirror with the WAL's deterministic
    encoder) remains for older peers.

Sync is *delta* by construction: files whose checksum the mirror already
holds (under any name — compaction renames shards it did not change) are
hard-linked/copied locally instead of re-fetched, and between compactions
only the WAL tail crosses the wire.  Crash safety reuses the store's own
layout: fetched shard/edge-size files are generation-named (laying them
down never touches the live snapshot), the manifest and WAL are swapped
atomically, and a sync killed at any point leaves the previous state
serveable — the next sync detects the partial files by checksum and
finishes the job.

The ops are served by :meth:`repro.service.QueryService.execute` (local or
behind a :class:`~repro.service.transport.SocketServer`) via
:class:`LocalReplicationSource`; :class:`~repro.service.transport.client.
ServiceClient` exposes the matching typed helpers, so the same
:class:`StoreMirror` code drives an in-process sync (tests) and a
cross-machine sync (production) unchanged.
"""

from __future__ import annotations

import base64
import json
import os
import shutil
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from repro.chaos.failpoints import fire as _failpoint
from repro.obs import get_registry, get_tracer
from repro.store.format import (
    HYPERGRAPH_NAME,
    Manifest,
    PathLike,
    SHARD_DIR,
    StoreError,
    WAL_NAME,
    fsync_path,
    manifest_path,
    read_manifest,
)
from repro.store.snapshot import sweep_orphan_shards
from repro.store.wal import WriteAheadLog, _frame
from repro.utils.validation import ValidationError

#: Sidecar file recording the mirror's sync cursor and per-file checksums.
#: Not part of the store format — store readers ignore it.
MIRROR_STATE_NAME = "replication.json"

#: Default raw bytes per ``repl_fetch`` chunk.  Base64 inflates by 4/3, so
#: a 4 MiB chunk rides a ~5.6 MiB frame — far under the 64 MiB frame cap.
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024

#: Server-side clamp on one chunk, so a client cannot request a frame the
#: server's own cap would then refuse to send.
MAX_FETCH_CHUNK_BYTES = 8 * 1024 * 1024

#: Attempts to assemble a consistent manifest payload / complete a sync
#: while a writer compacts underneath (each retry re-reads fresh state).
_PAYLOAD_RETRIES = 6
_SYNC_RETRIES = 4
_RETRY_SLEEP = 0.05


class ReplicationError(StoreError):
    """Base error for snapshot replication failures."""


class ReplicationStaleError(ReplicationError):
    """The pinned generation was superseded mid-operation (restart the sync)."""


def file_crc32(path: PathLike, chunk_bytes: int = 1 << 20) -> int:
    """CRC32 of a whole file, streamed (never loads it into memory)."""
    crc = 0
    with open(str(path), "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def _snapshot_file_names(store_path: str, manifest: Manifest) -> List[str]:
    """Relative (posix-style) names of every file the snapshot references."""
    names: List[str] = []
    for info in manifest.shards:
        names.append(f"{SHARD_DIR}/{info.edges_file}")
        names.append(f"{SHARD_DIR}/{info.weights_file}")
    names.append(manifest.edge_sizes_file)
    if os.path.isfile(os.path.join(store_path, HYPERGRAPH_NAME)):
        names.append(HYPERGRAPH_NAME)
    return names


def _local_path(store_path: str, name: str) -> str:
    return os.path.join(str(store_path), *name.split("/"))


def _write_file_atomic(dest: str, data: bytes, suffix: str = ".sync") -> None:
    """Durably replace ``dest``: write-temp, fsync, rename, fsync dir.

    The one copy of the crash-safety sequence the mirror's small writes
    (sidecar, WAL image, manifest text) share."""
    tmp = dest + suffix
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, dest)
    fsync_path(os.path.dirname(dest) or ".")


# --------------------------------------------------------------------- #
# Server-side payload builders (the replication request vocabulary)
# --------------------------------------------------------------------- #
def manifest_payload(
    store_path: PathLike, cache: Optional[Dict[object, int]] = None
) -> Dict[str, object]:
    """The ``repl_manifest`` response: manifest text + file checksums.

    ``cache`` (optional) memoises checksums keyed by ``(name, size,
    mtime_ns)`` — snapshot files are immutable once written, so a serving
    process pays the CRC pass once per generation, not once per sync.
    Retries internally when a compaction swaps the snapshot mid-walk.
    """
    path = str(store_path)
    # Chaos: fired before the retry loop, so an injected error reaches the
    # peer directly — the harness partitions the *replication plane* with
    # this point while the stats/query plane keeps serving.
    _failpoint("repl.manifest")
    last_error: Optional[Exception] = None
    for _ in range(_PAYLOAD_RETRIES):
        try:
            with open(manifest_path(path), "r", encoding="utf-8") as handle:
                text = handle.read()
            manifest = Manifest.from_json(text)
            files = []
            for name in _snapshot_file_names(path, manifest):
                full = _local_path(path, name)
                st = os.stat(full)
                key = (name, st.st_size, st.st_mtime_ns)
                crc = cache.get(key) if cache is not None else None
                if crc is None:
                    crc = file_crc32(full)
                    if cache is not None:
                        if len(cache) > 1024:
                            cache.clear()
                        cache[key] = crc
                files.append({"name": name, "size": st.st_size, "crc32": crc})
            if read_manifest(path).generation != manifest.generation:
                raise ReplicationStaleError(
                    "snapshot generation changed while checksumming"
                )
            try:
                wal_bytes = os.path.getsize(os.path.join(path, WAL_NAME))
            except OSError:
                wal_bytes = 0
            return {
                "generation": manifest.generation,
                "manifest_json": text,
                "files": files,
                "state_token": [manifest.generation, wal_bytes],
            }
        except (OSError, StoreError) as exc:
            last_error = exc
            time.sleep(_RETRY_SLEEP)
    raise ReplicationStaleError(
        f"could not assemble a consistent replication manifest for {path} "
        f"after {_PAYLOAD_RETRIES} attempts: {last_error}"
    )


def wal_payload(
    store_path: PathLike, generation: int, after_seq: int
) -> Dict[str, object]:
    """The ``repl_wal`` response: log records after a ``(generation, seq)`` cursor.

    Raises :class:`ReplicationStaleError` when the live snapshot is no
    longer at ``generation`` (a compaction landed; the mirror must restart
    with a snapshot sync).  A log stamped with a *different* generation —
    the crash window between a compaction's manifest swap and its WAL
    truncate — is reported empty, exactly as a recovering open would treat
    it.
    """
    path = str(store_path)
    _failpoint("repl.wal")
    generation = int(generation)
    after_seq = int(after_seq)
    manifest = read_manifest(path)
    if manifest.generation != generation:
        raise ReplicationStaleError(
            f"snapshot at {path} is at generation {manifest.generation}, "
            f"not the pinned {generation}"
        )
    records, _, _ = WriteAheadLog(os.path.join(path, WAL_NAME)).replay()
    if any(r.generation is not None and r.generation != generation for r in records):
        records = []
    return {
        "generation": generation,
        "total": len(records),
        "after_seq": after_seq,
        "records": [
            {"seq": r.seq, "payload": r.payload} for r in records if r.seq > after_seq
        ],
    }


def wal_suffix_payload(
    store_path: PathLike,
    generation: int,
    after_bytes: int,
    next_seq: int,
    raw: bool = False,
) -> Dict[str, object]:
    """The cursor-mode ``repl_wal`` response: the raw validated log suffix.

    The fast path behind :class:`StoreMirror` delta syncs: instead of
    replaying (and JSON-decoding) the whole log per poll, ship the on-disk
    bytes after ``(generation, after_bytes)``, structurally validated from
    sequence ``next_seq`` (see :meth:`WriteAheadLog.read_suffix`).  The
    response carries ``count`` records as ``data`` (raw bytes with
    ``raw=True`` — the binary-frame shape — else base64 text), the
    advanced ``next_seq``/``end_offset`` cursor, and ``rebase=True`` when
    the cursor no longer lines up with the log, telling the mirror to
    re-read from byte 0.

    Raises :class:`ReplicationStaleError` when the live snapshot moved off
    the pinned ``generation``.  A suffix whose first record is stamped
    with a different generation — the crash window between a compaction's
    manifest swap and its WAL truncate — is reported empty, exactly as a
    recovering open would treat the log.
    """
    path = str(store_path)
    _failpoint("repl.wal")
    generation = int(generation)
    after_bytes = int(after_bytes)
    next_seq = int(next_seq)
    manifest = read_manifest(path)
    if manifest.generation != generation:
        raise ReplicationStaleError(
            f"snapshot at {path} is at generation {manifest.generation}, "
            f"not the pinned {generation}"
        )
    suffix = WriteAheadLog(os.path.join(path, WAL_NAME)).read_suffix(
        after_bytes, next_seq
    )
    base: Dict[str, object] = {
        "generation": generation,
        "mode": "suffix",
        "after_bytes": after_bytes,
    }
    if suffix is None:
        base["rebase"] = True
        return base
    data, count, end_offset = suffix
    if count:
        try:
            first = json.loads(data[: data.find(b"\n")].split(b"\t", 2)[2])
            stamped = first.get("gen")
        except (ValueError, UnicodeDecodeError):
            base["rebase"] = True
            return base
        if stamped is not None and int(stamped) != generation:
            data, count, end_offset = b"", 0, after_bytes
    base.update(
        rebase=False,
        count=count,
        next_seq=next_seq + count,
        end_offset=end_offset,
        data=data if raw else base64.b64encode(data).decode("ascii"),
    )
    return base


def fetch_payload(
    store_path: PathLike,
    name: str,
    generation: int,
    offset: int,
    length: int,
    raw: bool = False,
) -> Dict[str, object]:
    """The ``repl_fetch`` response: one chunk of one snapshot file.

    ``name`` must be a file the *live* manifest references (no path
    escapes; the WAL travels via :func:`wal_payload`, never here), and the
    live generation must still match the pinned one — a swept file or a
    swapped manifest answers :class:`ReplicationStaleError` so the mirror
    restarts cleanly instead of splicing two generations together.  With
    ``raw=True`` the chunk is returned as bytes (in-process callers);
    otherwise base64 text, JSON-safe under the frame cap.
    """
    path = str(store_path)
    _failpoint("repl.fetch")
    generation = int(generation)
    offset = int(offset)
    length = min(int(length), MAX_FETCH_CHUNK_BYTES)
    if offset < 0 or length < 0:
        raise ValidationError("repl_fetch offset/length must be non-negative")
    manifest = read_manifest(path)
    if manifest.generation != generation:
        raise ReplicationStaleError(
            f"snapshot at {path} is at generation {manifest.generation}, "
            f"not the pinned {generation}"
        )
    allowed = set(_snapshot_file_names(path, manifest))
    if str(name) not in allowed:
        raise ValidationError(
            f"{name!r} is not a snapshot file of generation {generation}"
        )
    try:
        with open(_local_path(path, str(name)), "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            handle.seek(offset)
            data = handle.read(length)
    except FileNotFoundError as exc:
        raise ReplicationStaleError(
            f"snapshot file {name!r} vanished (compaction swept it): {exc}"
        ) from exc
    return {
        "name": str(name),
        "generation": generation,
        "offset": offset,
        "size": size,
        "eof": offset + len(data) >= size,
        "data": data if raw else base64.b64encode(data).decode("ascii"),
    }


class ReplicationSource(Protocol):
    """What a :class:`StoreMirror` pulls from (duck-typed).

    Implemented by :class:`LocalReplicationSource` (same-process source
    directory) and :class:`repro.service.transport.client.ServiceClient`
    (the socket protocol) — ``repl_fetch`` must return ``data`` as bytes.
    ``repl_wal_suffix`` is the optional byte-offset-cursor fast path: the
    mirror probes for it with ``getattr`` and accepts ``None`` (a peer —
    or a negotiated connection — without cursor support), falling back to
    the legacy record-replay ``repl_wal``.
    """

    def repl_manifest(self) -> Dict[str, object]:
        """The live manifest plus per-file size and CRC32, pinned to a generation."""
        ...

    def repl_wal(self, generation: int, after_seq: int) -> Dict[str, object]:
        """Record mode: WAL records with ``seq > after_seq`` (full-log replay)."""
        ...

    def repl_wal_suffix(
        self, generation: int, after_bytes: int, next_seq: int
    ) -> Optional[Dict[str, object]]:
        """Cursor mode: the raw log suffix past ``after_bytes``, or ``None``."""
        ...

    def repl_fetch(
        self, name: str, generation: int, offset: int, length: int
    ) -> Dict[str, object]:
        """A chunk of snapshot file ``name``; ``data`` must come back as bytes."""
        ...


class LocalReplicationSource:
    """Serve the replication ops straight from a store directory.

    Used by :class:`repro.service.QueryService` to answer ``repl_*``
    requests, and by tests/tools that mirror without a socket.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = str(path)
        self._crc_cache: Dict[object, int] = {}

    def repl_manifest(self) -> Dict[str, object]:
        """The ``repl_manifest`` payload (checksums memoised per generation)."""
        return manifest_payload(self.path, cache=self._crc_cache)

    def repl_wal(self, generation: int, after_seq: int) -> Dict[str, object]:
        """Legacy ``repl_wal``: decoded records after a sequence cursor."""
        return wal_payload(self.path, generation, after_seq)

    def repl_wal_suffix(
        self, generation: int, after_bytes: int, next_seq: int, raw: bool = True
    ) -> Dict[str, object]:
        """Cursor-mode ``repl_wal``: the raw log suffix after a byte offset."""
        return wal_suffix_payload(
            self.path, generation, after_bytes, next_seq, raw=raw
        )

    def repl_fetch(
        self, name: str, generation: int, offset: int, length: int, raw: bool = True
    ) -> Dict[str, object]:
        """One file chunk; ``raw=False`` base64-encodes it (the v1 wire shape)."""
        return fetch_payload(self.path, name, generation, offset, length, raw=raw)


@dataclass
class SyncReport:
    """What one :meth:`StoreMirror.sync` did (observability / tests)."""

    generation: int
    #: A snapshot (not just a WAL tail) was installed this sync.
    full_sync: bool
    #: Whether anything changed at all.
    changed: bool
    fetched_files: int = 0
    #: Files satisfied from the local previous generation (delta sync).
    reused_files: int = 0
    fetched_bytes: int = 0
    #: WAL records newly applied (appended or rewritten).
    wal_records: int = 0


class StoreMirror:
    """Materialise and maintain a local copy of a remote store directory.

    Parameters
    ----------
    source:
        A :class:`ReplicationSource` — typically a connected
        :class:`~repro.service.transport.client.ServiceClient`.
    path:
        Local directory for the mirror (created if missing).  Any store
        reader — :class:`~repro.store.IndexStore`,
        :class:`~repro.service.ReadReplica` — can open it read-only while
        the mirror keeps syncing; generation swaps are atomic.
    chunk_bytes:
        Raw bytes per fetch round trip.

    The mirror is the directory's only writer (pair it with the service
    layer's ``StoreLock`` when that needs enforcing across processes).
    """

    def __init__(
        self,
        source: ReplicationSource,
        path: PathLike,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        sync_retries: int = _SYNC_RETRIES,
    ) -> None:
        self.source = source
        self.path = str(path)
        self.chunk_bytes = int(chunk_bytes)
        self.sync_retries = int(sync_retries)
        #: Completed syncs that changed anything (observability).
        self.syncs = 0
        os.makedirs(os.path.join(self.path, SHARD_DIR), exist_ok=True)
        self._state = self._load_state()
        self._last_sync_monotonic: Optional[float] = None
        self._tracer = get_tracer()
        registry = get_registry()
        self._m_fetched_bytes = registry.counter(
            "repro_replication_fetched_bytes_total",
            "Snapshot bytes pulled over the replication protocol.",
        )
        self._m_fetch_chunks = registry.counter(
            "repro_replication_fetch_chunks_total",
            "repl_fetch round trips made while mirroring snapshot files.",
        )
        self._m_wal_records = registry.counter(
            "repro_replication_wal_records_total",
            "WAL records applied to the mirror (appended or rewritten).",
        )
        syncs = registry.counter(
            "repro_replication_syncs_total",
            "Completed syncs that changed the mirror, by kind.",
            ("kind",),
        )
        self._m_syncs_full = syncs.labels(kind="full")
        self._m_syncs_delta = syncs.labels(kind="delta")
        self._m_gen_lag = registry.gauge(
            "repro_replica_generation_lag",
            "Snapshot generations the peer is ahead of this mirror.",
        )
        self._m_wal_lag = registry.gauge(
            "repro_replica_wal_lag_bytes",
            "WAL bytes the peer holds that this mirror has not applied.",
        )
        age = registry.gauge(
            "repro_replica_last_sync_age_seconds",
            "Seconds since this mirror last completed a sync (-1: never).",
        )
        age.set_function(self._sync_age)

    def _sync_age(self) -> float:
        if self._last_sync_monotonic is None:
            return -1.0
        return time.monotonic() - self._last_sync_monotonic

    # ------------------------------------------------------------------ #
    # Sidecar state
    # ------------------------------------------------------------------ #
    def _state_path(self) -> str:
        return os.path.join(self.path, MIRROR_STATE_NAME)

    def _load_state(self) -> Dict[str, object]:
        try:
            with open(self._state_path(), "r", encoding="utf-8") as handle:
                state = json.load(handle)
            if isinstance(state, dict):
                return state
        except (OSError, json.JSONDecodeError):
            pass
        return {"generation": None, "wal_seq": 0, "wal_bytes": 0, "files": {}}

    def _save_state(self) -> None:
        data = json.dumps(self._state, indent=2, sort_keys=True).encode("utf-8")
        _write_file_atomic(self._state_path(), data, suffix=".tmp")

    @property
    def generation(self) -> Optional[int]:
        """Generation of the last completed sync (None before the first)."""
        gen = self._state.get("generation")
        return None if gen is None else int(gen)

    @property
    def wal_seq(self) -> int:
        """Highest WAL sequence number mirrored so far."""
        return int(self._state.get("wal_seq", 0))

    # ------------------------------------------------------------------ #
    # Lag
    # ------------------------------------------------------------------ #
    def observe_peer_token(self, token: Optional[Sequence[int]]) -> Dict[str, float]:
        """Record how far behind the peer this mirror is, from its token.

        ``token`` is the peer's ``(generation, WAL bytes)`` state token (as
        served by ``stats``); ``None`` — a peer that could not report one —
        leaves the gauges untouched.  Sets the ``repro_replica_*`` lag
        gauges and returns the computed distances, so pollers
        (:class:`repro.service.remote.RemoteReadReplica`, the CLI
        ``replicate`` loop) expose lag as a side effect of the check they
        already make.
        """
        if token is None:
            return {}
        peer_gen, peer_wal = int(token[0]), int(token[1])
        local_gen = self.generation
        gen_lag = max(0, peer_gen - (local_gen if local_gen is not None else 0))
        if local_gen == peer_gen:
            wal_lag = max(0, peer_wal - int(self._state.get("wal_bytes", 0)))
        else:
            # Different generation: none of the peer's current WAL is
            # mirrored yet (a snapshot sync replaces ours wholesale).
            wal_lag = peer_wal
        self._m_gen_lag.set(gen_lag)
        self._m_wal_lag.set(wal_lag)
        return {
            "generation_lag": float(gen_lag),
            "wal_lag_bytes": float(wal_lag),
            "last_sync_age_seconds": self._sync_age(),
        }

    # ------------------------------------------------------------------ #
    # Sync
    # ------------------------------------------------------------------ #
    def sync(self) -> SyncReport:
        """Bring the mirror up to date; retries through source compactions."""
        last_error: Optional[Exception] = None
        for attempt in range(max(1, self.sync_retries)):
            if attempt:
                time.sleep(_RETRY_SLEEP)
            try:
                with self._tracer.start_span("replication.sync") as span:
                    report = self._sync_once()
                    span.set_attribute("full", report.full_sync)
                    span.set_attribute("changed", report.changed)
            except ReplicationStaleError as exc:
                last_error = exc
                continue
            if report.changed:
                self.syncs += 1
                (self._m_syncs_full if report.full_sync else self._m_syncs_delta).inc()
                self._m_wal_records.inc(report.wal_records)
            self._last_sync_monotonic = time.monotonic()
            # A completed sync means the mirror holds everything the peer
            # advertised when the sync started.
            self._m_gen_lag.set(0)
            self._m_wal_lag.set(0)
            return report
        raise ReplicationError(
            f"mirror at {self.path} could not complete a sync in "
            f"{self.sync_retries} attempts (source kept moving): {last_error}"
        )

    def _sync_once(self) -> SyncReport:
        remote = self.source.repl_manifest()
        generation = int(remote["generation"])
        if self.generation == generation:
            with self._tracer.start_span(
                "replication.sync.delta", {"generation": generation}
            ):
                return self._sync_wal_only(generation)
        with self._tracer.start_span(
            "replication.sync.full", {"generation": generation}
        ):
            return self._sync_snapshot(remote)

    # -- WAL tail only (same generation) ------------------------------- #
    def _wal_suffix(
        self, generation: int, after_bytes: int, next_seq: int
    ) -> Optional[Dict[str, object]]:
        """Cursor-mode tail from the source, or ``None`` for the legacy path.

        ``None`` means the source has no byte-offset cursor — no
        ``repl_wal_suffix`` attribute, a connection that negotiated it
        away, or a pre-cursor server that answered the legacy shape — and
        the caller re-frames decoded records instead.
        """
        fetch = getattr(self.source, "repl_wal_suffix", None)
        if fetch is None:
            return None
        payload = fetch(int(generation), int(after_bytes), int(next_seq))
        if not isinstance(payload, dict):
            return None
        if payload.get("rebase"):
            return payload
        if "data" not in payload or "count" not in payload:
            return None
        data = payload["data"]
        if isinstance(data, str):
            data = base64.b64decode(data)
        payload["data"] = bytes(data)
        return payload

    def _sync_wal_only(self, generation: int) -> SyncReport:
        wal_path = os.path.join(self.path, WAL_NAME)
        try:
            local_bytes = os.path.getsize(wal_path)
        except OSError:
            local_bytes = 0
        intact = local_bytes == int(self._state.get("wal_bytes", 0))
        cursor_supported = True
        if intact:
            # Byte-offset fast path: ship only the bytes after our cursor
            # and append them verbatim — O(new tail) per poll,
            # byte-identical to the source by construction.
            suffix = self._wal_suffix(generation, local_bytes, self.wal_seq + 1)
            if suffix is None:
                cursor_supported = False
            elif suffix.get("rebase"):
                # rebase: the source's log shrank under our cursor (writer
                # restart recovery) — fall through to a full rewrite.
                intact = False
            else:
                count = int(suffix["count"])
                if not count:
                    return SyncReport(
                        generation=generation, full_sync=False, changed=False
                    )
                with open(wal_path, "ab") as handle:
                    handle.write(suffix["data"])
                    handle.flush()
                    os.fsync(handle.fileno())
                self._state["wal_seq"] = self.wal_seq + count
                self._state["wal_bytes"] = os.path.getsize(wal_path)
                self._save_state()
                return SyncReport(
                    generation=generation,
                    full_sync=False,
                    changed=True,
                    wal_records=count,
                )
        # A full rewrite is needed: our tail is suspect (killed
        # mid-append) or the cursor rebased.  Suffix-from-zero keeps the
        # rewrite raw when the source supports the cursor.
        if cursor_supported:
            suffix = self._wal_suffix(generation, 0, 1)
            if suffix is not None and not suffix.get("rebase"):
                applied = int(suffix["count"])
                _write_file_atomic(wal_path, suffix["data"])
                self._state["wal_seq"] = applied
                self._state["wal_bytes"] = os.path.getsize(wal_path)
                self._save_state()
                return SyncReport(
                    generation=generation,
                    full_sync=False,
                    changed=True,
                    wal_records=applied,
                )
        # Legacy record-replay path (source without the byte-offset
        # cursor, or a source whose log keeps moving mid-rebase).
        after_seq = self.wal_seq if intact else 0
        tail = self.source.repl_wal(generation, after_seq)
        total = int(tail["total"])
        if intact and total == after_seq:
            return SyncReport(generation=generation, full_sync=False, changed=False)
        if intact and total > after_seq:
            frames = b"".join(
                _frame(int(r["seq"]), dict(r["payload"])) for r in tail["records"]
            )
            with open(wal_path, "ab") as handle:
                handle.write(frames)
                handle.flush()
                os.fsync(handle.fileno())
            applied = total - after_seq
        else:
            # The source's log shrank under our cursor (writer restart
            # recovery) or our own tail is suspect (killed mid-append):
            # rewrite the whole log atomically.
            if after_seq:
                tail = self.source.repl_wal(generation, 0)
                total = int(tail["total"])
            self._write_wal_atomic(tail["records"])
            applied = total
        self._state["wal_seq"] = total
        self._state["wal_bytes"] = os.path.getsize(wal_path)
        self._save_state()
        return SyncReport(
            generation=generation,
            full_sync=False,
            changed=True,
            wal_records=applied,
        )

    def _write_wal_atomic(self, records) -> str:
        frames = b"".join(_frame(int(r["seq"]), dict(r["payload"])) for r in records)
        wal_path = os.path.join(self.path, WAL_NAME)
        _write_file_atomic(wal_path, frames)
        return wal_path

    # -- Snapshot (generation changed or first sync) -------------------- #
    def _sync_snapshot(self, remote: Dict[str, object]) -> SyncReport:
        generation = int(remote["generation"])
        manifest = Manifest.from_json(str(remote["manifest_json"]))
        report = SyncReport(generation=generation, full_sync=True, changed=True)

        # Files already present under their final name and checksum (e.g.
        # an unchanged hypergraph.npz) are kept; files whose *content* the
        # previous generation already holds under another name (compaction
        # renames every shard, changes few) are linked/copied locally.
        # Only generation-named files may act as donors: they are
        # write-once, so the sidecar checksum is trustworthy — a
        # same-name file like hypergraph.npz can have been atomically
        # replaced by a killed sync after the sidecar was last written.
        known: Dict[str, Dict[str, object]] = dict(self._state.get("files", {}))
        # Donors are keyed by (size, crc32), not bare CRC32: 32 bits alone
        # is thin enough that a collision across many generations would
        # silently install the wrong shard and poison the sidecar.
        by_content: Dict[tuple, str] = {}
        for known_name, meta in known.items():
            if known_name == HYPERGRAPH_NAME:
                continue
            local = _local_path(self.path, known_name)
            if os.path.isfile(local) and os.path.getsize(local) == int(meta["size"]):
                by_content.setdefault((int(meta["size"]), int(meta["crc32"])), known_name)

        new_files: Dict[str, Dict[str, object]] = {}
        to_fetch: List[Dict[str, object]] = []
        to_reuse: List[tuple] = []
        for entry in remote["files"]:
            name = str(entry["name"])
            size = int(entry["size"])
            crc = int(entry["crc32"])
            new_files[name] = {"size": size, "crc32": crc}
            dest = _local_path(self.path, name)
            prior = known.get(name)
            if (
                prior is not None
                and int(prior["crc32"]) == crc
                and os.path.isfile(dest)
                and os.path.getsize(dest) == size
                # Replace-in-place files re-verify against the disk (the
                # sidecar may be stale after a killed sync); write-once
                # generation-named files trust the sidecar.
                and (name != HYPERGRAPH_NAME or file_crc32(dest) == crc)
            ):
                continue  # unchanged in place
            donor = by_content.get((size, crc))
            if donor is not None and donor != name:
                to_reuse.append((donor, name))
            else:
                to_fetch.append(entry)
        # All local reuse happens before any fetch lands, so a fetch that
        # overwrites a same-name file can never corrupt a donor.  Files
        # whose final name already exists locally (hypergraph.npz, or any
        # same-name collision) are *staged* and only installed in the swap
        # sequence below — a sync killed mid-fetch must leave the previous
        # state fully openable.
        self._clean_stale_staged()
        staged: Dict[str, str] = {}

        def _dest(name: str) -> str:
            dest = _local_path(self.path, name)
            if name == HYPERGRAPH_NAME or os.path.exists(dest):
                staged[dest] = dest + ".staged"
                return staged[dest]
            return dest

        for donor, name in to_reuse:
            self._reuse_file(_local_path(self.path, donor), _dest(name))
            report.reused_files += 1
        for entry in to_fetch:
            name, size, crc = str(entry["name"]), int(entry["size"]), int(entry["crc32"])
            self._fetch_file(name, generation, size, crc, _dest(name))
            report.fetched_files += 1
            report.fetched_bytes += size
        if to_reuse or to_fetch:
            # One directory fsync makes every rename/link above durable
            # BEFORE the manifest swap can reference the new names — the
            # same data-before-manifest ordering write_snapshot() uses.
            # (File *contents* are already durable: fetches fsync their
            # bytes, and reuse donors were fsynced when first written; a
            # per-link fsync here would make a mostly-reused delta sync
            # pay full-sync latency for nothing.)
            fsync_path(os.path.join(self.path, SHARD_DIR))
            fsync_path(self.path)

        # The WAL for the pinned generation, staged next to the live one.
        # Cursor-capable sources ship the raw on-disk bytes; others ship
        # records the mirror re-frames deterministically.
        suffix = self._wal_suffix(generation, 0, 1)
        if suffix is not None and not suffix.get("rebase"):
            wal_frames = suffix["data"]
            wal_total = int(suffix["count"])
        else:
            tail = self.source.repl_wal(generation, 0)
            wal_frames = b"".join(
                _frame(int(r["seq"]), dict(r["payload"])) for r in tail["records"]
            )
            wal_total = int(tail["total"])
        wal_path = os.path.join(self.path, WAL_NAME)
        wal_tmp = wal_path + ".sync"
        with open(wal_tmp, "wb") as handle:
            handle.write(wal_frames)
            handle.flush()
            os.fsync(handle.fileno())

        # Install: back-to-back renames in the writer compaction's own
        # order — hypergraph (and any other staged in-place file),
        # manifest, log.  Every fetch above only staged files, so a kill
        # before this point leaves the previous state fully openable; the
        # windows between the renames are the same (microsecond) ones the
        # writer's compact() accepts, and the serving replica rides them
        # out on its already-open engine.
        for final, tmp in staged.items():
            os.replace(tmp, final)
        self._write_manifest_text(str(remote["manifest_json"]))
        os.replace(wal_tmp, wal_path)
        fsync_path(self.path)

        self._state = {
            "generation": generation,
            "wal_seq": wal_total,
            "wal_bytes": os.path.getsize(wal_path),
            "files": new_files,
        }
        self._save_state()
        report.wal_records = wal_total
        sweep_orphan_shards(self.path, manifest)
        return report

    def _clean_stale_staged(self) -> None:
        """Drop ``*.staged`` leftovers of an earlier killed sync."""
        for directory in (self.path, os.path.join(self.path, SHARD_DIR)):
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".staged"):
                    try:
                        os.remove(os.path.join(directory, name))
                    except OSError:  # pragma: no cover - racing cleanup
                        pass

    def _write_manifest_text(self, text: str) -> None:
        _write_file_atomic(manifest_path(self.path), text.encode("utf-8"))

    def _reuse_file(self, donor: str, dest: str) -> None:
        """Satisfy a fetch from a local file with identical content.

        The caller fsyncs the enclosing directories once after the whole
        reuse pass; the donor's content is already durable."""
        tmp = dest + ".sync"
        try:
            if os.path.exists(tmp):
                os.remove(tmp)
            os.link(donor, tmp)  # O(1); snapshot files are immutable
        except OSError:
            shutil.copyfile(donor, tmp)
            with open(tmp, "rb") as handle:
                os.fsync(handle.fileno())
        os.replace(tmp, dest)

    def _fetch_file(
        self, name: str, generation: int, size: int, crc: int, dest: str
    ) -> None:
        """Stream one remote file to ``dest``, verifying size and checksum."""
        tmp = dest + ".sync"
        received = 0
        running_crc = 0
        with open(tmp, "wb") as handle:
            while received < size:
                chunk = self.source.repl_fetch(
                    name, generation, received, min(self.chunk_bytes, size - received)
                )
                data = chunk["data"]
                if isinstance(data, str):
                    data = base64.b64decode(data)
                if not data:
                    break
                handle.write(data)
                running_crc = zlib.crc32(data, running_crc)
                received += len(data)
                self._m_fetch_chunks.inc()
                self._m_fetched_bytes.inc(len(data))
            handle.flush()
            os.fsync(handle.fileno())
        if received != size or (running_crc & 0xFFFFFFFF) != crc:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise ReplicationStaleError(
                f"fetched {name!r} does not match its advertised size/checksum "
                f"({received}/{size} bytes); the source moved — restarting sync"
            )
        os.replace(tmp, dest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreMirror(path={self.path!r}, generation={self.generation}, "
            f"wal_seq={self.wal_seq}, syncs={self.syncs})"
        )
