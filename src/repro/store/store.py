"""The store manager: one directory = snapshot + WAL + source hypergraph.

:class:`IndexStore` owns the lifecycle of a persistent overlap index:

* :meth:`IndexStore.build` computes the overlap structure once (via the
  Stage-3 algorithms) and lays down a sharded snapshot, the per-hyperedge
  sizes, and — by default — the source hypergraph itself, so the store is a
  self-contained artefact any later process can open;
* :meth:`IndexStore.open` validates the manifest (format version and,
  optionally, a caller-supplied hypergraph fingerprint) and recovers the
  write-ahead log, truncating any torn tail left by a crash;
* :meth:`append_add` / :meth:`append_remove` make incremental updates
  durable before they are acknowledged;
* :meth:`load_index` / :meth:`sharded_index` / :meth:`load_hypergraph`
  reconstruct the *current* state — base snapshot plus replayed log — as an
  in-memory :class:`~repro.engine.index.OverlapIndex`, an out-of-core
  :class:`~repro.store.sharded.ShardedIndex`, or a
  :class:`~repro.hypergraph.hypergraph.Hypergraph`;
* :meth:`compact` folds the log back into a fresh snapshot generation and
  truncates it, keeping recovery O(log length) between compactions.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.chaos.failpoints import fire as _failpoint
from repro.engine.index import OverlapIndex
from repro.hypergraph.hypergraph import Hypergraph
from repro.io.serialization import load_hypergraph_npz, save_hypergraph_npz
from repro.parallel.executor import ParallelConfig
from repro.store.format import (
    FingerprintMismatchError,
    HYPERGRAPH_NAME,
    Manifest,
    PathLike,
    ReadOnlyStoreError,
    SHARD_DIR,
    StoreError,
    StoreFormatError,
    WAL_NAME,
    fsync_path,
    manifest_path,
    read_manifest,
)
from repro.store.sharded import ShardedIndex
from repro.store.snapshot import (
    materialize_index,
    sweep_orphan_shards,
    write_snapshot,
)
from repro.store.wal import OP_ADD, WalRecord, WriteAheadLog


def _next_generation(path: PathLike) -> int:
    """Generation for a snapshot written over ``path`` (0 when empty).

    Continues the existing store's sequence so that WAL records stamped
    with the superseded generation are recognisably stale.  Falls back to
    scanning shard file names when the old manifest is unreadable.
    """
    try:
        return read_manifest(path).generation + 1
    except StoreError:
        pass
    shard_dir = os.path.join(str(path), SHARD_DIR)
    best = -1
    if os.path.isdir(shard_dir):
        for name in os.listdir(shard_dir):
            if name.startswith("g") and "-" in name:
                prefix = name[1 : name.index("-")]
                if prefix.isdigit():
                    best = max(best, int(prefix))
    return best + 1


def _save_hypergraph_atomic(h: Hypergraph, path: str) -> None:
    """Write ``hypergraph.npz`` via temp-fsync-rename-fsync-dir so a crash
    mid-write can never clobber the store's only copy of the source
    hypergraph, and a completed write survives power loss."""
    tmp = path + ".tmp.npz"
    save_hypergraph_npz(h, tmp)
    with open(tmp, "rb") as handle:
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_path(os.path.dirname(path) or ".")


class IndexStore:
    """Handle on one persistent overlap-index directory."""

    def __init__(
        self,
        path: PathLike,
        manifest: Optional[Manifest] = None,
        read_only: bool = False,
    ) -> None:
        self.path = str(path)
        #: Opened read-only: recovery never rewrites the log, and every
        #: mutating method raises :class:`ReadOnlyStoreError` up front.
        self.read_only = bool(read_only)
        self._manifest = manifest if manifest is not None else read_manifest(path)
        self.wal = WriteAheadLog(os.path.join(self.path, WAL_NAME))
        #: Torn WAL tail detected when the store was opened (truncated in
        #: writable mode; merely skipped in read-only mode, since a live
        #: writer may still be appending that very record).
        self.recovered_torn_tail = False
        #: A whole log predating the live snapshot was discarded on open
        #: (crash between a compaction's manifest swap and its WAL truncate).
        self.discarded_stale_wal = False
        self._records: List[WalRecord] = self._recover_wal()

    def _recover_wal(self) -> List[WalRecord]:
        records, valid_bytes, torn = self.wal.replay()
        self.recovered_torn_tail = torn
        generation = self._manifest.generation
        if any(
            r.generation is not None and r.generation != generation
            for r in records
        ):
            # The log was written against a different snapshot generation
            # than the manifest we read — after a compaction folded it in
            # and died before truncating, or (read-only) a live writer
            # compacted between our manifest and log reads.  Replaying it
            # against this snapshot would mis-apply; ignore it.  The state
            # served is the snapshot itself: consistent, possibly stale.
            if not self.read_only:
                self.wal.truncate()
            self.discarded_stale_wal = True
            return []
        if not self.read_only:
            self.wal.commit_recovery(records, valid_bytes, torn)
        return records

    def check_writable(self) -> None:
        """Raise :class:`ReadOnlyStoreError` when opened with ``read_only=True``."""
        if self.read_only:
            raise ReadOnlyStoreError(
                f"store at {self.path} was opened read-only; writes go "
                "through the single writer (open with read_only=False "
                "while holding the StoreLock)"
            )

    # ------------------------------------------------------------------ #
    # Creation / opening
    # ------------------------------------------------------------------ #
    @classmethod
    def exists(cls, path: PathLike) -> bool:
        """True when ``path`` holds a snapshot manifest."""
        return os.path.isfile(manifest_path(path))

    @classmethod
    def build(
        cls,
        h: Hypergraph,
        path: PathLike,
        algorithm: str = "hashmap",
        num_shards: int = 4,
        config: Optional[ParallelConfig] = None,
        save_hypergraph: bool = True,
        provenance: Optional[Dict[str, object]] = None,
    ) -> "IndexStore":
        """Compute the overlap index of ``h`` and persist it under ``path``."""
        index = OverlapIndex.build(h, algorithm=algorithm, config=config)
        return cls.from_index(
            index,
            h.fingerprint(),
            path,
            num_shards=num_shards,
            hypergraph=h if save_hypergraph else None,
            provenance=provenance,
        )

    @classmethod
    def from_index(
        cls,
        index: OverlapIndex,
        fingerprint: str,
        path: PathLike,
        num_shards: int = 4,
        hypergraph: Optional[Hypergraph] = None,
        provenance: Optional[Dict[str, object]] = None,
    ) -> "IndexStore":
        """Persist an already-built index (and optionally its hypergraph).

        Rebuilding over an existing store continues its generation sequence
        (so stale WAL records are recognisable) and sweeps the superseded
        snapshot's shard files.
        """
        os.makedirs(str(path), exist_ok=True)
        generation = _next_generation(path)
        if hypergraph is not None:
            _save_hypergraph_atomic(
                hypergraph, os.path.join(str(path), HYPERGRAPH_NAME)
            )
        manifest = write_snapshot(
            index,
            path,
            fingerprint=fingerprint,
            num_shards=num_shards,
            generation=generation,
            provenance=provenance,
        )
        store = cls(path, manifest=manifest)
        store.wal.truncate()  # a fresh snapshot starts with an empty log
        store._records = []
        sweep_orphan_shards(path, manifest)
        return store

    @classmethod
    def open(
        cls,
        path: PathLike,
        fingerprint: Optional[str] = None,
        read_only: bool = False,
    ) -> "IndexStore":
        """Open an existing store, recovering the WAL.

        When ``fingerprint`` is given it must match the store's *current*
        state (snapshot fingerprint advanced by any logged updates).

        With ``read_only=True`` the handle never rewrites anything — WAL
        recovery replays the valid prefix without truncating torn tails,
        and :meth:`append_add` / :meth:`append_remove` / :meth:`compact`
        raise :class:`ReadOnlyStoreError` instead of failing deep inside
        the append path.  Any number of read-only handles may share a
        store with one writer (see :class:`repro.service.StoreLock`).
        """
        store = cls(path, read_only=read_only)
        if fingerprint is not None:
            current = store.current_fingerprint()
            if current is not None and current != fingerprint:
                raise FingerprintMismatchError(
                    f"store at {store.path} describes hypergraph "
                    f"{current[:12]}…, not {fingerprint[:12]}…"
                )
        return store

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> Manifest:
        return self._manifest

    @property
    def wal_records(self) -> List[WalRecord]:
        """The recovered (valid-prefix) log records, oldest first."""
        return list(self._records)

    def current_fingerprint(self) -> Optional[str]:
        """Fingerprint of the current state: last logged one, else snapshot's.

        Returns ``None`` when updates were logged without fingerprints (the
        store can still be replayed, but cannot vouch for identity).
        """
        for record in reversed(self._records):
            return record.fingerprint
        return self._manifest.fingerprint

    def num_wal_records(self) -> int:
        return len(self._records)

    @staticmethod
    def state_token(path: PathLike) -> Tuple[int, int]:
        """Cheap change-detection token: ``(generation, WAL byte length)``.

        The token changes whenever a compaction swaps the manifest (the
        generation bumps) or a writer appends/truncates the log — exactly
        the events after which a reader's view is stale.  Reading it costs
        one small-JSON parse plus one ``stat``; pollers (the service
        layer's :class:`~repro.service.ReadReplica`) compare tokens instead
        of re-opening the store.
        """
        generation = read_manifest(path).generation
        try:
            wal_bytes = os.path.getsize(os.path.join(str(path), WAL_NAME))
        except OSError:
            wal_bytes = 0
        return generation, wal_bytes

    def current_state_token(self) -> Tuple[int, int]:
        """:meth:`state_token` of this store's directory (fresh from disk)."""
        return self.state_token(self.path)

    def info(self) -> Dict[str, object]:
        """Human-facing summary (the CLI's ``index info`` payload)."""
        m = self._manifest
        return {
            "path": self.path,
            "format_version": m.format_version,
            "generation": m.generation,
            "fingerprint": m.fingerprint,
            "current_fingerprint": self.current_fingerprint(),
            "num_hyperedges": m.num_hyperedges,
            "num_pairs": m.num_pairs,
            "max_weight": m.max_weight,
            "algorithm": m.algorithm,
            "num_shards": len(m.shards),
            "wal_records": self.num_wal_records(),
            "has_hypergraph": os.path.isfile(
                os.path.join(self.path, HYPERGRAPH_NAME)
            ),
            "provenance": dict(m.provenance),
        }

    # ------------------------------------------------------------------ #
    # Reconstruction (snapshot + replayed WAL)
    # ------------------------------------------------------------------ #
    def _replay_into(self, index) -> None:
        for record in self._records:
            if record.op == OP_ADD:
                index.add_hyperedge(
                    record.edge_id,
                    int(record.payload["size"]),
                    np.asarray(record.payload["pair_ids"], dtype=np.int64),
                    np.asarray(record.payload["pair_weights"], dtype=np.int64),
                )
            else:
                index.remove_hyperedge(record.edge_id)

    def load_index(self) -> OverlapIndex:
        """The current index fully materialised in memory."""
        index = materialize_index(self.path, self._manifest)
        self._replay_into(index)
        return index

    def sharded_index(
        self,
        max_resident_shards: Optional[int] = None,
        mmap: bool = True,
    ) -> ShardedIndex:
        """The current index as an out-of-core shard-streaming view."""
        index = ShardedIndex(
            self.path,
            manifest=self._manifest,
            max_resident_shards=max_resident_shards,
            mmap=mmap,
        )
        self._replay_into(index)
        return index

    def load_hypergraph(self) -> Hypergraph:
        """The current source hypergraph (saved copy + replayed WAL).

        The archive's own fingerprint disambiguates *which* state the saved
        copy holds: a copy already at the current (post-WAL) fingerprint —
        e.g. written by a compaction that died before swapping the manifest
        — is returned as-is, so log records are never double-applied.
        """
        path = os.path.join(self.path, HYPERGRAPH_NAME)
        if not os.path.isfile(path):
            raise StoreFormatError(
                f"store at {self.path} was built without its hypergraph "
                "(save_hypergraph=False); supply one when opening"
            )
        from repro.engine.engine import with_appended_edge, with_emptied_edge

        h = load_hypergraph_npz(path)
        target = self.current_fingerprint()
        saved = h.fingerprint()
        if target is not None and saved == target:
            return h
        records = self._records
        # The saved copy may sit *mid*-sequence: a compaction that died
        # after atomically swapping in the folded hypergraph but before
        # the manifest swap leaves a copy already containing a prefix of
        # the log.  Each record carries its post-apply fingerprint, so
        # replay only the suffix the copy does not yet contain —
        # otherwise the prefix would be applied twice.
        for position, record in enumerate(records):
            if record.fingerprint is not None and record.fingerprint == saved:
                records = records[position + 1:]
                break
        for record in records:
            if record.op == OP_ADD:
                members = np.asarray(record.payload["members"], dtype=np.int64)
                h = with_appended_edge(h, members, record.payload.get("name"))
            else:
                h = with_emptied_edge(h, record.edge_id)
        if target is not None and h.fingerprint() != target:
            raise StoreError(
                f"store at {self.path} is inconsistent: saved hypergraph plus "
                f"{len(records)} log records hashes to "
                f"{h.fingerprint()[:12]}…, expected {target[:12]}…; rebuild "
                "the store from its source hypergraph"
            )
        return h

    # ------------------------------------------------------------------ #
    # Durable incremental updates
    # ------------------------------------------------------------------ #
    @contextmanager
    def batch(self) -> Iterator["IndexStore"]:
        """Group-commit scope for :meth:`append_add` / :meth:`append_remove`.

        All records appended inside the ``with`` block share one fsync
        (see :meth:`WriteAheadLog.batch`); none of them is durable — and so
        none may be acknowledged to a client — until the block exits.  The
        admission queue uses this to turn a coalesced batch of updates into
        a single fsync.
        """
        self.check_writable()
        with self.wal.batch():
            yield self

    def append_add(
        self,
        edge_id: int,
        members,
        pair_ids,
        pair_weights,
        fingerprint: Optional[str] = None,
        name: Optional[str] = None,
    ) -> WalRecord:
        """Make one ``add_hyperedge`` durable (fsynced before returning)."""
        self.check_writable()
        record = self.wal.append_add(
            edge_id,
            members,
            pair_ids,
            pair_weights,
            fingerprint=fingerprint,
            name=name,
            generation=self._manifest.generation,
        )
        self._records.append(record)
        return record

    def append_remove(
        self, edge_id: int, fingerprint: Optional[str] = None
    ) -> WalRecord:
        """Make one ``remove_hyperedge`` durable (fsynced before returning)."""
        self.check_writable()
        record = self.wal.append_remove(
            edge_id,
            fingerprint=fingerprint,
            generation=self._manifest.generation,
        )
        self._records.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def compact(self, num_shards: Optional[int] = None) -> Manifest:
        """Fold the WAL into a fresh snapshot generation and truncate it.

        Crash-safe ordering: (1) the updated hypergraph is atomically
        swapped in — if the process dies after this, the old manifest plus
        the still-intact WAL remain authoritative and
        :meth:`load_hypergraph` detects the already-current copy by its
        fingerprint; (2) the new generation's shard files are laid down
        (fsynced) next to the live ones; (3) the manifest is atomically
        replaced — from this point the WAL is stale and recovery discards
        it by its generation stamp even if (4) the truncate never runs.
        Superseded and abandoned shard files are swept last.
        """
        self.check_writable()
        old_manifest = self._manifest
        if num_shards is None:
            num_shards = max(1, len(old_manifest.shards))
        index = self.load_index()
        # Chaos: a fault here models a crash during the fold, before any
        # on-disk state of the new generation exists.
        _failpoint("store.compact.fold")
        fingerprint = self.current_fingerprint() or old_manifest.fingerprint
        hypergraph = None
        if os.path.isfile(os.path.join(self.path, HYPERGRAPH_NAME)):
            hypergraph = self.load_hypergraph()
            fingerprint = hypergraph.fingerprint()
        provenance = dict(old_manifest.provenance)
        provenance["compacted_from_generation"] = old_manifest.generation
        provenance["compacted_wal_records"] = self.num_wal_records()
        if hypergraph is not None:
            _save_hypergraph_atomic(
                hypergraph, os.path.join(self.path, HYPERGRAPH_NAME)
            )
        # Chaos: a fault here models a crash during the install — new shard
        # files may be partially laid down, the manifest swap has not
        # happened, so the old generation + WAL must stay authoritative.
        _failpoint("store.compact.install")
        manifest = write_snapshot(
            index,
            self.path,
            fingerprint=fingerprint,
            num_shards=num_shards,
            generation=old_manifest.generation + 1,
            provenance=provenance,
        )
        self.wal.truncate()
        self._records = []
        self._manifest = manifest
        sweep_orphan_shards(self.path, manifest)
        return manifest

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexStore(path={self.path!r}, generation={self._manifest.generation}, "
            f"num_pairs={self._manifest.num_pairs}, wal={self.num_wal_records()})"
        )
