"""Write-ahead log of incremental overlap-index updates.

Each ``add_hyperedge`` / ``remove_hyperedge`` appends one framed record, so
an updated index is recoverable from ``snapshot + log`` without a rebuild.
Records are line-delimited and self-checking::

    <seq>\t<crc32 hex of payload>\t<payload JSON>\n

A crash mid-append leaves a torn tail — a partial line, a payload whose
CRC32 does not match, or a sequence break.  :meth:`WriteAheadLog.recover`
replays the longest valid prefix and truncates the file to it, which is the
standard redo-log recovery contract: every acknowledged (fsynced) record
survives, a torn trailing record is dropped.

Add records carry both the *member vertices* of the new hyperedge (so the
source hypergraph can be replayed forward) and its precomputed *overlap
row* (``pair_ids`` / ``pair_weights``, so the index overlay never repeats
the wedge walk).  Records optionally carry the post-update hypergraph
fingerprint, letting readers validate a live store against a hypergraph
without replaying it.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.failpoints import fire as _failpoint
from repro.obs import get_registry, get_tracer
from repro.store.format import PathLike, StoreError, StoreFormatError

OP_ADD = "add"
OP_REMOVE = "remove"


@dataclass
class WalRecord:
    """One decoded log record."""

    seq: int
    op: str
    payload: dict

    @property
    def edge_id(self) -> int:
        return int(self.payload["edge_id"])

    @property
    def fingerprint(self) -> Optional[str]:
        return self.payload.get("fingerprint")

    @property
    def generation(self) -> Optional[int]:
        """Snapshot generation the record applies on top of (None if unknown)."""
        gen = self.payload.get("gen")
        return None if gen is None else int(gen)


def _frame(seq: int, payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{seq}\t{crc:08x}\t{body}\n".encode("utf-8")


class WriteAheadLog:
    """Append-only, checksummed redo log for one store directory."""

    def __init__(self, path: PathLike) -> None:
        self.path = str(path)
        self._next_seq: Optional[int] = None
        self._batch_handle = None
        self._batch_poisoned = False
        #: Group commits performed via :meth:`batch` (observability).
        self.batch_commits = 0
        self._tracer = get_tracer()
        # Durability telemetry, bound once per log (striped counters).
        registry = get_registry()
        self._m_records = registry.counter(
            "repro_wal_appended_records_total", "Records framed into the WAL."
        )
        self._m_bytes = registry.counter(
            "repro_wal_appended_bytes_total", "Bytes framed into the WAL."
        )
        self._m_fsyncs = registry.counter(
            "repro_wal_fsyncs_total", "fsync calls made durable by the WAL."
        )
        self._m_recovery_discarded = registry.counter(
            "repro_wal_recovery_discarded_bytes_total",
            "Torn-tail bytes truncated by WAL recovery.",
        )

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def replay(self) -> Tuple[List[WalRecord], int, bool]:
        """Decode the longest valid prefix of the log.

        Returns ``(records, valid_bytes, torn)`` where ``valid_bytes`` is
        the byte length of the prefix and ``torn`` reports whether anything
        (a partial or corrupt tail) followed it.
        """
        if not os.path.isfile(self.path):
            return [], 0, False
        with open(self.path, "rb") as handle:
            data = handle.read()
        records: List[WalRecord] = []
        offset = 0
        expected_seq = 1
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # partial trailing line: torn append
            line = data[offset : newline]
            record = self._decode(line, expected_seq)
            if record is None:
                break
            records.append(record)
            offset = newline + 1
            expected_seq += 1
        return records, offset, offset < len(data)

    @staticmethod
    def _decode(line: bytes, expected_seq: int) -> Optional[WalRecord]:
        parts = line.split(b"\t", 2)
        if len(parts) != 3:
            return None
        try:
            seq = int(parts[0])
            crc = int(parts[1], 16)
        except ValueError:
            return None
        if seq != expected_seq:
            return None
        if zlib.crc32(parts[2]) & 0xFFFFFFFF != crc:
            return None
        try:
            payload = json.loads(parts[2].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("op") not in (
            OP_ADD,
            OP_REMOVE,
        ):
            return None
        return WalRecord(seq=seq, op=str(payload["op"]), payload=payload)

    def read_suffix(
        self, offset: int, next_seq: int
    ) -> Optional[Tuple[bytes, int, int]]:
        """Raw framed bytes of the valid log suffix at a byte/seq cursor.

        The replication fast path (``docs/PROTOCOL.md``, ``repl_wal`` with
        ``after_bytes``): a mirror that already holds the first ``offset``
        bytes — ``next_seq - 1`` records — asks only for what follows, and
        appends the returned bytes verbatim, staying byte-identical to the
        source without re-framing anything.  Within one generation the
        valid prefix of the log is append-only (recovery only ever trims a
        *torn, never-acknowledged* tail; compaction bumps the generation),
        so shipping the suffix raw is sound.

        Returns ``(data, count, end_offset)``: ``count`` whole records
        whose frames are ``data``, validated structurally (line shape,
        sequence continuity from ``next_seq``, CRC32) without JSON-decoding
        payloads, ending at byte ``end_offset``.  A partial trailing line
        (an append in flight) is simply not included.  Returns ``None``
        when the cursor does not line up with the on-disk log — the file is
        shorter than ``offset``, or a *complete* line at/after the cursor
        fails validation — in which case the caller must rebase (re-read
        from byte 0).
        """
        offset = int(offset)
        expected = int(next_seq)
        if offset < 0 or expected < 1:
            raise StoreError(
                f"invalid WAL cursor (offset={offset}, next_seq={next_seq})"
            )
        if not os.path.isfile(self.path):
            return (b"", 0, 0) if offset == 0 else None
        with open(self.path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < offset:
                return None  # log shrank under the cursor
            handle.seek(offset)
            data = handle.read()
        end = 0
        count = 0
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # torn in-flight append: stop cleanly before it
            parts = data[pos:newline].split(b"\t", 2)
            if len(parts) != 3:
                return None
            try:
                seq = int(parts[0])
                crc = int(parts[1], 16)
            except ValueError:
                return None
            if seq != expected or zlib.crc32(parts[2]) & 0xFFFFFFFF != crc:
                # A complete line that does not continue the cursor: the
                # log diverged (rewritten or corrupt) — rebase.  A partial
                # flush can only truncate the tail, never alter a complete
                # line, so this is never a benign race.
                return None
            pos = newline + 1
            end = pos
            count += 1
            expected += 1
        return bytes(data[:end]), count, offset + end

    def commit_recovery(
        self, records: List[WalRecord], valid_bytes: int, torn: bool
    ) -> None:
        """Finish a recovery decided from one :meth:`replay` result.

        Truncates the torn tail (if any) and positions the append sequence,
        without re-reading the log — callers that already hold a replay
        result (e.g. :class:`repro.store.IndexStore` on open) use this to
        keep recovery a single pass over the file.
        """
        if torn:
            try:
                torn_bytes = max(0, os.path.getsize(self.path) - valid_bytes)
            except OSError:
                torn_bytes = 0
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            self._m_fsyncs.inc()
            self._m_recovery_discarded.inc(torn_bytes)
        self._next_seq = len(records) + 1

    def recover(self) -> List[WalRecord]:
        """Replay the valid prefix and truncate any torn tail in place."""
        records, valid_bytes, torn = self.replay()
        self.commit_recovery(records, valid_bytes, torn)
        return records

    def __len__(self) -> int:
        records, _, _ = self.replay()
        return len(records)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _peek_seq(self) -> int:
        if self._next_seq is None:
            records, _, torn = self.replay()
            if torn:
                raise StoreFormatError(
                    f"write-ahead log {self.path} has a torn tail; call "
                    "recover() before appending"
                )
            self._next_seq = len(records) + 1
        return self._next_seq

    def _append(self, payload: dict) -> int:
        # The sequence number is consumed only AFTER the frame is written
        # (and, outside a batch, fsynced).  Advancing it first would leave
        # a hole when the write raises (e.g. ENOSPC): the next successful
        # append would frame seq N+1 with no seq N on disk, replay() would
        # stop at the gap, and every later durable, acknowledged record
        # would silently vanish on recovery.
        seq = self._peek_seq()
        frame = _frame(seq, payload)
        if self._batch_handle is not None:
            if self._batch_poisoned:
                raise StoreError(
                    f"write-ahead log {self.path} batch is poisoned by an "
                    "earlier failed append; no further records may join "
                    "this group commit"
                )
            try:
                # Group commit: the enclosing batch() owns the flush + fsync.
                _failpoint("wal.append")
                self._batch_handle.write(frame)
            except OSError:
                # The frame may be partially buffered/written; refuse any
                # further appends (they would land after the tear and be
                # discarded by replay) and let batch() trim on exit.
                self._batch_poisoned = True
                raise
        else:
            with open(self.path, "ab") as handle:
                start = handle.tell()
                try:
                    _failpoint("wal.append")
                    handle.write(frame)
                    handle.flush()
                    os.fsync(handle.fileno())
                except OSError:
                    self._rollback_failed_write(handle, start)
                    raise
            self._m_fsyncs.inc()
        self._m_records.inc()
        self._m_bytes.inc(len(frame))
        self._next_seq = seq + 1
        return seq

    def _rollback_failed_write(self, handle, start: int) -> None:
        """Trim whatever a failed append left behind ``start``.

        A failed write/flush/fsync may have pushed part (or all) of the
        frame to disk; since the record was never acknowledged it must not
        survive, and a torn frame must not sit under later appends.  When
        even the trim fails, drop the cached sequence so the next append
        re-replays the file and surfaces the torn tail to ``recover()``.
        """
        try:
            handle.truncate(start)
            handle.flush()
            os.fsync(handle.fileno())
        except OSError:
            self._next_seq = None

    @contextmanager
    def batch(self) -> Iterator["WriteAheadLog"]:
        """Group-commit scope: appends inside share one flush + fsync.

        Per-record durability costs one fsync each; an update stream admits
        far faster when a batch of records is framed into the log and made
        durable with a *single* fsync on exit.  Callers must not acknowledge
        any record of the batch before the ``with`` block exits — inside it,
        records are framed but not yet durable.  Nested batches join the
        outermost one (one fsync total).  The fsync runs even when the block
        raises: records already framed stay valid on disk, and the recovery
        contract (valid prefix survives) is unaffected.

        A failed append *poisons* the batch: the broken frame may be torn
        on disk, so later appends (which would land after the tear and be
        discarded by replay) raise :class:`StoreError` until the batch
        exits, and exit trims the torn tail back to the last whole record.
        """
        if self._batch_handle is not None:
            yield self  # nested: the outer batch owns the commit
            return
        # The handle deliberately outlives this statement: every append in
        # the batch shares it, and the finally below closes it.
        self._batch_handle = open(self.path, "ab")  # noqa: SIM115
        self._batch_poisoned = False
        try:
            yield self
        finally:
            handle, self._batch_handle = self._batch_handle, None
            poisoned, self._batch_poisoned = self._batch_poisoned, False
            try:
                try:
                    with self._tracer.start_span("wal.fsync"):
                        _failpoint("wal.fsync")
                        handle.flush()
                        os.fsync(handle.fileno())
                except OSError:
                    # Durability of the framed records is unknown; the next
                    # append must re-derive its sequence from disk.
                    poisoned = True
                    self._next_seq = None
                    raise
            finally:
                handle.close()
                if poisoned:
                    # A failed append may have left a torn frame at the
                    # tail; trim it now so the log is append-ready again.
                    self._next_seq = None
                    try:
                        self.recover()
                    except (OSError, StoreError):
                        pass  # the next append/recover() surfaces it
            if not poisoned:
                self.batch_commits += 1
                self._m_fsyncs.inc()

    def append_add(
        self,
        edge_id: int,
        members: Sequence[int] | np.ndarray,
        pair_ids: Sequence[int] | np.ndarray,
        pair_weights: Sequence[int] | np.ndarray,
        fingerprint: Optional[str] = None,
        name: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> WalRecord:
        """Log one ``add_hyperedge`` (members + precomputed overlap row).

        ``generation`` stamps the snapshot generation the record applies on
        top of; recovery uses it to discard a log that a completed
        compaction already folded in (crash before the post-swap truncate).
        """
        members = np.asarray(members, dtype=np.int64)
        payload = {
            "op": OP_ADD,
            "edge_id": int(edge_id),
            "members": [int(v) for v in members],
            "size": int(members.size),
            "pair_ids": [int(i) for i in np.asarray(pair_ids, dtype=np.int64)],
            "pair_weights": [
                int(w) for w in np.asarray(pair_weights, dtype=np.int64)
            ],
        }
        if fingerprint is not None:
            payload["fingerprint"] = str(fingerprint)
        if name is not None:
            payload["name"] = str(name)
        if generation is not None:
            payload["gen"] = int(generation)
        return WalRecord(seq=self._append(payload), op=OP_ADD, payload=payload)

    def append_remove(
        self,
        edge_id: int,
        fingerprint: Optional[str] = None,
        generation: Optional[int] = None,
    ) -> WalRecord:
        """Log one ``remove_hyperedge`` (see :meth:`append_add` for ``generation``)."""
        payload = {"op": OP_REMOVE, "edge_id": int(edge_id)}
        if fingerprint is not None:
            payload["fingerprint"] = str(fingerprint)
        if generation is not None:
            payload["gen"] = int(generation)
        return WalRecord(seq=self._append(payload), op=OP_REMOVE, payload=payload)

    def truncate(self) -> None:
        """Reset the log to empty (after a compaction folded it in)."""
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._m_fsyncs.inc()
        self._next_seq = 1
