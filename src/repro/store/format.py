"""On-disk format of the persistent overlap-index store.

A store is a directory:

.. code-block:: text

    <store>/
        manifest.json        versioned description of the snapshot (below)
        edge_sizes.npy       per-hyperedge sizes |e_i| (int64)
        hypergraph.npz       optional source hypergraph (io.serialization)
        wal.log              write-ahead log of incremental updates
        shards/
            g<G>-shard-00000.edges.npy    (k_b, 2) int64, weight-ascending
            g<G>-shard-00000.weights.npy  (k_b,)  int64, ascending

The hyperedge-ID space is partitioned into contiguous row blocks (via
:func:`repro.parallel.partition.blocked_partitions`); a pair ``(i, j)`` with
``i < j`` lives in the shard owning row ``i``.  Within each shard the arrays
keep the :class:`~repro.engine.index.OverlapIndex` invariant — ascending
weight — so every shard answers ``weight >= s`` with one binary search.
Shard files are plain ``.npy`` so they can be opened with
``np.load(mmap_mode="r")`` and paged in lazily.

Format version policy
---------------------
``FORMAT_VERSION`` is bumped on any layout change that an older reader
cannot interpret (new manifest fields with defaults do *not* bump it).
Readers refuse manifests whose major version differs, with an error naming
both versions; ``compact()`` always rewrites snapshots at the current
version, so upgrading a store is "open with matching code, then compact".
The ``generation`` counter names the shard files of the live snapshot —
compaction writes generation ``G+1`` files before atomically replacing the
manifest, so a crash mid-compaction leaves the old snapshot intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Union

from repro.utils.validation import ValidationError

PathLike = Union[str, os.PathLike]

#: Bumped on incompatible layout changes (see the module docstring).
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
EDGE_SIZES_NAME = "edge_sizes.npy"
HYPERGRAPH_NAME = "hypergraph.npz"
WAL_NAME = "wal.log"
SHARD_DIR = "shards"
#: Advisory single-writer lock file (see :class:`repro.service.StoreLock`).
LOCK_NAME = "writer.lock"


class StoreError(ValidationError):
    """Base error for persistent-store failures."""


class StoreFormatError(StoreError):
    """The on-disk layout cannot be interpreted by this reader."""


class FingerprintMismatchError(StoreError):
    """The store describes a different hypergraph than the one supplied."""


class ReadOnlyStoreError(StoreError):
    """A write was attempted through a store handle opened read-only."""


@dataclass
class ShardInfo:
    """Manifest entry for one row-block shard."""

    shard_id: int
    #: Owned hyperedge rows: pairs ``(i, j)`` with ``row_start <= i < row_stop``.
    row_start: int
    row_stop: int
    num_pairs: int
    #: Smallest/largest pair weight in the shard (0/0 when empty).
    min_weight: int
    max_weight: int
    edges_file: str
    weights_file: str


@dataclass
class Manifest:
    """Everything a reader needs to interpret (and trust) a snapshot."""

    format_version: int
    #: :meth:`Hypergraph.fingerprint` of the hypergraph at snapshot time.
    fingerprint: str
    num_hyperedges: int
    num_pairs: int
    max_weight: int
    #: Stage-3 algorithm that enumerated the pairs (build provenance).
    algorithm: str
    #: Snapshot generation; names the shard files (bumped by compaction).
    generation: int = 0
    shards: List[ShardInfo] = field(default_factory=list)
    #: Free-form build provenance (builder, creation time, source dataset…).
    provenance: Dict[str, object] = field(default_factory=dict)
    #: Per-hyperedge size array; generation-named so writing a new snapshot
    #: never clobbers the file the live manifest references.
    edge_sizes_file: str = EDGE_SIZES_NAME

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"manifest is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or "format_version" not in raw:
            raise StoreFormatError("manifest is missing 'format_version'")
        version = raw["format_version"]
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"snapshot format version {version} is not supported by this "
                f"reader (expected {FORMAT_VERSION}); recompact the store "
                "with matching code"
            )
        try:
            # Ignore unknown shard keys: the format policy allows writers at
            # the same FORMAT_VERSION to add fields older readers skip.
            known = {f.name for f in fields(ShardInfo)}
            shards = [
                ShardInfo(**{k: v for k, v in s.items() if k in known})
                for s in raw.get("shards", [])
            ]
            return cls(
                format_version=int(version),
                fingerprint=str(raw["fingerprint"]),
                num_hyperedges=int(raw["num_hyperedges"]),
                num_pairs=int(raw["num_pairs"]),
                max_weight=int(raw["max_weight"]),
                algorithm=str(raw.get("algorithm", "")),
                generation=int(raw.get("generation", 0)),
                shards=shards,
                provenance=dict(raw.get("provenance", {})),
                edge_sizes_file=str(raw.get("edge_sizes_file", EDGE_SIZES_NAME)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"manifest is malformed: {exc}") from exc


def shard_file_names(generation: int, shard_id: int) -> tuple:
    """``(edges_file, weights_file)`` for a shard of a snapshot generation."""
    stem = f"g{int(generation)}-shard-{int(shard_id):05d}"
    return f"{stem}.edges.npy", f"{stem}.weights.npy"


def edge_sizes_file_name(generation: int) -> str:
    """Generation-named per-hyperedge size file."""
    return f"g{int(generation)}-{EDGE_SIZES_NAME}"


def fsync_path(path: PathLike) -> None:
    """fsync a file or directory so it survives power loss.

    Directory fsyncs matter after ``os.replace``: the rename itself lives
    in the directory entry, not the file.
    """
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def manifest_path(store_path: PathLike) -> str:
    return os.path.join(str(store_path), MANIFEST_NAME)


def read_manifest(store_path: PathLike) -> Manifest:
    """Load and validate the manifest of a store directory."""
    path = manifest_path(store_path)
    if not os.path.isfile(path):
        raise StoreFormatError(f"no snapshot manifest at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return Manifest.from_json(handle.read())


def write_manifest(store_path: PathLike, manifest: Manifest) -> None:
    """Durably replace the manifest (write-temp, fsync, rename, fsync dir)."""
    path = manifest_path(store_path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_path(store_path)
