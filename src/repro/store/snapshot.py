"""Writing and reading overlap-index snapshots (the store's base images).

A snapshot is the CSR-style weight-sorted pair arrays of an
:class:`~repro.engine.index.OverlapIndex`, partitioned into row-block shards
(see :mod:`repro.store.format`).  Shards are plain ``.npy`` files so a
reader can either materialise them into memory or map them with
``np.load(mmap_mode="r")`` and let the OS page slices in on demand.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.index import OverlapIndex
from repro.parallel.partition import blocked_partitions
from repro.store.format import (
    EDGE_SIZES_NAME,
    FORMAT_VERSION,
    Manifest,
    PathLike,
    SHARD_DIR,
    ShardInfo,
    StoreFormatError,
    edge_sizes_file_name,
    fsync_path,
    read_manifest,
    shard_file_names,
    write_manifest,
)
from repro.utils.validation import check_positive_int


def write_snapshot(
    index: OverlapIndex,
    store_path: PathLike,
    fingerprint: str,
    num_shards: int = 1,
    generation: int = 0,
    provenance: Optional[Dict[str, object]] = None,
) -> Manifest:
    """Serialise ``index`` as a sharded snapshot under ``store_path``.

    The hyperedge-ID space is split into ``num_shards`` contiguous row
    blocks; pair ``(i, j)`` (``i < j``) goes to the block owning ``i``.
    Slicing the weight-ascending pair store by a row mask preserves the
    ascending order, so every shard keeps the binary-search invariant for
    free.  Shard files are named by ``generation`` so a compaction can lay
    down a fresh snapshot next to the live one before switching the
    manifest atomically.
    """
    num_shards = check_positive_int(num_shards, "num_shards")
    store_path = str(store_path)
    shard_dir = os.path.join(store_path, SHARD_DIR)
    os.makedirs(shard_dir, exist_ok=True)

    edges, weights = index.pairs_at_least(1)
    rows = edges[:, 0] if edges.size else np.empty(0, dtype=np.int64)
    blocks = blocked_partitions(index.num_hyperedges, num_shards)

    shards: List[ShardInfo] = []
    start = 0
    for shard_id, block in enumerate(blocks):
        row_start = int(block[0]) if block.size else start
        row_stop = int(block[-1]) + 1 if block.size else row_start
        start = row_stop
        mask = (rows >= row_start) & (rows < row_stop)
        shard_edges = np.ascontiguousarray(edges[mask])
        shard_weights = np.ascontiguousarray(weights[mask])
        edges_file, weights_file = shard_file_names(generation, shard_id)
        np.save(os.path.join(shard_dir, edges_file), shard_edges)
        np.save(os.path.join(shard_dir, weights_file), shard_weights)
        fsync_path(os.path.join(shard_dir, edges_file))
        fsync_path(os.path.join(shard_dir, weights_file))
        shards.append(
            ShardInfo(
                shard_id=shard_id,
                row_start=row_start,
                row_stop=row_stop,
                num_pairs=int(shard_weights.size),
                min_weight=int(shard_weights[0]) if shard_weights.size else 0,
                max_weight=int(shard_weights[-1]) if shard_weights.size else 0,
                edges_file=edges_file,
                weights_file=weights_file,
            )
        )

    # Generation-named: a newer snapshot being laid down never touches the
    # size array the live manifest references (crash-window safety).
    edge_sizes_file = edge_sizes_file_name(generation)
    np.save(
        os.path.join(store_path, edge_sizes_file),
        np.ascontiguousarray(index.edge_sizes, dtype=np.int64),
    )
    fsync_path(os.path.join(store_path, edge_sizes_file))
    # Data files must be durable BEFORE the manifest rename makes them
    # reachable; otherwise power loss could leave a valid manifest pointing
    # at torn shard arrays.
    fsync_path(shard_dir)
    meta = {"builder": "repro.store", "created_unix": time.time()}
    if provenance:
        meta.update(provenance)
    manifest = Manifest(
        format_version=FORMAT_VERSION,
        fingerprint=str(fingerprint),
        num_hyperedges=index.num_hyperedges,
        num_pairs=index.num_pairs,
        max_weight=index.max_weight,
        algorithm=index.algorithm,
        generation=int(generation),
        shards=shards,
        provenance=meta,
        edge_sizes_file=edge_sizes_file,
    )
    write_manifest(store_path, manifest)
    return manifest


def sweep_orphan_shards(store_path: PathLike, manifest: Manifest) -> int:
    """Delete snapshot files the live manifest does not reference.

    Superseded generations (compaction, in-place rebuild) and half-written
    generations abandoned by a crash both leave orphans; sweeping by
    "not referenced" rather than "previous generation" catches them all —
    shard arrays and generation-named edge-size files alike.  Assumes the
    single-writer protocol: only the process holding the store open for
    writing may sweep.  Returns the number of files removed.
    """
    removed = 0
    shard_dir = os.path.join(str(store_path), SHARD_DIR)
    if os.path.isdir(shard_dir):
        live = {info.edges_file for info in manifest.shards}
        live |= {info.weights_file for info in manifest.shards}
        for name in os.listdir(shard_dir):
            if name not in live:
                try:
                    os.remove(os.path.join(shard_dir, name))
                    removed += 1
                except FileNotFoundError:
                    pass
    for name in os.listdir(str(store_path)):
        is_sizes = name == EDGE_SIZES_NAME or name.endswith("-" + EDGE_SIZES_NAME)
        if is_sizes and name != manifest.edge_sizes_file:
            try:
                os.remove(os.path.join(str(store_path), name))
                removed += 1
            except FileNotFoundError:
                pass
    return removed


def load_edge_sizes(store_path: PathLike, manifest: Manifest) -> np.ndarray:
    """The per-hyperedge size array of the snapshot (in memory, writable)."""
    path = os.path.join(str(store_path), manifest.edge_sizes_file)
    if not os.path.isfile(path):
        raise StoreFormatError(
            f"snapshot is missing {manifest.edge_sizes_file} at {path}"
        )
    return np.array(np.load(path), dtype=np.int64)


def load_shard(
    store_path: PathLike, info: ShardInfo, mmap: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """``(edges, weights)`` of one shard, memory-mapped by default."""
    shard_dir = os.path.join(str(store_path), SHARD_DIR)
    mode = "r" if mmap else None
    try:
        edges = np.load(os.path.join(shard_dir, info.edges_file), mmap_mode=mode)
        weights = np.load(os.path.join(shard_dir, info.weights_file), mmap_mode=mode)
    except FileNotFoundError as exc:
        raise StoreFormatError(f"snapshot shard file missing: {exc}") from exc
    if edges.ndim != 2 or edges.shape[1] != 2 or weights.shape[0] != edges.shape[0]:
        raise StoreFormatError(
            f"shard {info.shard_id} arrays are malformed: "
            f"edges {edges.shape}, weights {weights.shape}"
        )
    if weights.shape[0] != info.num_pairs:
        raise StoreFormatError(
            f"shard {info.shard_id} holds {weights.shape[0]} pairs but the "
            f"manifest records {info.num_pairs}"
        )
    return edges, weights


def materialize_index(
    store_path: PathLike, manifest: Optional[Manifest] = None
) -> OverlapIndex:
    """Rebuild the in-memory :class:`OverlapIndex` from a snapshot.

    Loads every shard eagerly (no mmap) and re-canonicalises through the
    ``OverlapIndex`` constructor; use :class:`repro.store.ShardedIndex` when
    the full pair store should stay on disk.
    """
    manifest = manifest if manifest is not None else read_manifest(store_path)
    parts_e: List[np.ndarray] = []
    parts_w: List[np.ndarray] = []
    for info in manifest.shards:
        edges, weights = load_shard(store_path, info, mmap=False)
        parts_e.append(edges)
        parts_w.append(weights)
    if parts_e:
        all_edges = np.concatenate(parts_e, axis=0)
        all_weights = np.concatenate(parts_w)
    else:
        all_edges = np.empty((0, 2), dtype=np.int64)
        all_weights = np.empty(0, dtype=np.int64)
    if all_weights.size != manifest.num_pairs:
        raise StoreFormatError(
            f"snapshot holds {all_weights.size} pairs but the manifest "
            f"records {manifest.num_pairs}"
        )
    edge_sizes = load_edge_sizes(store_path, manifest)
    if edge_sizes.size != manifest.num_hyperedges:
        raise StoreFormatError(
            f"edge_sizes has {edge_sizes.size} entries but the manifest "
            f"records {manifest.num_hyperedges} hyperedges"
        )
    return OverlapIndex(
        edges=all_edges,
        weights=all_weights,
        edge_sizes=edge_sizes,
        algorithm=manifest.algorithm,
    )
