"""Out-of-core threshold views over a sharded snapshot.

:class:`ShardedIndex` is a drop-in for :class:`~repro.engine.index.OverlapIndex`
that never materialises the full pair store: shards are opened lazily as
``np.load(mmap_mode="r")`` views (at most ``max_resident_shards`` handles are
kept, LRU), and every query streams per-shard weight slices.  Because each
shard keeps the ascending-weight invariant, ``weight >= s`` is one binary
search per shard, and shards whose recorded ``max_weight`` is below ``s``
are skipped without touching disk — so a hypergraph whose full overlap
structure exceeds RAM still serves ``extract(s)`` / ``sweep()``.

Incremental updates are held as an in-memory overlay (appended pairs,
tombstoned hyperedges, refreshed sizes) merged into every query — the
replayed image of a write-ahead log on top of an immutable base snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.chaos.failpoints import fire as _failpoint
from repro.core.filtration import filter_weighted_arrays
from repro.core.slinegraph import SLineGraph
from repro.obs import get_registry, get_tracer
from repro.parallel.workload import WorkloadStats
from repro.store.format import Manifest, PathLike, read_manifest
from repro.store.snapshot import load_edge_sizes, load_shard
from repro.utils.validation import ValidationError, check_s_value


class ShardedIndex:
    """Lazily loaded, shard-streaming view of a persistent overlap index.

    Parameters
    ----------
    store_path:
        Store directory holding ``manifest.json`` and the shard files.
    manifest:
        Pre-read manifest (read from ``store_path`` when omitted).
    max_resident_shards:
        Upper bound on simultaneously open shard mmaps; the least recently
        used handle is dropped when exceeded.  ``None`` keeps all open.
    mmap:
        Open shards memory-mapped (default) or copied into memory.
    """

    def __init__(
        self,
        store_path: PathLike,
        manifest: Optional[Manifest] = None,
        max_resident_shards: Optional[int] = None,
        mmap: bool = True,
    ) -> None:
        self._path = str(store_path)
        self._manifest = manifest if manifest is not None else read_manifest(store_path)
        if max_resident_shards is not None and max_resident_shards < 1:
            raise ValidationError("max_resident_shards must be >= 1 or None")
        self._max_resident = max_resident_shards
        self._mmap = bool(mmap)
        # Residency is the one structure concurrent *reader* threads race
        # on (the service layer fans queries over a thread pool); the lock
        # covers only the LRU bookkeeping, never the shard file I/O.
        # Overlay mutations (add/remove) remain single-writer territory,
        # serialised by the service's readers-writer lock.
        self._residency_lock = threading.Lock()
        self._resident: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self._edge_sizes = load_edge_sizes(self._path, self._manifest)
        #: Number of shard file loads performed (observability / tests).
        self.shard_loads = 0
        self._tracer = get_tracer()
        # Shard-residency telemetry: same family as the engine result
        # cache, distinguished by the ``cache`` label.
        registry = get_registry()
        self._m_hits = registry.counter(
            "repro_cache_hits_total", "Cache lookups served from cache.", ("cache",)
        ).labels(cache="shards")
        self._m_misses = registry.counter(
            "repro_cache_misses_total", "Cache lookups that missed.", ("cache",)
        ).labels(cache="shards")
        self._m_evictions = registry.counter(
            "repro_cache_evictions_total",
            "Entries evicted by the LRU policy.",
            ("cache",),
        ).labels(cache="shards")
        # WAL overlay: appended pairs, tombstoned IDs, removed-base count.
        self._extra_edges = np.empty((0, 2), dtype=np.int64)
        self._extra_weights = np.empty(0, dtype=np.int64)
        self._removed = np.empty(0, dtype=np.int64)  # sorted base-edge IDs
        self._removed_base_pairs = 0
        self._max_weight_cache: Optional[int] = None
        self.workload = WorkloadStats()
        self.algorithm = self._manifest.algorithm

    # ------------------------------------------------------------------ #
    # Shape (OverlapIndex drop-in surface)
    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> Manifest:
        return self._manifest

    @property
    def num_shards(self) -> int:
        return len(self._manifest.shards)

    @property
    def num_resident_shards(self) -> int:
        """Currently open shard handles (<= ``max_resident_shards``)."""
        return len(self._resident)

    @property
    def num_pairs(self) -> int:
        return (
            self._manifest.num_pairs
            - self._removed_base_pairs
            + int(self._extra_weights.size)
        )

    @property
    def num_hyperedges(self) -> int:
        return int(self._edge_sizes.size)

    @property
    def edge_sizes(self) -> np.ndarray:
        return self._edge_sizes

    @property
    def max_weight(self) -> int:
        if self._max_weight_cache is None:
            self._max_weight_cache = self._compute_max_weight()
        return self._max_weight_cache

    def _compute_max_weight(self) -> int:
        best = int(self._extra_weights.max()) if self._extra_weights.size else 0
        if not self._manifest.num_pairs:
            return best
        if self._removed.size == 0:
            return max(best, self._manifest.max_weight)
        # Tombstones may have hidden the heaviest pairs.  Visit shards in
        # descending recorded max_weight and stop as soon as no remaining
        # shard can beat the best surviving weight found — usually after
        # one shard, never the full-store scan an out-of-core index must
        # avoid.
        removed = self._removed
        by_weight = sorted(
            (i for i in self._manifest.shards if i.num_pairs),
            key=lambda i: i.max_weight,
            reverse=True,
        )
        for info in by_weight:
            if info.max_weight <= best:
                break
            edges, weights = self._shard_arrays(info.shard_id)
            keep = ~(np.isin(edges[:, 0], removed) | np.isin(edges[:, 1], removed))
            if np.any(keep):
                best = max(best, int(weights[keep].max()))
        return best

    def nbytes(self) -> int:
        """Approximate on-disk footprint of the base pair store in bytes."""
        # (i, j) int64 pair + int64 weight = 24 bytes per pair.
        return int(self._manifest.num_pairs) * 24 + int(self._edge_sizes.nbytes)

    # ------------------------------------------------------------------ #
    # Shard residency
    # ------------------------------------------------------------------ #
    def _shard_arrays(self, shard_id: int) -> Tuple[np.ndarray, np.ndarray]:
        with self._residency_lock:
            cached = self._resident.get(shard_id)
            if cached is not None:
                self._resident.move_to_end(shard_id)
                self._m_hits.inc()
                return cached
        info = self._manifest.shards[shard_id]
        # Two threads may both miss and load the same shard; the mmaps are
        # identical views, the duplicate handle is dropped on insert.
        with self._tracer.start_span("store.shard_load", {"shard_id": shard_id}):
            _failpoint("store.shard_load")
            arrays = load_shard(self._path, info, mmap=self._mmap)
        self._m_misses.inc()
        with self._residency_lock:
            self._resident[shard_id] = arrays
            self.shard_loads += 1
            if (
                self._max_resident is not None
                and len(self._resident) > self._max_resident
            ):
                self._resident.popitem(last=False)
                self._m_evictions.inc()
        return arrays

    def _iter_filtered(self, s: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Stream ``(edges, weights)`` slices with ``weight >= s``, overlay applied."""
        removed = self._removed
        for info in self._manifest.shards:
            if info.num_pairs == 0 or info.max_weight < s:
                continue  # pruned via manifest metadata: no disk touch
            edges, weights = self._shard_arrays(info.shard_id)
            lo = int(np.searchsorted(weights, s, side="left"))
            if lo >= weights.shape[0]:
                continue
            e, w = edges[lo:], weights[lo:]
            if removed.size:
                keep = ~(
                    np.isin(e[:, 0], removed) | np.isin(e[:, 1], removed)
                )
                if not np.all(keep):
                    e, w = e[keep], w[keep]
            if w.size:
                yield e, w
        if self._extra_weights.size:
            mask = self._extra_weights >= s
            if np.any(mask):
                yield self._extra_edges[mask], self._extra_weights[mask]

    # ------------------------------------------------------------------ #
    # Threshold views
    # ------------------------------------------------------------------ #
    def pairs_at_least(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        """All surviving pairs with overlap ``>= s`` (materialised slices).

        Only the filtered output is concatenated in memory; the base pair
        store itself stays on disk.
        """
        s = check_s_value(s)
        parts = list(self._iter_filtered(s))
        if not parts:
            return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
        edges = np.concatenate([np.asarray(e) for e, _ in parts], axis=0)
        weights = np.concatenate([np.asarray(w) for _, w in parts])
        return edges, weights

    def edge_count(self, s: int) -> int:
        """``|edges of L_s|`` without materialising the graph.

        With no tombstones this is one binary search per shard on the
        (mmap) weight arrays; shards with ``max_weight < s`` cost nothing.
        """
        s = check_s_value(s)
        if self._removed.size == 0:
            total = 0
            for info in self._manifest.shards:
                if info.num_pairs == 0 or info.max_weight < s:
                    continue
                _, weights = self._shard_arrays(info.shard_id)
                total += weights.shape[0] - int(
                    np.searchsorted(weights, s, side="left")
                )
            if self._extra_weights.size:
                total += int(np.count_nonzero(self._extra_weights >= s))
            return total
        return sum(int(w.size) for _, w in self._iter_filtered(s))

    def active_vertices(self, s: int) -> np.ndarray:
        """The vertex set ``E_s``: hyperedges with ``|e| >= s``."""
        s = check_s_value(s)
        return np.flatnonzero(self._edge_sizes >= s).astype(np.int64)

    def line_graph(self, s: int) -> SLineGraph:
        """``L_s(H)`` streamed from the shard slices (plus the overlay)."""
        s = check_s_value(s)
        edges, weights = self.pairs_at_least(s)
        return filter_weighted_arrays(
            edges,
            weights,
            s,
            num_hyperedges=self.num_hyperedges,
            active_vertices=self.active_vertices(s),
        )

    #: ``extract(s)`` is the service-facing name for a threshold view.
    extract = line_graph

    def sweep(self, s_values: Iterable[int]) -> Dict[int, SLineGraph]:
        """``s -> L_s`` for a batch of thresholds from *one* shard pass.

        Streams the pairs surviving the smallest requested threshold once,
        canonicalises them once (one pair-order sort instead of one per s —
        the dominant cost of serving a sweep), then derives every ``L_s``
        as a weight mask over the shared arrays.  Each result is equal to
        the corresponding :meth:`line_graph` output.
        """
        s_list = sorted({check_s_value(v) for v in s_values})
        if not s_list:
            raise ValidationError("sweep requires at least one s value")
        edges, weights = self.pairs_at_least(s_list[0])
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges, weights = edges[order], weights[order]
        out: Dict[int, SLineGraph] = {}
        for s in s_list:
            mask = weights >= s
            out[s] = _canonical_line_graph(
                s,
                edges[mask],
                weights[mask],
                self.num_hyperedges,
                self.active_vertices(s),
            )
        return out

    def s_profile(self) -> Dict[int, int]:
        """``s -> |edges of L_s|`` for every s in ``1..max_weight``."""
        return {s: self.edge_count(s) for s in range(1, self.max_weight + 1)}

    # ------------------------------------------------------------------ #
    # Incremental maintenance (WAL overlay)
    # ------------------------------------------------------------------ #
    def add_hyperedge(
        self, new_id: int, size: int, pair_ids: np.ndarray, pair_weights: np.ndarray
    ) -> int:
        """Merge a new hyperedge's overlap row into the in-memory overlay."""
        if new_id != self.num_hyperedges:
            raise ValidationError(
                f"new hyperedge ID must be {self.num_hyperedges}, got {new_id}"
            )
        pair_ids = np.asarray(pair_ids, dtype=np.int64)
        pair_weights = np.asarray(pair_weights, dtype=np.int64)
        if pair_ids.size:
            if int(pair_ids.max()) >= self.num_hyperedges or int(pair_ids.min()) < 0:
                raise ValidationError("pair IDs must reference existing hyperedges")
            if self._removed.size and np.any(np.isin(pair_ids, self._removed)):
                raise ValidationError("pair IDs must reference live hyperedges")
            new_pairs = np.column_stack(
                [pair_ids, np.full(pair_ids.size, new_id, dtype=np.int64)]
            )
            self._extra_edges = np.concatenate([self._extra_edges, new_pairs], axis=0)
            self._extra_weights = np.concatenate([self._extra_weights, pair_weights])
        self._edge_sizes = np.append(self._edge_sizes, np.int64(max(int(size), 0)))
        self._max_weight_cache = None
        return int(pair_ids.size)

    def remove_hyperedge(self, edge_id: int) -> int:
        """Tombstone ``edge_id``: drop its overlay pairs, mask its base pairs."""
        if edge_id < 0 or edge_id >= self.num_hyperedges:
            raise ValidationError(
                f"hyperedge ID {edge_id} out of range [0, {self.num_hyperedges})"
            )
        removed = 0
        if self._extra_weights.size:
            keep = (self._extra_edges[:, 0] != edge_id) & (
                self._extra_edges[:, 1] != edge_id
            )
            removed += int(keep.size - int(keep.sum()))
            if removed:
                self._extra_edges = self._extra_edges[keep]
                self._extra_weights = self._extra_weights[keep]
        if edge_id < self._manifest.num_hyperedges and not np.any(
            self._removed == edge_id
        ):
            base_hits = self._count_base_pairs(edge_id)
            removed += base_hits
            self._removed_base_pairs += base_hits
            self._removed = np.sort(np.append(self._removed, np.int64(edge_id)))
        self._edge_sizes[edge_id] = 0
        self._max_weight_cache = None
        return removed

    def _count_base_pairs(self, edge_id: int) -> int:
        """Live base pairs incident to ``edge_id`` (scans candidate shards)."""
        total = 0
        removed = self._removed
        for info in self._manifest.shards:
            if info.num_pairs == 0:
                continue
            edges, _ = self._shard_arrays(info.shard_id)
            hit = (edges[:, 0] == edge_id) | (edges[:, 1] == edge_id)
            if removed.size and np.any(hit):
                # Pairs already masked by earlier tombstones were counted then.
                hit &= ~(
                    np.isin(edges[:, 0], removed) | np.isin(edges[:, 1], removed)
                )
            total += int(np.count_nonzero(hit))
        return total

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop every resident shard handle (mmaps close with them).

        The index stays usable — a later query simply re-opens the shards
        it touches — so ``close()`` is a resource release, not a terminal
        state.  Callers that replace an index (the read replica's hot
        swap) use it to return file handles eagerly instead of waiting for
        garbage collection.
        """
        with self._residency_lock:
            self._resident.clear()

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedIndex(path={self._path!r}, num_shards={self.num_shards}, "
            f"num_hyperedges={self.num_hyperedges}, num_pairs={self.num_pairs})"
        )


def _canonical_line_graph(
    s: int,
    edges: np.ndarray,
    weights: np.ndarray,
    num_hyperedges: int,
    active_vertices: np.ndarray,
) -> SLineGraph:
    """Build an :class:`SLineGraph` from arrays already in canonical form.

    The store's pair invariants — every row ``(i, j)`` with ``i < j``,
    pairs unique — plus the caller's (lo, hi) sort and ``>= s`` mask are
    exactly what ``SLineGraph.__post_init__`` would re-establish, so the
    sweep fast path skips that second normalisation pass.
    """
    graph = SLineGraph.__new__(SLineGraph)
    graph.s = int(s)
    graph.edges = edges
    graph.weights = weights
    graph.num_hyperedges = int(num_hyperedges)
    graph.active_vertices = active_vertices
    return graph
