"""Synthetic hypergraph generators and dataset surrogates.

The paper evaluates on large real-world hypergraphs (LiveJournal, Friendster,
com-Orkut, Web, activeDNS, Amazon-reviews, Stackoverflow-answers,
email-EuAll) and application datasets (disGeNet, condMat, compBoard, lesMis,
virology genomics, IMDB).  None of these can be downloaded in an offline
reproduction, so this subpackage provides:

* generic generators (:mod:`random`, :mod:`bipartite`, :mod:`community`)
  that produce non-uniform hypergraphs with controllable skew and planted
  overlap structure; and
* named surrogates (:mod:`datasets`) whose shapes — vertex/edge ratios,
  degree skew, planted high-overlap cores — are matched to the paper's
  Table IV and application sections at laptop scale.
"""

from repro.generators.random import (
    random_hypergraph,
    chung_lu_hypergraph,
    power_law_weights,
    zipf_edge_sizes,
)
from repro.generators.bipartite import configuration_bipartite_hypergraph
from repro.generators.preferential import preferential_attachment_hypergraph
from repro.generators.community import (
    planted_community_hypergraph,
    planted_overlap_core,
    add_overlap_core,
)
from repro.generators.datasets import (
    DATASET_SPECS,
    available_datasets,
    load_dataset,
    dataset_stats_table,
    disgenet_surrogate,
    condmat_surrogate,
    compboard_surrogate,
    lesmis_surrogate,
    virology_surrogate,
    imdb_surrogate,
)

__all__ = [
    "random_hypergraph",
    "chung_lu_hypergraph",
    "power_law_weights",
    "zipf_edge_sizes",
    "configuration_bipartite_hypergraph",
    "preferential_attachment_hypergraph",
    "planted_community_hypergraph",
    "planted_overlap_core",
    "add_overlap_core",
    "DATASET_SPECS",
    "available_datasets",
    "load_dataset",
    "dataset_stats_table",
    "disgenet_surrogate",
    "condmat_surrogate",
    "compboard_surrogate",
    "lesmis_surrogate",
    "virology_surrogate",
    "imdb_surrogate",
]
