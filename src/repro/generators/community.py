"""Planted-community and planted-overlap hypergraph generators.

The paper's social-network hypergraphs are built by running community
detection on graphs and treating each community as a hyperedge; such data
has groups of hyperedges with large pairwise overlaps.  To reproduce the
*shape* of the paper's results (non-empty s-line graphs at s = 8, 100 or
even 1024), the surrogates plant controllable overlap structure:

* :func:`planted_community_hypergraph` — vertices are split into
  communities; each hyperedge samples most members from one community and a
  few from outside, so hyperedges of the same community overlap heavily;
* :func:`planted_overlap_core` / :func:`add_overlap_core` — a set of
  hyperedges all containing the same ``core_size`` vertices, guaranteeing
  pairwise overlaps of at least ``core_size`` (the "core of Friendster"
  effect at s = 1024 discussed in Section VI-G).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError, check_positive_int


def planted_community_hypergraph(
    num_vertices: int,
    num_edges: int,
    num_communities: int,
    mean_edge_size: float = 6.0,
    max_edge_size: int = 50,
    within_probability: float = 0.9,
    size_exponent: float = 2.0,
    seed: SeedLike = None,
) -> Hypergraph:
    """Hypergraph whose hyperedges concentrate inside vertex communities.

    Parameters
    ----------
    num_vertices, num_edges, num_communities:
        Shape parameters; vertices are assigned to communities contiguously
        with sizes as equal as possible.
    mean_edge_size, max_edge_size, size_exponent:
        Skewed hyperedge-size distribution parameters (power law).
    within_probability:
        Probability that each membership of a hyperedge is drawn from the
        hyperedge's home community (the rest is uniform over all vertices).
    """
    from repro.generators.random import zipf_edge_sizes

    num_vertices = check_positive_int(num_vertices, "num_vertices")
    num_edges = check_positive_int(num_edges, "num_edges")
    num_communities = check_positive_int(num_communities, "num_communities")
    if not 0.0 <= within_probability <= 1.0:
        raise ValidationError("within_probability must be in [0, 1]")
    rng = make_rng(seed)
    community_of = np.sort(rng.integers(0, num_communities, size=num_vertices))
    community_members: List[np.ndarray] = [
        np.flatnonzero(community_of == c) for c in range(num_communities)
    ]
    # Guard against empty communities (possible for tiny inputs).
    community_members = [m if m.size else np.arange(num_vertices) for m in community_members]
    sizes = zipf_edge_sizes(
        num_edges,
        mean_size=mean_edge_size,
        max_size=min(max_edge_size, num_vertices),
        exponent=size_exponent,
        rng=rng,
    )
    lists: List[list[int]] = []
    for k in sizes:
        home = int(rng.integers(0, num_communities))
        members = set()
        home_pool = community_members[home]
        k = int(min(k, num_vertices))
        while len(members) < k:
            if rng.random() < within_probability and home_pool.size:
                members.add(int(home_pool[rng.integers(0, home_pool.size)]))
            else:
                members.add(int(rng.integers(0, num_vertices)))
        lists.append(sorted(members))
    return hypergraph_from_edge_lists(lists, num_vertices=num_vertices)


def planted_overlap_core(
    num_core_edges: int,
    core_size: int,
    num_vertices: int,
    extra_members: int = 3,
    core_vertices: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> List[list[int]]:
    """Edge lists for a group of hyperedges sharing the same ``core_size`` vertices.

    Every pair of the returned hyperedges overlaps in at least ``core_size``
    vertices, so they form a clique in ``L_s`` for every ``s <= core_size``.
    """
    num_core_edges = check_positive_int(num_core_edges, "num_core_edges")
    core_size = check_positive_int(core_size, "core_size")
    num_vertices = check_positive_int(num_vertices, "num_vertices")
    if core_size > num_vertices:
        raise ValidationError("core_size cannot exceed num_vertices")
    rng = make_rng(seed)
    if core_vertices is None:
        core = rng.choice(num_vertices, size=core_size, replace=False)
    else:
        core = np.asarray(list(core_vertices), dtype=np.int64)
        if core.size != core_size:
            raise ValidationError("core_vertices must have exactly core_size entries")
    lists: List[list[int]] = []
    for _ in range(num_core_edges):
        members = set(int(v) for v in core)
        while len(members) < core_size + extra_members and len(members) < num_vertices:
            members.add(int(rng.integers(0, num_vertices)))
        lists.append(sorted(members))
    return lists


def add_overlap_core(
    h: Hypergraph,
    num_core_edges: int,
    core_size: int,
    extra_members: int = 3,
    seed: SeedLike = None,
) -> Hypergraph:
    """Return a new hypergraph with a planted overlap core appended to ``h``.

    The appended hyperedges receive the next available IDs; vertex IDs are
    drawn from the existing vertex set.
    """
    extra_lists = planted_overlap_core(
        num_core_edges=num_core_edges,
        core_size=core_size,
        num_vertices=h.num_vertices,
        extra_members=extra_members,
        seed=seed,
    )
    lists = [h.edge_members(i).tolist() for i in range(h.num_edges)] + extra_lists
    return hypergraph_from_edge_lists(lists, num_vertices=h.num_vertices)
