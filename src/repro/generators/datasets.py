"""Named dataset surrogates matching the shapes of the paper's inputs.

Every dataset used in the paper's evaluation (Table IV) and applications
(Section V) has a laptop-scale synthetic surrogate here.  The surrogates are
**not** the original data — they are generated hypergraphs whose structural
properties relevant to the paper's conclusions are matched:

* vertex/hyperedge count ratios and skewed degree distributions (Table IV);
* planted high-overlap hyperedge cores so the s = 8 (and higher) line graphs
  are non-trivial, as in the real data;
* application-specific planted structure (top-ranked diseases, prolific
  author collectives, hub genes, actor-collaboration stars) so the
  qualitative findings of Sections III-I and V are reproducible.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.generators.community import add_overlap_core, planted_community_hypergraph
from repro.generators.random import power_law_weights, zipf_edge_sizes, chung_lu_hypergraph
from repro.hypergraph.builders import hypergraph_from_edge_dict
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.properties import compute_stats
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of a Table IV surrogate (laptop scale)."""

    name: str
    num_vertices: int
    num_edges: int
    mean_edge_size: float
    max_edge_size: int
    num_communities: int
    within_probability: float = 0.9
    #: (number of core hyperedges, shared-core size) pairs appended to the
    #: community hypergraph to guarantee high-s overlap structure.
    cores: tuple = ((12, 12),)
    #: Category label from the paper's Table IV (Social / Web / Cyber / Email).
    category: str = "Social"
    #: The |V|, |E| the paper reports for the real dataset (for documentation).
    paper_num_vertices: int = 0
    paper_num_edges: int = 0


#: Laptop-scale surrogates of the eight Table IV datasets.  The paper-scale
#: sizes are kept in the spec for documentation; the generated hypergraphs
#: are roughly three orders of magnitude smaller with matching |V|/|E|
#: ratios and skew.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "com-orkut": DatasetSpec(
        name="com-orkut", num_vertices=2300, num_edges=4600,
        mean_edge_size=7.0, max_edge_size=90, num_communities=60,
        cores=((14, 12),), category="Social",
        paper_num_vertices=2_300_000, paper_num_edges=15_300_000,
    ),
    "friendster": DatasetSpec(
        name="friendster", num_vertices=4000, num_edges=800,
        mean_edge_size=14.0, max_edge_size=90, num_communities=40,
        cores=((20, 64), (10, 16)), category="Social",
        paper_num_vertices=7_900_000, paper_num_edges=1_600_000,
    ),
    "livejournal": DatasetSpec(
        name="livejournal", num_vertices=3200, num_edges=4000,
        mean_edge_size=9.0, max_edge_size=300, num_communities=50,
        cores=((16, 12),), category="Social",
        paper_num_vertices=3_200_000, paper_num_edges=7_500_000,
    ),
    "web": DatasetSpec(
        name="web", num_vertices=5500, num_edges=2600,
        mean_edge_size=11.0, max_edge_size=400, num_communities=20,
        within_probability=0.95, cores=((24, 16),), category="Web",
        paper_num_vertices=27_700_000, paper_num_edges=12_800_000,
    ),
    "amazon-reviews": DatasetSpec(
        name="amazon-reviews", num_vertices=2300, num_edges=2100,
        mean_edge_size=8.0, max_edge_size=60, num_communities=80,
        cores=((10, 12),), category="Web",
        paper_num_vertices=2_300_000, paper_num_edges=4_300_000,
    ),
    "stackoverflow-answers": DatasetSpec(
        name="stackoverflow-answers", num_vertices=1100, num_edges=3000,
        mean_edge_size=5.0, max_edge_size=40, num_communities=90,
        cores=((10, 10),), category="Web",
        paper_num_vertices=1_100_000, paper_num_edges=15_200_000,
    ),
    "activedns": DatasetSpec(
        name="activedns", num_vertices=4500, num_edges=4300,
        mean_edge_size=3.0, max_edge_size=30, num_communities=120,
        within_probability=0.95, cores=((12, 10),), category="Cyber",
        paper_num_vertices=4_500_000, paper_num_edges=43_900_000,
    ),
    "email-euall": DatasetSpec(
        name="email-euall", num_vertices=1300, num_edges=1300,
        mean_edge_size=3.0, max_edge_size=40, num_communities=40,
        cores=((10, 10),), category="Email",
        paper_num_vertices=265_200, paper_num_edges=265_200,
    ),
}


def available_datasets() -> List[str]:
    """Names of the Table IV surrogate datasets."""
    return sorted(DATASET_SPECS)


def load_dataset(name: str, scale: float = 1.0, seed: SeedLike = 0) -> Hypergraph:
    """Generate the surrogate for one of the Table IV datasets.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case insensitive).
    scale:
        Multiplier applied to the surrogate's vertex and hyperedge counts
        (e.g. ``0.25`` for quick tests, ``2.0`` for heavier benchmark runs);
        planted cores are never scaled below viability.
    seed:
        RNG seed for reproducibility.
    """
    key = name.strip().lower()
    if key not in DATASET_SPECS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    if scale <= 0:
        raise ValidationError("scale must be positive")
    spec = DATASET_SPECS[key]
    rng = make_rng(seed)
    num_vertices = max(int(spec.num_vertices * scale), 50)
    num_edges = max(int(spec.num_edges * scale), 50)
    h = planted_community_hypergraph(
        num_vertices=num_vertices,
        num_edges=num_edges,
        num_communities=max(int(spec.num_communities * scale), 4),
        mean_edge_size=spec.mean_edge_size,
        max_edge_size=min(spec.max_edge_size, num_vertices),
        within_probability=spec.within_probability,
        seed=rng,
    )
    for num_core_edges, core_size in spec.cores:
        h = add_overlap_core(
            h,
            num_core_edges=max(int(num_core_edges * min(scale, 1.0)), 4),
            core_size=min(core_size, num_vertices),
            extra_members=3,
            seed=rng,
        )
    return h


def dataset_stats_table(
    names: Optional[Sequence[str]] = None, scale: float = 1.0, seed: SeedLike = 0
) -> str:
    """Format the Table IV characteristics of the surrogate datasets."""
    rows = []
    for name in names or available_datasets():
        stats = compute_stats(load_dataset(name, scale=scale, seed=seed))
        rows.append(stats.as_table_row(name))
    return "\n".join(rows)


# --------------------------------------------------------------------------- #
# Application surrogates (Section V and Section III-I of the paper)
# --------------------------------------------------------------------------- #

#: Top-5 diseases of the paper's Table II, in the paper's rank order.
TOP_DISEASES = [
    "Malignant neoplasm of breast",
    "Breast carcinoma",
    "Malignant neoplasm of prostate",
    "Liver carcinoma",
    "Colorectal cancer",
]

#: The six genes the paper identifies as most important in the virology data.
IMPORTANT_GENES = ["IFIT1", "USP18", "ISG15", "IL6", "ATF3", "RSAD2"]

#: Actor collaboration groups the paper's IMDB case study uncovers at s=100.
IMDB_GROUPS = [
    ["Adoor Bhasi", "Bahadur", "Paravoor Bharathan", "Jayabharati", "Prem Nazir"],
    ["Matsunosuke Onoe", "Suminojo"],
    ["Kijaku Otani", "Kitsuraku Arashi"],
    ["Panchito", "Dolphy"],
]


def disgenet_surrogate(
    num_diseases: int = 220,
    num_genes: int = 1400,
    num_core_genes: int = 160,
    core_rank_size: int = 8,
    seed: SeedLike = 0,
) -> Hypergraph:
    """Disease–gene surrogate for the paper's Table II / Figure 4 experiments.

    Hyperedges are *genes* (each a set of associated diseases); vertices are
    *diseases*, labelled with readable names; the first five vertex labels
    are the paper's top-5 diseases.  A planted core of ``num_core_genes``
    genes is associated with the ``core_rank_size`` highest-weight diseases,
    so that (a) those diseases dominate PageRank in the clique expansion and
    (b) they still share >= 100 genes pairwise, keeping them top-ranked in
    the s = 10 and s = 100 s-clique graphs.
    """
    rng = make_rng(seed)
    disease_names = list(TOP_DISEASES) + [
        f"Disease-{i:03d}" for i in range(len(TOP_DISEASES), num_diseases)
    ]
    # Disease attachment weights: strictly decreasing for the top diseases so
    # the surrogate's ranking is deterministic, heavy-tailed for the rest.
    weights = power_law_weights(num_diseases, exponent=2.2, min_weight=1.0, rng=rng)
    weights = np.sort(weights)[::-1]
    boost = np.linspace(2.0, 1.2, num=len(TOP_DISEASES))
    weights[: len(TOP_DISEASES)] *= boost
    probabilities = weights / weights.sum()

    edge_dict: Dict[str, List[str]] = {}
    core_diseases = list(range(min(core_rank_size, num_diseases)))
    for g in range(num_core_genes):
        # Core genes: all (or nearly all) of the core diseases plus noise.
        members = set(core_diseases)
        for _ in range(int(rng.integers(0, 4))):
            members.add(int(rng.integers(0, num_diseases)))
        edge_dict[f"CoreGene-{g:03d}"] = [disease_names[d] for d in sorted(members)]
    sizes = zipf_edge_sizes(
        num_genes - num_core_genes, mean_size=4.0, max_size=25, exponent=2.0, rng=rng
    )
    for g, k in enumerate(sizes):
        k = int(min(k, num_diseases))
        members = rng.choice(num_diseases, size=k, replace=False, p=probabilities)
        edge_dict[f"Gene-{g:04d}"] = [disease_names[d] for d in sorted(members)]
    return hypergraph_from_edge_dict(edge_dict)


def condmat_surrogate(
    num_authors: int = 900,
    num_papers: int = 1600,
    max_shared_papers: int = 16,
    band_papers: int = 50,
    band_window: int = 13,
    seed: SeedLike = 0,
) -> Hypergraph:
    """Author–paper surrogate of the condMat network (Figure 6 experiment).

    Vertices are authors, hyperedges are papers.  Besides a general
    collaboration background, two structures are planted:

    * a *sliding-window collaboration band*: ``band_papers`` papers whose
      author lists are consecutive windows of ``band_window`` authors, so
      papers ``d`` apart share ``band_window − d`` authors.  For
      ``s <= band_window − 1`` this band is the largest s-connected
      component; its s-line graph is a band graph whose bandwidth (and
      hence algebraic connectivity) shrinks as ``s`` grows — the dip the
      paper observes for s = 3..12;
    * a *prolific collective* of ``max_shared_papers`` papers written by the
      same 20-author team, so that for ``s >= band_window`` the largest
      component becomes this dense near-clique and the connectivity rises
      sharply (the paper's jump at s = 13).
    """
    rng = make_rng(seed)
    author_names = [f"Author-{i:04d}" for i in range(num_authors)]
    edge_dict: Dict[str, List[str]] = {}
    paper_id = 0

    def add_paper(member_ids: Sequence[int]) -> None:
        nonlocal paper_id
        edge_dict[f"Paper-{paper_id:05d}"] = [
            author_names[a % num_authors] for a in sorted(set(member_ids))
        ]
        paper_id += 1

    # (a) Prolific collective: a 20-author team co-authoring many papers.
    team = list(range(20))
    for _ in range(max_shared_papers):
        extras = rng.choice(
            np.arange(20, num_authors), size=int(rng.integers(0, 3)), replace=False
        )
        add_paper(team + extras.tolist())

    # (b) Sliding-window collaboration band for mid-range s.
    band_start = 20
    for t in range(band_papers):
        add_paper(list(range(band_start + t, band_start + t + band_window)))

    # (c) Background collaboration: small papers with power-law author weights.
    weights = power_law_weights(num_authors, exponent=2.3, min_weight=1.0, rng=rng)
    probabilities = weights / weights.sum()
    remaining = max(num_papers - paper_id, 0)
    sizes = zipf_edge_sizes(
        max(remaining, 1), mean_size=3.0, max_size=12, exponent=2.2, rng=rng
    )
    for k in sizes[:remaining]:
        k = int(min(max(k, 1), num_authors))
        members = rng.choice(num_authors, size=k, replace=False, p=probabilities)
        add_paper(members.tolist())
    return hypergraph_from_edge_dict(edge_dict)


def compboard_surrogate(
    num_companies: int = 300, num_members: int = 450, seed: SeedLike = 0
) -> Hypergraph:
    """Board-member–company surrogate (Figure 4): members are hyperedges."""
    rng = make_rng(seed)
    weights = power_law_weights(num_companies, exponent=2.1, min_weight=1.0, rng=rng)
    sizes = zipf_edge_sizes(num_members, mean_size=3.0, max_size=15, exponent=2.0, rng=rng)
    h = chung_lu_hypergraph(weights, sizes, seed=rng)
    return add_overlap_core(h, num_core_edges=8, core_size=6, seed=rng)


def lesmis_surrogate(
    num_scenes: int = 180, num_characters: int = 80, seed: SeedLike = 0
) -> Hypergraph:
    """Character–scene surrogate of the Les Misérables network (Figure 4)."""
    rng = make_rng(seed)
    weights = power_law_weights(num_scenes, exponent=1.8, min_weight=1.0, rng=rng)
    sizes = zipf_edge_sizes(num_characters, mean_size=8.0, max_size=60, exponent=1.8, rng=rng)
    h = chung_lu_hypergraph(weights, sizes, seed=rng)
    return add_overlap_core(h, num_core_edges=5, core_size=10, seed=rng)


def virology_surrogate(
    num_conditions: int = 201,
    num_genes: int = 600,
    seed: SeedLike = 0,
) -> Hypergraph:
    """Gene–condition surrogate of the virology transcriptomics data (Figure 5).

    Vertices are experimental conditions (201, as in the paper); hyperedges
    are genes.  Six hub genes — the genes the paper identifies as most
    important — are planted with large, strongly overlapping condition sets;
    IFIT1 and USP18 share more than 100 conditions, reproducing the paper's
    headline observation.  The remaining genes are background with small
    condition sets.
    """
    rng = make_rng(seed)
    condition_names = [f"Condition-{i:03d}" for i in range(num_conditions)]
    edge_dict: Dict[str, List[str]] = {}

    def conditions(ids: Sequence[int]) -> List[str]:
        return [condition_names[i] for i in ids if 0 <= i < num_conditions]

    # Hub genes with planted overlaps.  IFIT1 ∩ USP18 = 120 conditions.
    edge_dict["IFIT1"] = conditions(range(0, 150))
    edge_dict["USP18"] = conditions(range(30, 160))
    edge_dict["ISG15"] = conditions(range(0, 110))
    edge_dict["IL6"] = conditions(range(20, 125))
    edge_dict["ATF3"] = conditions(range(60, 170))
    edge_dict["RSAD2"] = conditions(range(45, 150))
    # Two satellite groups bridged only through IFIT1/USP18, so those two
    # genes carry the highest s-betweenness at moderate s.
    for g in range(8):
        start = int(rng.integers(0, 40))
        edge_dict[f"GroupA-{g}"] = conditions(range(start, start + 25))
    for g in range(8):
        start = int(rng.integers(130, 170))
        edge_dict[f"GroupB-{g}"] = conditions(range(start, start + 25))
    # Background genes: few conditions each.
    sizes = zipf_edge_sizes(
        num_genes - len(edge_dict), mean_size=3.0, max_size=12, exponent=2.2, rng=rng
    )
    for g, k in enumerate(sizes):
        k = int(min(k, num_conditions))
        members = rng.choice(num_conditions, size=k, replace=False)
        edge_dict[f"Gene-{g:04d}"] = conditions(sorted(int(m) for m in members))
    return hypergraph_from_edge_dict(edge_dict)


def imdb_surrogate(
    num_movies: int = 4000,
    num_background_actors: int = 600,
    collaboration_threshold: int = 100,
    seed: SeedLike = 0,
) -> Hypergraph:
    """Actor–movie surrogate of the IMDB case study (Section V-C).

    Vertices are movies; hyperedges are actors (the set of movies they
    appear in).  Four collaboration groups are planted so that, at
    ``s = collaboration_threshold``, the s-line graph consists of exactly
    the paper's reported components: a 5-actor star centred on Adoor Bhasi
    (he shares >= 100 movies with each partner, the partners share < 100
    pairwise) and three pairs.
    """
    rng = make_rng(seed)
    movie_names = [f"Movie-{i:05d}" for i in range(num_movies)]
    edge_dict: Dict[str, List[str]] = {}

    def movies(ids: Sequence[int]) -> List[str]:
        return [movie_names[i] for i in ids if 0 <= i < num_movies]

    t = collaboration_threshold
    # Group 1: star centred on Adoor Bhasi.  Adoor appears in movies 0..4t-1;
    # each partner shares a disjoint block of size t+10 with him, so partner
    # pairs overlap in 0 movies (< t) while each shares >= t with Adoor.
    star = IMDB_GROUPS[0]
    adoor, partners = star[0], star[1:]
    edge_dict[adoor] = movies(range(0, 4 * (t + 10)))
    for idx, partner in enumerate(partners):
        start = idx * (t + 10)
        edge_dict[partner] = movies(range(start, start + t + 10))
    offset = 4 * (t + 10)
    # Groups 2-4: pairs sharing >= t movies, in disjoint movie blocks.
    for pair in IMDB_GROUPS[1:]:
        a, b = pair
        edge_dict[a] = movies(range(offset, offset + t + 20))
        edge_dict[b] = movies(range(offset + 10, offset + t + 15))
        offset += t + 40
    # Background actors: few movies each, far below the collaboration threshold.
    sizes = zipf_edge_sizes(
        num_background_actors, mean_size=6.0, max_size=40, exponent=2.0, rng=rng
    )
    for a, k in enumerate(sizes):
        k = int(min(k, num_movies))
        members = rng.choice(num_movies, size=k, replace=False)
        edge_dict[f"Actor-{a:04d}"] = movies(sorted(int(m) for m in members))
    return hypergraph_from_edge_dict(edge_dict)
