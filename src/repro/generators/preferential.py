"""Preferential-attachment hypergraph generator.

A growth model in the spirit of Barabási–Albert, adapted to bipartite
hypergraph data: hyperedges arrive one at a time and choose their member
vertices with probability proportional to ``current degree + smoothing``
(plus a fresh vertex with probability ``newcomer_probability``).  The model
produces heavy-tailed vertex-degree distributions organically — an
alternative to the Chung–Lu surrogates for stress-testing the
relabel-by-degree and workload-balancing machinery on *growing* data.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError, check_positive_int


def preferential_attachment_hypergraph(
    num_edges: int,
    mean_edge_size: float = 4.0,
    max_edge_size: int = 30,
    initial_vertices: int = 5,
    newcomer_probability: float = 0.2,
    smoothing: float = 1.0,
    seed: SeedLike = None,
) -> Hypergraph:
    """Grow a hypergraph by preferential attachment.

    Parameters
    ----------
    num_edges:
        Number of hyperedges to generate.
    mean_edge_size, max_edge_size:
        Hyperedge sizes are drawn from a geometric-like distribution with the
        given mean, truncated to ``[1, max_edge_size]``.
    initial_vertices:
        Seed pool of vertices present before the first hyperedge arrives.
    newcomer_probability:
        Probability that each chosen member is a brand-new vertex rather than
        an existing one chosen by degree.
    smoothing:
        Additive smoothing on the attachment weights so zero-degree vertices
        remain reachable.
    """
    num_edges = check_positive_int(num_edges, "num_edges")
    initial_vertices = check_positive_int(initial_vertices, "initial_vertices")
    if not 0.0 <= newcomer_probability <= 1.0:
        raise ValidationError("newcomer_probability must be in [0, 1]")
    if mean_edge_size < 1.0:
        raise ValidationError("mean_edge_size must be >= 1")
    if smoothing <= 0:
        raise ValidationError("smoothing must be positive")
    rng = make_rng(seed)

    degrees: List[float] = [0.0] * initial_vertices
    edge_lists: List[List[int]] = []
    for _ in range(num_edges):
        size = int(np.clip(rng.geometric(1.0 / mean_edge_size), 1, max_edge_size))
        members: set[int] = set()
        attempts = 0
        while len(members) < size and attempts < 20 * size:
            attempts += 1
            if rng.random() < newcomer_probability or not degrees:
                vertex = len(degrees)
                degrees.append(0.0)
            else:
                weights = np.asarray(degrees) + smoothing
                vertex = int(rng.choice(len(degrees), p=weights / weights.sum()))
            members.add(vertex)
        for v in members:
            degrees[v] += 1.0
        edge_lists.append(sorted(members))
    return hypergraph_from_edge_lists(edge_lists, num_vertices=len(degrees))
