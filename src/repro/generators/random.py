"""Random non-uniform hypergraph generators.

Two families:

* :func:`random_hypergraph` — every hyperedge samples its members uniformly
  at random (an Erdős–Rényi-style bipartite model), useful for property
  tests;
* :func:`chung_lu_hypergraph` — an expected-degree (Chung–Lu) bipartite
  model where both vertex degrees and hyperedge sizes follow prescribed
  weight sequences; with power-law weights this reproduces the skewed
  degree distributions of the paper's datasets ("all the hypergraphs have a
  skewed hyperedge degree distribution", Table IV).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError, check_positive_int


def power_law_weights(
    n: int,
    exponent: float = 2.5,
    min_weight: float = 1.0,
    max_weight: Optional[float] = None,
    rng: SeedLike = None,
) -> np.ndarray:
    """Draw ``n`` weights from a (bounded) Pareto/power-law distribution.

    Parameters
    ----------
    n:
        Number of weights.
    exponent:
        Tail exponent ``α > 1``; smaller means heavier tail (more skew).
    min_weight, max_weight:
        Lower bound and optional upper truncation of the weights.
    """
    n = check_positive_int(n, "n")
    if exponent <= 1.0:
        raise ValidationError("exponent must be > 1")
    rng = make_rng(rng)
    u = rng.random(n)
    weights = min_weight * (1.0 - u) ** (-1.0 / (exponent - 1.0))
    if max_weight is not None:
        weights = np.minimum(weights, max_weight)
    return weights


def zipf_edge_sizes(
    num_edges: int,
    mean_size: float,
    max_size: int,
    exponent: float = 2.0,
    min_size: int = 1,
    rng: SeedLike = None,
) -> np.ndarray:
    """Sample skewed hyperedge sizes with an approximate target mean.

    Sizes are drawn from a truncated power law and then rescaled (by
    resampling the heaviest tail) so that the empirical mean is within ~20%
    of ``mean_size``; exact matching is not needed because the downstream
    experiments only depend on the qualitative skew.
    """
    num_edges = check_positive_int(num_edges, "num_edges")
    rng = make_rng(rng)
    raw = power_law_weights(
        num_edges, exponent=exponent, min_weight=min_size, max_weight=max_size, rng=rng
    )
    sizes = np.clip(np.round(raw).astype(np.int64), min_size, max_size)
    current = sizes.mean()
    if current > 0 and mean_size > 0:
        scale = mean_size / current
        sizes = np.clip(np.round(sizes * scale).astype(np.int64), min_size, max_size)
    return sizes


def random_hypergraph(
    num_vertices: int,
    num_edges: int,
    edge_sizes: Sequence[int] | np.ndarray | int = 3,
    seed: SeedLike = None,
) -> Hypergraph:
    """Uniform random hypergraph: each hyperedge picks distinct vertices uniformly.

    Parameters
    ----------
    num_vertices, num_edges:
        Shape of the hypergraph.
    edge_sizes:
        Either a constant size or a per-edge size sequence; sizes are capped
        at ``num_vertices``.
    seed:
        RNG seed or generator.
    """
    num_vertices = check_positive_int(num_vertices, "num_vertices")
    num_edges = check_positive_int(num_edges, "num_edges")
    rng = make_rng(seed)
    if np.isscalar(edge_sizes):
        sizes = np.full(num_edges, int(edge_sizes), dtype=np.int64)
    else:
        sizes = np.asarray(edge_sizes, dtype=np.int64)
        if sizes.size != num_edges:
            raise ValidationError("edge_sizes must have one entry per hyperedge")
    sizes = np.clip(sizes, 1, num_vertices)
    lists = [
        rng.choice(num_vertices, size=int(k), replace=False).tolist() for k in sizes
    ]
    return hypergraph_from_edge_lists(lists, num_vertices=num_vertices)


def chung_lu_hypergraph(
    vertex_weights: Sequence[float] | np.ndarray,
    edge_sizes: Sequence[int] | np.ndarray,
    seed: SeedLike = None,
) -> Hypergraph:
    """Expected-degree bipartite (Chung–Lu-style) hypergraph.

    Each hyperedge of prescribed size samples its members *without*
    replacement with probability proportional to the vertex weights, so
    heavy vertices appear in many hyperedges — producing the skewed vertex
    degree distributions (large ``Δ_v``) characteristic of the paper's web
    and DNS datasets.
    """
    weights = np.asarray(vertex_weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValidationError("vertex_weights must be a non-empty 1-D sequence")
    if np.any(weights <= 0):
        raise ValidationError("vertex_weights must be positive")
    sizes = np.asarray(edge_sizes, dtype=np.int64)
    if np.any(sizes < 1):
        raise ValidationError("edge sizes must be >= 1")
    rng = make_rng(seed)
    num_vertices = weights.size
    probabilities = weights / weights.sum()
    lists = []
    for k in sizes:
        k = int(min(k, num_vertices))
        members = rng.choice(num_vertices, size=k, replace=False, p=probabilities)
        lists.append(members.tolist())
    return hypergraph_from_edge_lists(lists, num_vertices=num_vertices)
