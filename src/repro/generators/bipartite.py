"""Configuration-model bipartite hypergraph generator.

Given a vertex-degree sequence and a hyperedge-size sequence with equal
sums, the generator matches incidence "stubs" uniformly at random (the
bipartite configuration model), then collapses duplicate memberships.  This
gives precise control over *both* marginals of the incidence matrix, which
is how the Table IV surrogates match the paper's reported average/maximum
degrees on both sides.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hypergraph.builders import hypergraph_from_incidence_pairs
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError


def configuration_bipartite_hypergraph(
    vertex_degrees: Sequence[int] | np.ndarray,
    edge_sizes: Sequence[int] | np.ndarray,
    seed: SeedLike = None,
) -> Hypergraph:
    """Bipartite configuration model with the given degree/size sequences.

    The two sequences need not have exactly equal sums: the shorter stub
    list is padded by re-drawing stubs uniformly (a standard practical
    adjustment), so the realised degrees approximate the request.  Duplicate
    (edge, vertex) incidences created by the matching are collapsed, so
    realised sizes can be slightly below the request for heavy edges.
    """
    v_deg = np.asarray(vertex_degrees, dtype=np.int64)
    e_size = np.asarray(edge_sizes, dtype=np.int64)
    if v_deg.ndim != 1 or e_size.ndim != 1 or v_deg.size == 0 or e_size.size == 0:
        raise ValidationError("degree sequences must be non-empty 1-D arrays")
    if np.any(v_deg < 0) or np.any(e_size < 0):
        raise ValidationError("degrees must be non-negative")
    rng = make_rng(seed)
    vertex_stubs = np.repeat(np.arange(v_deg.size, dtype=np.int64), v_deg)
    edge_stubs = np.repeat(np.arange(e_size.size, dtype=np.int64), e_size)
    # Pad the shorter side by sampling additional stubs uniformly.
    if vertex_stubs.size < edge_stubs.size:
        extra = rng.integers(0, v_deg.size, size=edge_stubs.size - vertex_stubs.size)
        vertex_stubs = np.concatenate([vertex_stubs, extra])
    elif edge_stubs.size < vertex_stubs.size:
        extra = rng.integers(0, e_size.size, size=vertex_stubs.size - edge_stubs.size)
        edge_stubs = np.concatenate([edge_stubs, extra])
    rng.shuffle(vertex_stubs)
    return hypergraph_from_incidence_pairs(
        edge_ids=edge_stubs,
        vertex_ids=vertex_stubs,
        num_edges=e_size.size,
        num_vertices=v_deg.size,
    )
