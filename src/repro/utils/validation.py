"""Input validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class ValidationError(ValueError):
    """Raised when user input fails validation."""


def check_positive_int(value: object, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it.

    Parameters
    ----------
    value:
        The candidate value.  Booleans are rejected (they are ``int``
        subclasses but almost always indicate a bug at call sites).
    name:
        Parameter name used in the error message.
    minimum:
        Inclusive lower bound.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_s_value(s: object) -> int:
    """Validate an ``s`` parameter (overlap threshold); must be an int >= 1."""
    return check_positive_int(s, "s", minimum=1)


def check_s_values(values: Iterable[object]) -> list[int]:
    """Validate a collection of ``s`` values; returns them sorted ascending."""
    out = sorted(check_s_value(s) for s in values)
    if not out:
        raise ValidationError("s values must be a non-empty collection")
    return out


def check_array_int(arr: Sequence[int] | np.ndarray, name: str) -> np.ndarray:
    """Coerce ``arr`` to a 1-D int64 numpy array, raising on non-integral data."""
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {out.shape}")
    if (
        out.size
        and not np.issubdtype(out.dtype, np.integer)
        and not np.all(np.equal(np.mod(out, 1), 0))
    ):
        raise ValidationError(f"{name} must contain integers")
    return out.astype(np.int64, copy=False)
