"""Wall-clock timing helpers.

The paper's framework (Section IV) reports a per-stage cost breakdown
(Table I: preprocessing, s-overlap, squeeze, s-connected-components).  The
:class:`StageTimes` accumulator mirrors that breakdown and is used both by
:class:`repro.core.pipeline.SLinePipeline` and by the benchmark harness.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Examples
    --------
    >>> t = Timer()
    >>> t.start()
    >>> _ = sum(range(1000))
    >>> elapsed = t.stop()
    >>> elapsed >= 0.0
    True
    """

    _start: Optional[float] = None
    elapsed: float = 0.0

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._start is not None


@dataclass
class StageTimes:
    """Accumulates named stage durations (seconds).

    Stages may be recorded multiple times; durations accumulate.  The total
    is the sum of all recorded stages unless an explicit ``total`` stage was
    recorded.
    """

    times: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager that times the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under stage ``name``."""
        self.times[name] = self.times.get(name, 0.0) + float(seconds)

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the accumulated duration of ``name`` (``default`` if absent)."""
        return self.times.get(name, default)

    @property
    def total(self) -> float:
        """Total seconds across all recorded stages."""
        if "total" in self.times:
            return self.times["total"]
        return sum(self.times.values())

    def merge(self, other: "StageTimes") -> "StageTimes":
        """Accumulate every stage of ``other`` into this object and return self."""
        for name, seconds in other.times.items():
            self.add(name, seconds)
        return self

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the stage → seconds mapping."""
        return dict(self.times)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{k}={v:.4f}s" for k, v in self.times.items()]
        return "StageTimes(" + ", ".join(parts) + f", total={self.total:.4f}s)"


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a running :class:`Timer`; stopped on exit.

    Examples
    --------
    >>> with timed() as t:
    ...     _ = [i * i for i in range(100)]
    >>> t.elapsed >= 0.0
    True
    """
    timer = Timer().start()
    try:
        yield timer
    finally:
        if timer.running:
            timer.stop()
