"""Library logging configuration.

The library never configures the root logger; it exposes a namespaced logger
(``repro``) that applications can configure.  :func:`enable_verbose` is a
convenience for examples and benchmarks.
"""

from __future__ import annotations

import logging

LOGGER_NAME = "repro"


def get_logger(child: str | None = None) -> logging.Logger:
    """Return the package logger, or a child logger if ``child`` is given."""
    name = LOGGER_NAME if child is None else f"{LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_verbose(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
