"""Library logging configuration.

The library never configures the root logger; it exposes a namespaced logger
(``repro``) that applications can configure.  :func:`enable_verbose` is a
convenience for examples and benchmarks; with ``json_lines=True`` it emits
one JSON object per line, stamped with the active trace/span ids (when a
request is being traced) so log lines correlate with ``repro trace`` output.
"""

from __future__ import annotations

import json
import logging

LOGGER_NAME = "repro"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts/level/logger/message (+ trace ids).

    When the emitting thread is inside a recorded span (see
    :mod:`repro.obs.trace`), ``trace_id`` and ``span_id`` are included so
    a log line can be joined against its trace; untraced lines omit the
    keys rather than carrying empty strings.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        # Imported lazily so plain-text logging never touches the tracer.
        from repro.obs.trace import get_tracer

        span = get_tracer().current_span()
        if span is not None:
            payload["trace_id"] = span.trace_id
            payload["span_id"] = span.span_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(child: str | None = None) -> logging.Logger:
    """Return the package logger, or a child logger if ``child`` is given."""
    name = LOGGER_NAME if child is None else f"{LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_verbose(
    level: int = logging.INFO, json_lines: bool = False
) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent).

    ``json_lines=True`` formats records as structured JSON lines (see
    :class:`JsonLineFormatter`); calling again with a different format
    re-points the existing handler rather than stacking a second one.
    """
    logger = get_logger()
    logger.setLevel(level)
    formatter: logging.Formatter
    if json_lines:
        formatter = JsonLineFormatter()
    else:
        formatter = logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler):
            handler.setFormatter(formatter)
            return logger
    handler = logging.StreamHandler()
    handler.setFormatter(formatter)
    logger.addHandler(handler)
    return logger
