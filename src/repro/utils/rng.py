"""Deterministic random-number helpers.

All synthetic dataset generators accept either a seed or a
:class:`numpy.random.Generator`; :func:`make_rng` normalises both forms so
experiments are reproducible run to run.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
