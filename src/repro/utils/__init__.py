"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally small and dependency free: deterministic
random-number helpers, wall-clock stage timers used by the pipeline and the
benchmark harness, and input-validation helpers that raise uniform,
actionable error messages.
"""

from repro.utils.timing import Timer, StageTimes, timed
from repro.utils.validation import (
    check_positive_int,
    check_s_value,
    check_array_int,
    ValidationError,
)
from repro.utils.rng import make_rng

__all__ = [
    "Timer",
    "StageTimes",
    "timed",
    "check_positive_int",
    "check_s_value",
    "check_array_int",
    "ValidationError",
    "make_rng",
]
