"""Intra-process synchronisation primitives for the serving layer.

The stdlib has no readers-writer lock; the service needs one because query
traffic is read-dominated (many threads share the engine's index and cache)
while updates and compactions must run exclusively.  :class:`RWLock` is
writer-preferring: once a writer is waiting, new readers queue behind it,
so a steady stream of queries cannot starve the admission batch or the
background compactor.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Writer-preferring shared/exclusive lock.

    Any number of threads may hold the lock *shared* (:meth:`read`); one
    thread at a time may hold it *exclusive* (:meth:`write`).  Not
    re-entrant — a thread must not acquire the write side while holding
    the read side (that deadlocks, as in any RW lock).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock shared for the duration of the ``with`` block."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock exclusive for the duration of the ``with`` block."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
