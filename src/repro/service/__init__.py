"""Concurrent serving layer: one writer, many readers, one shared store.

PR 2's store made the overlap index a durable artefact; this package makes
it a *served* one.  The pieces, bottom-up:

* :class:`StoreLock` (:mod:`repro.service.lock`) — cross-process
  single-writer protocol: an advisory ``flock`` plus lease metadata in the
  store directory, auto-released by the kernel if the writer dies;
* :class:`ReadReplica` (:mod:`repro.service.replica`) — read-only engine
  that polls the store's change token and hot-reloads after WAL appends
  and compactions without dropping in-flight queries;
* :class:`AdmissionQueue` (:mod:`repro.service.admission`) — async batched
  update admission: bounded queue with backpressure, one writer thread
  coalescing mutations into single-fsync WAL group commits, futures as
  durability acknowledgements;
* :class:`CompactionPolicy` / :class:`BackgroundCompactor`
  (:mod:`repro.service.compaction`) — fold the WAL into a new snapshot
  generation off the query path when it grows past thresholds;
* :class:`QueryService` (:mod:`repro.service.service`) — the façade: a
  writer (or read-only replica) serving batched s-metric requests across
  worker threads under a readers-writer lock;
* :class:`SocketServer` / :class:`ServiceClient`
  (:mod:`repro.service.transport`) — the TCP wire protocol of
  ``docs/PROTOCOL.md`` in front of :class:`QueryService`: a JSON control
  plane plus a version-negotiated binary data plane (protocol v2) for
  bulk responses, so writers and replicas serve clients on other
  machines;
* :class:`RemoteReadReplica` (:mod:`repro.service.remote`) — a replica fed
  purely over the wire: a :class:`~repro.store.StoreMirror` pulls
  snapshot/WAL deltas through the socket protocol into a local mirror
  directory served by an inner :class:`ReadReplica` — read fleets without
  a shared filesystem.
"""

from repro.service.admission import AdmissionQueue, AdmissionStats
from repro.service.compaction import BackgroundCompactor, CompactionPolicy
from repro.service.lock import StoreLock, StoreLockHeldError
from repro.service.remote import RemoteReadReplica
from repro.service.replica import ReadReplica
from repro.service.service import QueryService
from repro.service.sync import RWLock
from repro.service.transport import (
    RemoteEngine,
    ServiceClient,
    SocketServer,
    TransportError,
)

__all__ = [
    "AdmissionQueue",
    "AdmissionStats",
    "BackgroundCompactor",
    "CompactionPolicy",
    "QueryService",
    "RWLock",
    "ReadReplica",
    "RemoteEngine",
    "RemoteReadReplica",
    "ServiceClient",
    "SocketServer",
    "StoreLock",
    "StoreLockHeldError",
    "TransportError",
]
