"""Cross-process single-writer protocol for a shared store directory.

Exactly one process may hold a store open for writing; any number may hold
read-only handles.  :class:`StoreLock` enforces the writer side with an
advisory ``flock`` on ``<store>/writer.lock`` plus human-readable lease
metadata (pid, host, acquisition time) written into the lock file so
operators — and error messages — can name the current writer.

The kernel releases an ``flock`` when its holder dies, so a crashed writer
never wedges the store: the next ``acquire`` succeeds and overwrites the
stale lease.  On platforms without ``fcntl`` the lock degrades to an
exclusive-create sentinel with pid-liveness takeover — weaker (a kill -9
between create and write can require manual cleanup on non-POSIX systems)
but preserving the single-writer invariant for cooperating processes.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Optional

from repro.store.format import LOCK_NAME, PathLike, StoreError

try:  # POSIX advisory locks (Linux/macOS); absent on Windows.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class StoreLockHeldError(StoreError):
    """Another process already holds the store's writer lock."""


def _lease_payload(owner: Optional[str]) -> dict:
    return {
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "acquired_unix": time.time(),
        "owner": owner or f"pid-{os.getpid()}",
    }


class StoreLock:
    """Advisory writer lock on one store directory (see module docstring).

    Usage::

        with StoreLock(store_path).acquire():
            ...  # exclusive write access until the block exits

    ``acquire(blocking=False)`` raises :class:`StoreLockHeldError`
    immediately when the lock is taken; ``timeout`` bounds a blocking
    acquire by polling.  The lock is *not* re-entrant.
    """

    def __init__(self, store_path: PathLike, owner: Optional[str] = None) -> None:
        self.path = os.path.join(str(store_path), LOCK_NAME)
        self.owner = owner
        self._fd: Optional[int] = None

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def held(self) -> bool:
        """True while *this object* holds the lock."""
        return self._fd is not None

    def holder(self) -> Optional[dict]:
        """Lease metadata of the current (or last) writer, if readable.

        The lease outlives a crashed holder (``flock`` does not), so treat
        it as diagnostic: "who was the writer" rather than "is it locked".
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            lease = json.loads(text)
        except json.JSONDecodeError:
            return None
        return lease if isinstance(lease, dict) else None

    # ------------------------------------------------------------------ #
    # Acquire / release
    # ------------------------------------------------------------------ #
    def acquire(
        self, blocking: bool = True, timeout: Optional[float] = None
    ) -> "StoreLock":
        """Take the writer lock, returning ``self`` (for ``with`` chaining)."""
        if self._fd is not None:
            raise StoreError(f"writer lock {self.path} is already held by this handle")
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        if fcntl is not None:
            self._acquire_flock(blocking, timeout)
        else:  # pragma: no cover - non-POSIX fallback
            self._acquire_sentinel(blocking, timeout)
        self._write_lease()
        return self

    def _locked_error(self) -> StoreLockHeldError:
        lease = self.holder()
        who = (
            f"{lease.get('owner')} (pid {lease.get('pid')} on {lease.get('host')})"
            if lease
            else "another process"
        )
        return StoreLockHeldError(
            f"store writer lock {self.path} is held by {who}; open the store "
            "read-only, or stop the other writer"
        )

    def _acquire_flock(self, blocking: bool, timeout: Optional[float]) -> None:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if blocking and timeout is None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            else:
                deadline = None if timeout is None else time.monotonic() + timeout
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if (
                            not blocking
                            or deadline is not None
                            and time.monotonic() >= deadline
                        ):
                            raise self._locked_error() from None
                        time.sleep(0.02)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd

    def _acquire_sentinel(  # pragma: no cover - non-POSIX fallback
        self, blocking: bool, timeout: Optional[float]
    ) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
                return
            except FileExistsError:
                lease = self.holder()
                if lease and not _pid_alive(int(lease.get("pid", -1))):
                    try:  # stale lease from a dead holder: take over
                        os.remove(self.path)
                        continue
                    except OSError:
                        pass
                if not blocking or (
                    deadline is not None and time.monotonic() >= deadline
                ):
                    raise self._locked_error() from None
                time.sleep(0.02)

    def _write_lease(self) -> None:
        assert self._fd is not None
        body = json.dumps(_lease_payload(self.owner), sort_keys=True)
        os.ftruncate(self._fd, 0)
        os.lseek(self._fd, 0, os.SEEK_SET)
        os.write(self._fd, body.encode("utf-8"))

    def release(self) -> None:
        """Drop the lock (idempotent).  The lease text is left as a tombstone."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            try:
                os.remove(self.path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Context manager / dunders
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "StoreLock":
        if self._fd is None:
            self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "held" if self.held else "free"
        return f"StoreLock(path={self.path!r}, {state})"


def _pid_alive(pid: int) -> bool:  # pragma: no cover - non-POSIX fallback
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True
