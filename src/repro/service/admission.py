"""Async batched admission of hypergraph updates.

Durable updates through :class:`~repro.store.PersistentQueryEngine` pay one
fsync *per update* — correct, but the fsync dominates at high update rates.
:class:`AdmissionQueue` decouples submission from application: callers
enqueue mutations (``submit_add`` / ``submit_remove``) and get a
:class:`~concurrent.futures.Future` back; a single writer thread drains the
queue, coalesces up to ``max_batch`` mutations, applies them to the engine
under the service's exclusive lock, and commits them to the write-ahead log
with *one* fsync (group commit, :meth:`repro.store.IndexStore.batch`).

Durability contract
-------------------
A future resolves only after the batch's fsync returns — an acknowledged
update survives a crash, exactly as with per-update appends; only the
acknowledgement latency is batched, never the safety.  A rejected update
(e.g. removing an out-of-range hyperedge) fails *before* its WAL append:
its future carries the exception, and the rest of the batch is unaffected.
The queue is bounded (``max_pending``); when full, ``submit_*`` blocks —
backpressure, so a runaway producer cannot grow memory without bound.

If the group commit *itself* fails (an fsync error), every future of the
batch carries the failure and the queue is **poisoned**: the mutations were
already applied to the in-memory engine, so the served state may be ahead
of the log, and further submissions are refused with instructions to
restart the writer — a fresh open recovers exactly the acknowledged prefix
from the WAL.  Cancelling a future before the writer claims it drops the
mutation entirely; once claimed, it can no longer be cancelled.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.chaos.failpoints import fire as _failpoint
from repro.engine.engine import QueryEngine
from repro.obs import get_registry, get_tracer
from repro.service.sync import RWLock
from repro.store.format import StoreError
from repro.utils.validation import ValidationError

_OP_ADD = "add"
_OP_REMOVE = "remove"
_OP_BARRIER = "barrier"


def _fail_future(future: Future, exc: BaseException) -> None:
    """Best-effort rejection: a future another path already resolved
    (or the caller cancelled) is left alone."""
    if future.done():
        return
    try:
        future.set_exception(exc)
    except InvalidStateError:  # resolved/cancelled in the race window
        pass


@dataclass
class _Op:
    kind: str
    members: Optional[list] = None
    name: Optional[object] = None
    edge_id: Optional[int] = None
    future: Future = field(default_factory=Future)
    #: perf_counter() stamp taken at submission (queue-wait histogram).
    submitted_at: float = 0.0
    #: The submitting request's active span, if it is being traced —
    #: carried across the thread hop so the writer thread can attribute
    #: queue wait and the group-commit fsync to the originating request.
    trace_span: Optional[object] = None


@dataclass
class AdmissionStats:
    """Counters describing the queue's work since construction."""

    submitted: int = 0
    applied: int = 0
    failed: int = 0
    batches: int = 0
    largest_batch: int = 0

    def mean_batch_size(self) -> float:
        done = self.applied + self.failed
        return done / self.batches if self.batches else 0.0


class AdmissionQueue:
    """Single-writer-thread batched update admission (see module docstring).

    Parameters
    ----------
    engine:
        The engine updates are applied to.  A
        :class:`~repro.store.PersistentQueryEngine` gets group-committed
        WAL durability; a plain :class:`QueryEngine` gets in-memory batch
        application with the same future-based acknowledgement.
    write_lock:
        The service's :class:`~repro.service.sync.RWLock`; the writer
        thread takes its exclusive side per batch so queries never observe
        a half-applied update.  A private lock is created when omitted.
    max_pending:
        Queue bound; ``submit_*`` blocks when this many mutations are
        waiting (backpressure).
    max_batch:
        Most mutations coalesced into one exclusive-lock/fsync cycle.
    """

    def __init__(
        self,
        engine: QueryEngine,
        write_lock: Optional[RWLock] = None,
        max_pending: int = 1024,
        max_batch: int = 64,
    ) -> None:
        if max_pending < 1:
            raise ValidationError("max_pending must be >= 1")
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        self._engine = engine
        self._write_lock = write_lock if write_lock is not None else RWLock()
        self._queue: "queue.Queue[Optional[_Op]]" = queue.Queue(maxsize=max_pending)
        self._max_batch = int(max_batch)
        self._closed = False
        self._drained = False
        #: The exception that broke a group commit, if any (poisons submits).
        self._commit_failure: Optional[BaseException] = None
        self._stats = AdmissionStats()
        self._stats_lock = threading.Lock()
        self._tracer = get_tracer()
        registry = get_registry()
        self._m_depth = registry.gauge(
            "repro_admission_queue_depth", "Mutations waiting for the writer thread."
        )
        self._m_wait = registry.histogram(
            "repro_admission_wait_seconds",
            "Time a mutation spends queued before the writer claims it.",
        )
        self._m_batch_size = registry.histogram(
            "repro_admission_batch_size",
            "Mutations coalesced into one group commit.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self._m_submitted = registry.counter(
            "repro_admission_submitted_total", "Mutations accepted for admission."
        )
        self._m_applied = registry.counter(
            "repro_admission_applied_total", "Mutations applied and made durable."
        )
        self._m_failed = registry.counter(
            "repro_admission_failed_total", "Mutations rejected by validation."
        )
        self._thread = threading.Thread(
            target=self._run, name="admission-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    @property
    def poisoned(self) -> bool:
        """Whether a failed group commit has poisoned further submissions."""
        return self._commit_failure is not None

    def _poison_error(self) -> ValidationError:
        return ValidationError(
            "admission queue is poisoned: a group commit failed "
            f"({self._commit_failure!r}); the engine's in-memory state "
            "may be ahead of the log — restart the writer (the store "
            "recovers every acknowledged update from the WAL)"
        )

    def _submit(self, op: _Op) -> Future:
        if self._closed:
            raise ValidationError("admission queue is closed")
        if self._commit_failure is not None:
            raise self._poison_error()
        with self._stats_lock:
            self._stats.submitted += 1
        self._m_submitted.inc()
        op.submitted_at = time.perf_counter()
        op.trace_span = self._tracer.current_span()
        self._queue.put(op)  # blocks when full: backpressure
        self._m_depth.set(self._queue.qsize())
        if self._drained:
            # We raced close(): its final drain may have missed this op.
            _fail_future(
                op.future,
                ValidationError(
                    "admission queue closed before this update was applied"
                ),
            )
        return op.future

    def submit_add(self, members: Iterable[int], name: Optional[object] = None) -> Future:
        """Enqueue an ``add_hyperedge``; the future resolves to the new ID
        once the update is applied *and durable*."""
        return self._submit(_Op(kind=_OP_ADD, members=list(members), name=name))

    def submit_remove(self, edge_id: int) -> Future:
        """Enqueue a ``remove_hyperedge``; the future resolves to ``None``
        once the update is applied and durable."""
        return self._submit(_Op(kind=_OP_REMOVE, edge_id=int(edge_id)))

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until everything submitted before this call is durable."""
        barrier = self._submit(_Op(kind=_OP_BARRIER))
        barrier.result(timeout=timeout)

    def pending(self) -> int:
        """Approximate number of not-yet-applied mutations."""
        return self._queue.qsize()

    def stats(self) -> AdmissionStats:
        with self._stats_lock:
            return AdmissionStats(**vars(self._stats))

    def snapshot(self) -> dict:
        """Atomic plain-dict view of the queue's counters.

        All counter fields are copied under one lock hold, so the returned
        values are mutually consistent (``applied + failed`` never exceeds
        a concurrently-advancing ``submitted``).  Stable keys:
        ``submitted``, ``applied``, ``failed``, ``batches``,
        ``largest_batch``, ``mean_batch_size``, ``pending``.
        """
        with self._stats_lock:
            snap = AdmissionStats(**vars(self._stats))
        return {
            "submitted": snap.submitted,
            "applied": snap.applied,
            "failed": snap.failed,
            "batches": snap.batches,
            "largest_batch": snap.largest_batch,
            "mean_batch_size": snap.mean_batch_size(),
            "pending": self._queue.qsize(),
        }

    # ------------------------------------------------------------------ #
    # Writer thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            op = self._queue.get()
            if op is None:
                return
            if self._commit(op):
                return

    def _durability_scope(self):
        store = getattr(self._engine, "store", None)
        return store.batch() if store is not None else nullcontext()

    def _commit(self, first: _Op) -> bool:
        """Apply one coalesced batch: exclusive lock, group commit, ack.

        Coalescing happens *inside* the exclusive lock: every mutation that
        queued while this batch waited for queries (or a compaction) to
        drain joins it, up to ``max_batch`` — contention is what creates
        batches.  Returns True when the shutdown sentinel was drained.
        """
        if self._commit_failure is not None:
            # Poisoned: the engine is already ahead of the log, so applying
            # (let alone acknowledging) anything more would widen the gap.
            _fail_future(first.future, self._poison_error())
            return False
        candidates = [first]
        saw_sentinel = False
        outcomes: List[tuple] = []  # (op, value, error)
        batch: List[_Op] = []
        try:
            with self._write_lock.write():
                while len(candidates) < self._max_batch:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is None:
                        saw_sentinel = True
                        break
                    candidates.append(nxt)
                # Claim each future (Future protocol): a caller that already
                # cancelled is dropped *before* its mutation is applied, and
                # a claimed future can no longer be cancelled under us.
                batch = [
                    op
                    for op in candidates
                    if op.future.set_running_or_notify_cancel()
                ]
                claimed_at = time.perf_counter()
                traced = None
                for op in batch:
                    self._m_wait.observe(claimed_at - op.submitted_at)
                    if op.trace_span is not None:
                        # Queue wait is only known now that the batch is
                        # claimed — backfill it from the two stamps.
                        self._tracer.record_span(
                            "admission.queue_wait",
                            op.trace_span,
                            op.submitted_at,
                            claimed_at,
                        )
                        if traced is None:
                            traced = op.trace_span
                # The group commit serves the whole batch; its WAL fsync is
                # attributed to the first traced request that joined it.
                with self._tracer.use_span(traced):
                    with self._durability_scope():
                        # Chaos: a fault here fails the whole group commit
                        # (batch futures error, queue poisons) — the acked
                        # prefix on disk must still survive a restart.
                        _failpoint("admission.commit")
                        for op in batch:
                            try:
                                outcomes.append((op, self._apply(op), None))
                            except ValidationError as exc:
                                if isinstance(exc, StoreError):
                                    # The store refused *after* the in-memory
                                    # apply (WAL append path): state is ahead
                                    # of the log — escalate to the poison
                                    # path.
                                    raise
                                # Engine validation rejects before mutating
                                # anything: safe to isolate to this op.
                                outcomes.append((op, None, exc))
        except Exception as exc:
            # The group commit itself failed (e.g. fsync error): nothing in
            # this batch may be acknowledged as durable — but the mutations
            # were already applied to the in-memory engine, so this writer
            # can no longer vouch that served state matches the log.  Poison
            # further submissions; a restarted writer recovers exactly the
            # acknowledged prefix from the WAL.
            self._commit_failure = exc
            for op in batch:
                _fail_future(op.future, exc)
            return saw_sentinel
        # Acknowledge only now — after the WAL fsync — per the contract.
        applied = failed = 0
        for op, value, error in outcomes:
            if error is None:
                op.future.set_result(value)
                if op.kind != _OP_BARRIER:
                    applied += 1
            else:
                op.future.set_exception(error)
                failed += 1
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.applied += applied
            self._stats.failed += failed
            self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
        if batch:
            self._m_batch_size.observe(len(batch))
        self._m_applied.inc(applied)
        self._m_failed.inc(failed)
        self._m_depth.set(self._queue.qsize())
        return saw_sentinel

    def _apply(self, op: _Op):
        if op.kind == _OP_ADD:
            return self._engine.add_hyperedge(op.members, name=op.name)
        if op.kind == _OP_REMOVE:
            return self._engine.remove_hyperedge(op.edge_id)
        return None  # barrier: its resolution is the acknowledgement

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting submissions, drain the queue, join the writer."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        # Fail anything a racing submit slipped in behind the sentinel, so
        # no caller blocks forever on an abandoned future.  The drain runs
        # on both sides of the _drained flag flip: a submit that misses the
        # first drain either lands before the second one, or observes
        # _drained afterwards and fails its own future (see _submit).
        self._drain_and_fail()
        self._drained = True
        self._drain_and_fail()

    def _drain_and_fail(self) -> None:
        while True:
            try:
                op = self._queue.get_nowait()
            except queue.Empty:
                return
            if op is not None:
                _fail_future(
                    op.future,
                    ValidationError(
                        "admission queue closed before this update was applied"
                    ),
                )

    def __enter__(self) -> "AdmissionQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
