"""Read replicas: hot-reloading, read-only views of a shared store.

A :class:`ReadReplica` wraps a read-only
:class:`~repro.store.PersistentQueryEngine` and keeps it *current* while a
single writer (in this or another process) appends updates and compacts the
store.  Staleness is detected by polling the store's cheap change token
(``(manifest generation, WAL byte length)`` — see
:meth:`repro.store.IndexStore.state_token`); on change the replica opens a
fresh engine against the new state and swaps it in atomically.

In-flight queries are never dropped by a swap: each query captures the
engine reference it started with, and POSIX keeps the old generation's
mmap'd shard files readable through existing handles even after the
compactor sweeps (unlinks) them.  A query that first *touches* a swept
shard after the sweep gets a store error instead — the replica treats that
as a stale-view signal, force-reloads, and retries the query once against
the new generation.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.engine.engine import SweepResult
from repro.parallel.executor import ParallelConfig
from repro.store.format import PathLike, StoreError
from repro.store.persistent import PersistentQueryEngine
from repro.store.store import IndexStore

#: Attempts to open the store before giving up (a writer's compaction can
#: race the manifest/shard reads of an open; each retry re-reads fresh).
_OPEN_RETRIES = 6
_OPEN_RETRY_SLEEP = 0.05


class ReadReplica:
    """Hot-reloading read-only query engine over a shared store.

    Parameters
    ----------
    path:
        Store directory (shared with the writer).
    sharded:
        Stream from mmap'd shards (default) instead of materialising the
        index per reload — reloads stay cheap even for large stores.
    poll_interval:
        Minimum seconds between staleness checks; ``0`` (default) checks
        before every query.  Between checks, queries are served from the
        current engine without touching the manifest.
    max_resident_shards / cache_size / config:
        Forwarded to the underlying engine.
    """

    def __init__(
        self,
        path: PathLike,
        sharded: bool = True,
        poll_interval: float = 0.0,
        max_resident_shards: Optional[int] = None,
        cache_size: int = 256,
        config: Optional[ParallelConfig] = None,
    ) -> None:
        self._path = str(path)
        self._sharded = bool(sharded)
        self._poll_interval = float(poll_interval)
        self._max_resident_shards = max_resident_shards
        self._cache_size = int(cache_size)
        self._config = config
        self._swap_lock = threading.Lock()
        self._closed = False
        #: Completed hot reloads (observability / tests).
        self.reloads = 0
        self._engine, self._token = self._open()
        self._last_check = time.monotonic()

    # ------------------------------------------------------------------ #
    # Opening / refreshing
    # ------------------------------------------------------------------ #
    def _open(self) -> Tuple[PersistentQueryEngine, Tuple[int, int]]:
        """Open a fresh read-only engine, retrying through writer races.

        The change token is read *before* the store, so any write landing
        during the open makes the next poll's token differ and triggers a
        (cheap, already-warm) reload rather than being missed.
        """
        last_error: Optional[Exception] = None
        for _ in range(_OPEN_RETRIES):
            try:
                token = IndexStore.state_token(self._path)
                engine = PersistentQueryEngine.open(
                    self._path,
                    read_only=True,
                    sharded=self._sharded,
                    max_resident_shards=self._max_resident_shards,
                    cache_size=self._cache_size,
                    config=self._config,
                )
                return engine, token
            except (StoreError, OSError) as exc:
                last_error = exc
                time.sleep(_OPEN_RETRY_SLEEP)
        raise StoreError(
            f"read replica could not open store at {self._path} after "
            f"{_OPEN_RETRIES} attempts: {last_error}"
        )

    def refresh(self, force: bool = False) -> bool:
        """Reload the engine if the store changed; True when it did.

        ``force=True`` skips the token comparison (used after a query hit
        a swept shard file).  Queries running on the superseded engine
        finish undisturbed — the swap only redirects *new* queries.

        Installs are monotonic in the snapshot *generation*: two racing
        refreshes can open different states, and the one that opened a
        superseded generation must not overwrite the newer one (clients
        would observe a compaction rolling back).  WAL byte counts are
        deliberately *not* ordered — a restarted writer legitimately
        shrinks the log (torn-tail truncation), and refusing smaller
        byte counts would wedge the replica on its stale view.

        A freshly opened engine that is *not* installed (lost the race,
        equal token, replica closed) has no queries running on it and is
        closed immediately — without this, every superseded refresh leaks
        the loser's mmap'd shard handles.  The *replaced* engine is never
        closed here: in-flight queries may still hold it (see
        :meth:`close`).
        """
        with self._swap_lock:
            if self._closed:
                return False
            token_now = self._token
        if not force and IndexStore.state_token(self._path) == token_now:
            return False
        engine, token = self._open()
        superseded: Optional[PersistentQueryEngine] = None
        try:
            with self._swap_lock:
                if self._closed or token[0] < self._token[0]:
                    # Superseded by a newer generation (or closed).
                    superseded = engine
                    return False
                if token == self._token and not force:
                    # A concurrent refresh already installed this state.
                    superseded = engine
                    return False
                self._engine = engine
                self._token = token
                self.reloads += 1
            return True
        finally:
            if superseded is not None:
                superseded.close()

    def _current_engine(self) -> PersistentQueryEngine:
        if self._closed:
            raise StoreError(f"read replica for {self._path} is closed")
        now = time.monotonic()
        if now - self._last_check >= self._poll_interval:
            self._last_check = now
            try:
                self.refresh()
            except (StoreError, OSError):
                # Keep serving the last good view through transient races
                # (racing compaction, ESTALE/EACCES reading the manifest);
                # the next poll (or a forced refresh on error) retries.
                pass
        with self._swap_lock:
            return self._engine

    def _serve(self, method: str, *args, **kwargs):
        engine = self._current_engine()
        try:
            return getattr(engine, method)(*args, **kwargs)
        except (StoreError, OSError):
            # Stale view: a compaction swept shard files this lazily
            # mmap'ing engine had not touched yet.  Reload and retry once.
            self.refresh(force=True)
            with self._swap_lock:
                engine = self._engine
            return getattr(engine, method)(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    @property
    def generation(self) -> int:
        """Snapshot generation of the currently served view."""
        with self._swap_lock:
            return self._engine.store.manifest.generation

    @property
    def engine(self) -> PersistentQueryEngine:
        """The currently served (read-only) engine."""
        with self._swap_lock:
            return self._engine

    def fingerprint(self) -> str:
        with self._swap_lock:
            return self._engine.fingerprint()

    def max_s(self) -> int:
        return self._serve("max_s")

    # ------------------------------------------------------------------ #
    # Queries (each checks staleness per poll_interval, then serves)
    # ------------------------------------------------------------------ #
    def line_graph(self, s: int):
        return self._serve("line_graph", s)

    #: ``extract(s)`` is the service-facing name for a threshold view.
    extract = line_graph

    def metric(self, s: int, name: str) -> np.ndarray:
        return self._serve("metric", s, name)

    def metric_by_hyperedge(self, s: int, name: str) -> Dict[int, float]:
        return self._serve("metric_by_hyperedge", s, name)

    def metrics(self, s: int, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return self._serve("metrics", s, names)

    def sweep(self, s_values: Iterable[int], metrics: Sequence[str] = ()) -> SweepResult:
        return self._serve("sweep", list(s_values), metrics=metrics)

    def num_components(self, s: int) -> int:
        """Number of s-connected components among non-isolated hyperedges."""
        labels = self.metric(s, "connected_components")
        return int(labels.max()) + 1 if labels.size else 0

    def close(self) -> None:
        """Stop serving: new queries raise a clear :class:`StoreError`.

        Queries already running on the last engine finish undisturbed (the
        reference is kept; mmaps close once they are garbage collected).
        """
        with self._swap_lock:
            self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ", closed" if self._closed else ""
        return (
            f"ReadReplica(path={self._path!r}, generation={self.generation}, "
            f"reloads={self.reloads}{state})"
        )
