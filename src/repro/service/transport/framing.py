"""Wire framing for the serving protocol: JSON control plane, binary data plane.

This module implements the frame layer specified normatively in
``docs/PROTOCOL.md`` — the byte layouts, the hello/version-negotiation
state machine, and the error-code registry all live there; the docstrings
below are a summary, the spec is the source of truth.

A connection is a bidirectional stream of *frames*.  Every frame starts
with a 4-byte big-endian unsigned length prefix.  With the high bit clear
the frame is a **v1 (JSON) frame** — the prefix is followed by that many
bytes of UTF-8 JSON encoding one object::

    +----------------+-------------------------------+
    | length (>I, 4B)| payload (length bytes, JSON)  |
    +----------------+-------------------------------+

With the high bit set (:data:`BINARY_FLAG`; only legal after both peers
negotiated protocol 2) the low 31 bits give the body length of a
**binary frame**: a 4-byte header length, a UTF-8 JSON header, then the
concatenated raw payload sections the header describes::

    +----------------+----------------+-----------+------------------+
    | 0x8000_0000|len| hdr_len (>I,4B)| header    | sections (raw)   |
    +----------------+----------------+-----------+------------------+

The header is the response payload with every bulk value (``bytes`` or a
``numpy`` array) replaced by a ``{"__sec__": i}`` placeholder, plus a
``sections`` table carrying each section's dtype/shape/length and optional
compression codec.  Decoding splices the sections back in place, so both
frame kinds decode to the same request/response mappings of
:meth:`repro.service.QueryService.serve`.

Transport-level ops (see ``docs/PROTOCOL.md`` for payload shapes):

``hello``
    The mandatory first frame of every connection (both directions).  The
    baseline field is ``{"op": "hello", "protocol": 1}``; peers that speak
    more advertise it with ``"protocols": [1, 2]`` plus the compression
    codecs they accept, and both sides settle on ``max(common versions)``
    (see :func:`negotiate_protocol`).  A v1-only peer ignores the extra
    keys and is answered in plain v1 — compatibility holds in both
    directions.  A version bump is required for any change an older peer
    cannot ignore; new *optional* hello/response fields do not bump it
    (mirroring the store's format-version policy).
``batch``
    ``{"op": "batch", "requests": [...]}`` — the server serves the whole
    list through one :meth:`QueryService.serve` call (worker-thread
    fan-out) and answers ``{"ok": true, "results": [...]}`` in order.
``goodbye``
    Graceful connection teardown: the server acknowledges, then closes.

Failure responses carry ``ok = false``, a human-readable ``error`` and a
machine-readable ``code`` (the ``E_*`` constants below), so clients can
distinguish "retry later" (:data:`E_BUSY`) from "fix the request"
(:data:`E_BAD_REQUEST`) from "talk to the writer" (:data:`E_READ_ONLY`).

Framing errors are symmetric: a reader that hits end-of-stream *inside* a
frame raises :class:`TruncatedFrameError`; a declared length above the
reader's ``max_frame_bytes`` raises :class:`FrameTooLargeError` before any
payload is read, so an adversarial or buggy peer cannot make the reader
allocate unbounded memory.  A corrupt binary frame raises
:class:`FrameError` after the body is read — the server answers it with a
:data:`E_BAD_FRAME` error and drops only that connection.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where zstandard is installed
    import zstandard as _zstd
except ImportError:  # the container/CI baseline: stdlib zlib only
    _zstd = None

#: The baseline protocol every peer must speak; also the value of the
#: mandatory ``protocol`` hello field (kept at 1 forever so pre-negotiation
#: peers' strict equality checks keep passing — see docs/PROTOCOL.md).
PROTOCOL_VERSION = 1

#: Protocol 2: the binary data plane (binary frames, columnar responses,
#: raw replication payloads, per-connection compression).
PROTOCOL_VERSION_BINARY = 2

#: Every protocol version this build can speak, ascending.
SUPPORTED_PROTOCOLS: Tuple[int, ...] = (1, 2)

#: 4-byte big-endian unsigned frame length.
LENGTH_PREFIX = struct.Struct(">I")

#: High bit of the length prefix: set on binary (protocol >= 2) frames.
BINARY_FLAG = 0x80000000

#: Default cap on a single frame (either direction).  Large enough for a
#: full metric map over hundreds of thousands of hyperedges, small enough
#: to bound what a misbehaving peer can make us buffer.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Bytes below which a compressible section is sent uncompressed (the
#: codec round trip would cost more than the bytes saved).
MIN_COMPRESS_BYTES = 512

# --------------------------------------------------------------------- #
# Error codes (the ``code`` field of failure responses)
# --------------------------------------------------------------------- #
E_PROTOCOL = "protocol_mismatch"  #: handshake version/shape not accepted
E_BAD_FRAME = "bad_frame"  #: unparseable or oversized frame
E_BAD_REQUEST = "bad_request"  #: well-formed frame, invalid request
E_READ_ONLY = "read_only"  #: write sent to a read-only replica server
E_BUSY = "busy"  #: connection limit reached — retry later
E_UNAVAILABLE = "unavailable"  #: server is shutting down / store error
E_STALE = "stale_generation"  #: replication op pinned a superseded generation
E_INTERNAL = "internal"  #: unexpected server-side failure

# --------------------------------------------------------------------- #
# Op idempotency (the auto-retry contract)
# --------------------------------------------------------------------- #
#: Service ops a client may transparently re-send after a reconnect.
#: Pure reads only — the replication ops read pinned-generation state, so
#: a re-send cannot observe (let alone apply) anything twice.  The client
#: derives its auto-retry set from this constant; keeping the partition
#: here, next to the error codes, makes idempotency part of the wire
#: contract rather than a per-client opinion.
IDEMPOTENT_OPS = frozenset(
    {
        "metric",
        "components",
        "sweep",
        "stats",
        "metrics",
        "trace",
        "repl_manifest",
        "repl_fetch",
        "repl_wal",
    }
)

#: Service ops that mutate server state or act as durability barriers:
#: never auto-retried.  A connection lost after sending one loses the
#: reply, and re-sending could apply the mutation twice — the caller must
#: decide (at-least-once vs give-up), not the transport.  Every op the
#: service dispatches must appear in exactly one of these two sets
#: (enforced by ``tools/repro-lint``'s op-contract rule).
NONIDEMPOTENT_OPS = frozenset({"add", "remove", "flush", "compact", "chaos"})


class TransportError(Exception):
    """Base error for the socket transport layer."""


class FrameError(TransportError):
    """A frame could not be encoded, decoded or transferred."""


class FrameTooLargeError(FrameError):
    """A frame's declared length exceeds the reader's ``max_frame_bytes``."""


class TruncatedFrameError(FrameError):
    """The stream ended (or the peer vanished) mid-frame."""


class ProtocolVersionError(TransportError):
    """The peers speak incompatible protocol versions."""


class ServiceBusyError(TransportError):
    """The server refused the connection: at its connection limit."""


class RemoteServiceError(TransportError):
    """The server answered a request with ``ok = false``.

    Attributes
    ----------
    code:
        The machine-readable ``E_*`` error code (``E_INTERNAL`` when the
        server did not supply one).
    response:
        The full response payload, for callers that need more context.
    """

    def __init__(
        self,
        message: str,
        code: str = E_INTERNAL,
        response: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.response = dict(response or {})


# --------------------------------------------------------------------- #
# Compression codecs (negotiated per connection; replication payloads)
# --------------------------------------------------------------------- #
def available_codecs() -> Tuple[str, ...]:
    """Compression codecs this build can decode, in preference order.

    ``zstd`` is offered only when the ``zstandard`` package is importable;
    the stdlib ``zlib`` fallback is always available, so two peers of this
    build always share at least one codec.
    """
    return ("zstd", "zlib") if _zstd is not None else ("zlib",)


def negotiate_codec(peer_codecs: Optional[Sequence[object]]) -> Optional[str]:
    """Pick the preferred codec both sides support (``None``: no overlap).

    ``peer_codecs`` is the ``compression`` list from the peer's hello
    (absent/empty means the peer wants no compression).
    """
    if not peer_codecs:
        return None
    offered = {str(c) for c in peer_codecs}
    for codec in available_codecs():
        if codec in offered:
            return codec
    return None


def compress_bytes(codec: str, data: bytes) -> bytes:
    """Compress one section body with a negotiated codec."""
    if codec == "zstd" and _zstd is not None:  # pragma: no cover - env-gated
        return _zstd.ZstdCompressor().compress(data)
    if codec == "zlib":
        return zlib.compress(data, 1)
    raise FrameError(f"unknown compression codec {codec!r}")


def decompress_bytes(codec: str, data: bytes, expected_len: int) -> bytes:
    """Reverse :func:`compress_bytes`, validating the declared raw length."""
    if codec == "zstd" and _zstd is not None:  # pragma: no cover - env-gated
        out = _zstd.ZstdDecompressor().decompress(data, max_output_size=expected_len)
    elif codec == "zlib":
        out = zlib.decompress(data)
    else:
        raise FrameError(f"unknown compression codec {codec!r}")
    if len(out) != expected_len:
        raise FrameError(
            f"section decompressed to {len(out)} bytes, header declared "
            f"{expected_len}"
        )
    return out


# --------------------------------------------------------------------- #
# Encoding / decoding — v1 (JSON) frames
# --------------------------------------------------------------------- #
def encode_frame(payload: Dict[str, object], max_frame_bytes: int) -> bytes:
    """Serialise one payload to a length-prefixed JSON (v1) frame."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return LENGTH_PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, object]:
    """Parse a JSON frame body; every frame must encode one JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame must encode a JSON object, got {type(payload).__name__}"
        )
    return payload


# --------------------------------------------------------------------- #
# Encoding / decoding — binary (protocol 2) frames
# --------------------------------------------------------------------- #
def _is_section_value(value: object) -> bool:
    return isinstance(value, (bytes, bytearray, memoryview, np.ndarray))


def payload_has_sections(payload: object) -> bool:
    """Whether a payload holds bulk values only a binary frame can carry."""
    if _is_section_value(payload):
        return True
    if isinstance(payload, dict):
        return any(payload_has_sections(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return any(payload_has_sections(v) for v in payload)
    return False


def _extract_sections(value: object, sections: List[object]) -> object:
    """Replace bulk leaves with placeholders, collecting them in order."""
    if _is_section_value(value):
        sections.append(value)
        return {"__sec__": len(sections) - 1}
    if isinstance(value, dict):
        return {k: _extract_sections(v, sections) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_extract_sections(v, sections) for v in value]
    return value


def _splice_sections(value: object, sections: List[object]) -> object:
    """Reverse :func:`_extract_sections` after the sections are decoded."""
    if isinstance(value, dict):
        if set(value.keys()) == {"__sec__"}:
            index = value["__sec__"]
            if not isinstance(index, int) or not 0 <= index < len(sections):
                raise FrameError(f"binary frame references unknown section {index!r}")
            return sections[index]
        return {k: _splice_sections(v, sections) for k, v in value.items()}
    if isinstance(value, list):
        return [_splice_sections(v, sections) for v in value]
    return value


def encode_binary_frame(
    payload: Dict[str, object],
    max_frame_bytes: int,
    codec: Optional[str] = None,
) -> bytes:
    """Serialise one payload to a binary (protocol 2) frame.

    Bulk values — ``bytes``-likes and ``numpy`` arrays, found anywhere in
    the payload — travel as raw sections after the JSON header instead of
    being JSON/base64-encoded.  Arrays are shipped as their native little-
    endian buffers (dtype and shape in the header); ``bytes`` sections
    larger than :data:`MIN_COMPRESS_BYTES` are compressed with ``codec``
    when that actually shrinks them (arrays are left raw — the zero-copy
    point of the binary plane).  See docs/PROTOCOL.md §4.
    """
    raw_sections: List[object] = []
    header_payload = _extract_sections(dict(payload), raw_sections)
    sections: List[Dict[str, object]] = []
    bodies: List[bytes] = []
    for value in raw_sections:
        meta: Dict[str, object] = {}
        if isinstance(value, np.ndarray):
            array = np.ascontiguousarray(value)
            if array.dtype.hasobject:
                raise FrameError(
                    f"object-dtype array {array.dtype} cannot travel in a "
                    "binary frame"
                )
            dtype = array.dtype.newbyteorder("<")
            body = array.astype(dtype, copy=False).tobytes()
            meta["dtype"] = dtype.str
            meta["shape"] = list(array.shape)
        else:
            body = bytes(value)
            meta["dtype"] = "bytes"
        meta["ulen"] = len(body)
        if (
            codec is not None
            and meta["dtype"] == "bytes"
            and len(body) >= MIN_COMPRESS_BYTES
        ):
            packed = compress_bytes(codec, body)
            if len(packed) < len(body):
                body = packed
                meta["codec"] = codec
        meta["len"] = len(body)
        sections.append(meta)
        bodies.append(body)
    header_obj = {"payload": header_payload, "sections": sections}
    try:
        header = json.dumps(header_obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not binary-frame-serialisable: {exc}") from exc
    body_len = LENGTH_PREFIX.size + len(header) + sum(len(b) for b in bodies)
    if body_len > max_frame_bytes:
        raise FrameTooLargeError(
            f"binary frame of {body_len} bytes exceeds the "
            f"{max_frame_bytes}-byte cap"
        )
    return b"".join(
        [LENGTH_PREFIX.pack(BINARY_FLAG | body_len), LENGTH_PREFIX.pack(len(header)), header]
        + bodies
    )


def decode_binary_frame(body: bytes, max_frame_bytes: int) -> Dict[str, object]:
    """Parse a binary frame body (everything after the length prefix)."""
    if len(body) < LENGTH_PREFIX.size:
        raise FrameError("binary frame too short for its header length")
    (header_len,) = LENGTH_PREFIX.unpack_from(body)
    header_end = LENGTH_PREFIX.size + header_len
    if header_len > len(body) - LENGTH_PREFIX.size:
        raise FrameError(
            f"binary frame header declares {header_len} bytes, only "
            f"{len(body) - LENGTH_PREFIX.size} present"
        )
    header = decode_payload(body[LENGTH_PREFIX.size : header_end])
    sections_meta = header.get("sections")
    payload = header.get("payload")
    if not isinstance(sections_meta, list) or not isinstance(payload, dict):
        raise FrameError("binary frame header must carry 'payload' and 'sections'")
    sections: List[object] = []
    offset = header_end
    for meta in sections_meta:
        if not isinstance(meta, dict):
            raise FrameError("binary frame section metadata must be objects")
        try:
            length = int(meta["len"])
            ulen = int(meta.get("ulen", length))
            dtype = str(meta.get("dtype", "bytes"))
        except (KeyError, TypeError, ValueError) as exc:
            raise FrameError(f"malformed binary section metadata: {exc}") from exc
        if length < 0 or offset + length > len(body):
            raise FrameError(
                f"binary section of {length} bytes overruns the frame body"
            )
        if ulen < 0 or ulen > max_frame_bytes:
            raise FrameError(
                f"binary section declares {ulen} raw bytes, above the "
                f"{max_frame_bytes}-byte cap"
            )
        chunk = body[offset : offset + length]
        offset += length
        codec = meta.get("codec")
        if codec is not None:
            chunk = decompress_bytes(str(codec), chunk, ulen)
        elif len(chunk) != ulen:
            raise FrameError(
                f"uncompressed section carries {len(chunk)} bytes, header "
                f"declared {ulen}"
            )
        if dtype == "bytes":
            sections.append(chunk)
        else:
            try:
                shape = tuple(int(d) for d in meta.get("shape", [len(chunk)]))
                array = np.frombuffer(chunk, dtype=np.dtype(dtype)).reshape(shape)
            except (TypeError, ValueError) as exc:
                raise FrameError(f"malformed binary array section: {exc}") from exc
            sections.append(array)
    if offset != len(body):
        raise FrameError(
            f"binary frame carries {len(body) - offset} trailing bytes its "
            "header does not describe"
        )
    return _splice_sections(payload, sections)


# --------------------------------------------------------------------- #
# Socket I/O
# --------------------------------------------------------------------- #
def recv_exact(
    sock: socket.socket,
    num_bytes: int,
    at_boundary: bool,
    on_timeout=None,
) -> Optional[bytes]:
    """Read exactly ``num_bytes`` from a blocking socket.

    Returns ``None`` on a clean end-of-stream when ``at_boundary`` is true
    and no bytes of the frame were read yet; raises
    :class:`TruncatedFrameError` if the stream ends anywhere else.

    ``on_timeout`` makes a socket-timeout loop interruptible (the server's
    stop flag): called with ``partial`` (were any bytes of this read
    received yet?) after every timeout; return ``False`` to keep waiting,
    ``True`` to give up — which is a clean ``None`` at an idle frame
    boundary and a :class:`TruncatedFrameError` mid-frame.  Without it a
    timeout is treated like a lost connection.
    """
    buffer = bytearray()
    while len(buffer) < num_bytes:
        try:
            chunk = sock.recv(num_bytes - len(buffer))
        except socket.timeout as exc:
            if on_timeout is None:
                raise TruncatedFrameError(f"timed out mid-frame: {exc}") from exc
            if on_timeout(bool(buffer) or not at_boundary):
                if at_boundary and not buffer:
                    return None
                raise TruncatedFrameError(
                    "reader stopped while a frame was in flight"
                ) from exc
            continue
        except (ConnectionError, OSError) as exc:
            raise TruncatedFrameError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            if at_boundary and not buffer:
                return None
            raise TruncatedFrameError(
                f"stream ended after {len(buffer)} of {num_bytes} expected bytes"
            )
        buffer.extend(chunk)
    return bytes(buffer)


def send_frame(
    sock: socket.socket,
    payload: Dict[str, object],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one JSON (v1) frame."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def send_binary_frame(
    sock: socket.socket,
    payload: Dict[str, object],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    codec: Optional[str] = None,
) -> None:
    """Encode and send one binary (protocol 2) frame."""
    sock.sendall(encode_binary_frame(payload, max_frame_bytes, codec=codec))


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    on_timeout=None,
) -> Optional[Dict[str, object]]:
    """Receive one frame (JSON or binary); ``None`` on clean end-of-stream.

    The high bit of the length prefix selects the decoder, so a reader
    needs no out-of-band state — but a peer must only *send* binary frames
    after protocol 2 was negotiated (docs/PROTOCOL.md §3).  ``on_timeout``
    is forwarded to :func:`recv_exact` (interruptible reads).
    """
    header = recv_exact(sock, LENGTH_PREFIX.size, at_boundary=True, on_timeout=on_timeout)
    if header is None:
        return None
    (length,) = LENGTH_PREFIX.unpack(header)
    binary = bool(length & BINARY_FLAG)
    length &= ~BINARY_FLAG
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame; this side caps frames "
            f"at {max_frame_bytes} bytes"
        )
    if length:
        body = recv_exact(sock, length, at_boundary=False, on_timeout=on_timeout)
    else:
        body = b""
    if binary:
        return decode_binary_frame(body, max_frame_bytes)
    return decode_payload(body)


# --------------------------------------------------------------------- #
# Handshake payloads (the negotiation state machine of docs/PROTOCOL.md)
# --------------------------------------------------------------------- #
def hello_request() -> Dict[str, object]:
    """The client's mandatory first frame (baseline shape, see module doc).

    Callers that can speak more than the baseline add the optional
    ``protocols`` / ``compression`` keys on top (the client does; a
    pre-negotiation server simply ignores them).
    """
    return {"op": "hello", "protocol": PROTOCOL_VERSION}


def negotiate_protocol(
    peer_protocols: Optional[Sequence[object]],
    supported: Sequence[int] = SUPPORTED_PROTOCOLS,
) -> int:
    """``max(common versions)`` between ``supported`` and a peer's hello.

    ``peer_protocols`` is the optional ``protocols`` list of the peer's
    hello (or hello response); a peer that omitted it speaks only the
    baseline.  ``supported`` defaults to everything this build speaks; a
    version-pinned server/client passes a truncated tuple.  The baseline
    is always shared — the mandatory ``protocol`` field was already
    checked — so the result is at least :data:`PROTOCOL_VERSION`.
    """
    if not peer_protocols:
        return PROTOCOL_VERSION
    offered = set()
    for version in peer_protocols:
        try:
            offered.add(int(version))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            continue
    common = offered & set(supported)
    common.add(PROTOCOL_VERSION)
    return max(common)


def check_hello_response(response: Dict[str, object]) -> Dict[str, object]:
    """Validate the server's handshake reply; raise on rejection.

    Accepts both a pre-negotiation reply (bare ``protocol``) and a
    negotiated one (``negotiated`` + ``compression``); the caller reads
    ``response.get("negotiated", 1)`` for the settled version.
    """
    if response.get("ok") and response.get("op") == "hello":
        if response.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolVersionError(
                f"server speaks protocol {response.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return response
    code = str(response.get("code", E_INTERNAL))
    message = str(response.get("error", "handshake rejected"))
    if code == E_BUSY:
        raise ServiceBusyError(message)
    if code == E_PROTOCOL:
        raise ProtocolVersionError(message)
    raise RemoteServiceError(message, code=code, response=response)
