"""Length-prefixed JSON framing — the wire format of the serving protocol.

A connection is a bidirectional stream of *frames*.  Each frame is a
4-byte big-endian unsigned length followed by that many bytes of UTF-8
JSON encoding one object::

    +----------------+-------------------------------+
    | length (>I, 4B)| payload (length bytes, JSON)  |
    +----------------+-------------------------------+

The payloads are exactly the request/response mappings of
:meth:`repro.service.QueryService.serve`, plus three transport-level ops:

``hello``
    The mandatory first frame of every connection (both directions).  The
    client sends ``{"op": "hello", "protocol": N}``; the server either
    acknowledges with its own version, mode and generation, or answers a
    :data:`E_PROTOCOL` error and closes.  A version bump is required for
    any change an older peer cannot ignore (new optional response fields
    do *not* bump it — mirroring the store's format-version policy).
``batch``
    ``{"op": "batch", "requests": [...]}`` — the server serves the whole
    list through one :meth:`QueryService.serve` call (worker-thread
    fan-out) and answers ``{"ok": true, "results": [...]}`` in order.
``goodbye``
    Graceful connection teardown: the server acknowledges, then closes.

Failure responses carry ``ok = false``, a human-readable ``error`` and a
machine-readable ``code`` (the ``E_*`` constants below), so clients can
distinguish "retry later" (:data:`E_BUSY`) from "fix the request"
(:data:`E_BAD_REQUEST`) from "talk to the writer" (:data:`E_READ_ONLY`).

Framing errors are symmetric: a reader that hits end-of-stream *inside* a
frame raises :class:`TruncatedFrameError`; a declared length above the
reader's ``max_frame_bytes`` raises :class:`FrameTooLargeError` before any
payload is read, so an adversarial or buggy peer cannot make the reader
allocate unbounded memory.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional

#: Bumped on any wire change an older peer cannot interpret.
PROTOCOL_VERSION = 1

#: 4-byte big-endian unsigned frame length.
LENGTH_PREFIX = struct.Struct(">I")

#: Default cap on a single frame (either direction).  Large enough for a
#: full metric map over hundreds of thousands of hyperedges, small enough
#: to bound what a misbehaving peer can make us buffer.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

# --------------------------------------------------------------------- #
# Error codes (the ``code`` field of failure responses)
# --------------------------------------------------------------------- #
E_PROTOCOL = "protocol_mismatch"  #: handshake version/shape not accepted
E_BAD_FRAME = "bad_frame"  #: unparseable or oversized frame
E_BAD_REQUEST = "bad_request"  #: well-formed frame, invalid request
E_READ_ONLY = "read_only"  #: write sent to a read-only replica server
E_BUSY = "busy"  #: connection limit reached — retry later
E_UNAVAILABLE = "unavailable"  #: server is shutting down / store error
E_STALE = "stale_generation"  #: replication op pinned a superseded generation
E_INTERNAL = "internal"  #: unexpected server-side failure


class TransportError(Exception):
    """Base error for the socket transport layer."""


class FrameError(TransportError):
    """A frame could not be encoded, decoded or transferred."""


class FrameTooLargeError(FrameError):
    """A frame's declared length exceeds the reader's ``max_frame_bytes``."""


class TruncatedFrameError(FrameError):
    """The stream ended (or the peer vanished) mid-frame."""


class ProtocolVersionError(TransportError):
    """The peers speak incompatible protocol versions."""


class ServiceBusyError(TransportError):
    """The server refused the connection: at its connection limit."""


class RemoteServiceError(TransportError):
    """The server answered a request with ``ok = false``.

    Attributes
    ----------
    code:
        The machine-readable ``E_*`` error code (``E_INTERNAL`` when the
        server did not supply one).
    response:
        The full response payload, for callers that need more context.
    """

    def __init__(
        self,
        message: str,
        code: str = E_INTERNAL,
        response: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.response = dict(response or {})


# --------------------------------------------------------------------- #
# Encoding / decoding
# --------------------------------------------------------------------- #
def encode_frame(payload: Dict[str, object], max_frame_bytes: int) -> bytes:
    """Serialise one payload to a length-prefixed frame."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return LENGTH_PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, object]:
    """Parse a frame body; every frame must encode one JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame must encode a JSON object, got {type(payload).__name__}"
        )
    return payload


def recv_exact(
    sock: socket.socket,
    num_bytes: int,
    at_boundary: bool,
    on_timeout=None,
) -> Optional[bytes]:
    """Read exactly ``num_bytes`` from a blocking socket.

    Returns ``None`` on a clean end-of-stream when ``at_boundary`` is true
    and no bytes of the frame were read yet; raises
    :class:`TruncatedFrameError` if the stream ends anywhere else.

    ``on_timeout`` makes a socket-timeout loop interruptible (the server's
    stop flag): called with ``partial`` (were any bytes of this read
    received yet?) after every timeout; return ``False`` to keep waiting,
    ``True`` to give up — which is a clean ``None`` at an idle frame
    boundary and a :class:`TruncatedFrameError` mid-frame.  Without it a
    timeout is treated like a lost connection.
    """
    buffer = bytearray()
    while len(buffer) < num_bytes:
        try:
            chunk = sock.recv(num_bytes - len(buffer))
        except socket.timeout as exc:
            if on_timeout is None:
                raise TruncatedFrameError(f"timed out mid-frame: {exc}") from exc
            if on_timeout(bool(buffer) or not at_boundary):
                if at_boundary and not buffer:
                    return None
                raise TruncatedFrameError("reader stopped while a frame was in flight")
            continue
        except (ConnectionError, OSError) as exc:
            raise TruncatedFrameError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            if at_boundary and not buffer:
                return None
            raise TruncatedFrameError(
                f"stream ended after {len(buffer)} of {num_bytes} expected bytes"
            )
        buffer.extend(chunk)
    return bytes(buffer)


def send_frame(
    sock: socket.socket,
    payload: Dict[str, object],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one frame."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    on_timeout=None,
) -> Optional[Dict[str, object]]:
    """Receive one frame; ``None`` on clean end-of-stream between frames.

    ``on_timeout`` is forwarded to :func:`recv_exact` (interruptible reads).
    """
    header = recv_exact(sock, LENGTH_PREFIX.size, at_boundary=True, on_timeout=on_timeout)
    if header is None:
        return None
    (length,) = LENGTH_PREFIX.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame; this side caps frames "
            f"at {max_frame_bytes} bytes"
        )
    if length:
        body = recv_exact(sock, length, at_boundary=False, on_timeout=on_timeout)
    else:
        body = b""
    return decode_payload(body)


# --------------------------------------------------------------------- #
# Handshake payloads
# --------------------------------------------------------------------- #
def hello_request() -> Dict[str, object]:
    """The client's mandatory first frame."""
    return {"op": "hello", "protocol": PROTOCOL_VERSION}


def check_hello_response(response: Dict[str, object]) -> Dict[str, object]:
    """Validate the server's handshake reply; raise on rejection."""
    if response.get("ok") and response.get("op") == "hello":
        if response.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolVersionError(
                f"server speaks protocol {response.get('protocol')}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return response
    code = str(response.get("code", E_INTERNAL))
    message = str(response.get("error", "handshake rejected"))
    if code == E_BUSY:
        raise ServiceBusyError(message)
    if code == E_PROTOCOL:
        raise ProtocolVersionError(message)
    raise RemoteServiceError(message, code=code, response=response)
