"""A blocking client for the socket serving protocol.

:class:`ServiceClient` speaks the wire protocol of
:mod:`repro.service.transport.framing` (see ``docs/PROTOCOL.md``) to a
:class:`~repro.service.transport.SocketServer`.  It owns one connection,
performs the version handshake on connect — negotiating the highest data
plane both ends support (JSON v1, or the binary v2 frames that carry
numpy column buffers and raw replication bytes, with an optional
compression codec) — and retries with a fixed interval while the server
is still coming up or is at its connection limit (``E_BUSY``
backpressure), so fleets of readers can start before — or survive
restarts of — their server.  The negotiated version is transparent to the
typed helpers: :meth:`~ServiceClient.metric` returns the same ``{edge_id:
value}`` mapping whether the wire carried a JSON object or int64/float64
columns.

Failure semantics
-----------------
*Queries* (``metric`` / ``components`` / ``sweep`` / ``stats`` / ``batch``
of queries) are idempotent: when the connection drops mid-call the client
transparently reconnects and retries once.  *Updates* are not retried:
``add``/``remove`` are sent with ``wait=True`` by default, so a normal
response **is** the durability acknowledgement (the server answers after
the admission queue's group commit fsyncs — see
:class:`repro.service.AdmissionQueue`).  If the connection dies between
sending an update and reading its response, the update's fate is unknown
(it may or may not have committed) and the client raises
:class:`~framing.TransportError` rather than guessing; callers decide
whether to re-send, exactly like any at-least-once ingestion path.

:class:`RemoteEngine` adapts a client to the tiny engine surface the
s-measure functions consume (``fingerprint()`` +
``metric_by_hyperedge(s, metric)``), so
``s_pagerank(h, s, engine=RemoteEngine(client))`` serves from a remote
store with the exact guard rails of the local engine path.
"""

from __future__ import annotations

import base64
import socket
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    E_STALE,
    IDEMPOTENT_OPS,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    SUPPORTED_PROTOCOLS,
    FrameError,
    ProtocolVersionError,
    RemoteServiceError,
    ServiceBusyError,
    TransportError,
    TruncatedFrameError,
    available_codecs,
    check_hello_response,
    hello_request,
    recv_frame,
    send_frame,
)
from repro.obs.trace import get_tracer
from repro.store.replication import ReplicationStaleError

#: Request ops the client may safely re-send after a reconnect — the wire
#: contract's partition (``framing.IDEMPOTENT_OPS``), not a private copy
#: that could drift into a double-apply bug.  The replication ops are
#: pure reads of pinned-generation state, so a mirror mid-sync survives a
#: server restart instead of aborting the sync.
_IDEMPOTENT_OPS = IDEMPOTENT_OPS


def _close_quietly(sock: Optional[socket.socket]) -> None:
    """Close a socket without letting the close itself raise.

    ``socket.close`` can fail with ``OSError`` (e.g. a pending ECONNRESET
    flushed at close time); surfacing that from an error-handling path
    would leak a raw ``OSError`` through the client's typed
    :class:`TransportError` contract.
    """
    if sock is None:
        return
    try:
        sock.close()
    except OSError:  # pragma: no cover - platform/timing dependent
        pass


def _is_idempotent(request: Dict[str, object]) -> bool:
    """Whether re-sending ``request`` after a connection drop is safe.

    A ``batch`` is only as idempotent as its contents: one ``add`` inside
    makes the whole frame non-retryable, otherwise a batch committed just
    before the connection died would be applied twice on the re-send.
    """
    op = request.get("op")
    if op == "batch":
        requests = request.get("requests")
        return isinstance(requests, list) and all(
            isinstance(r, dict) and r.get("op") in _IDEMPOTENT_OPS for r in requests
        )
    return op in _IDEMPOTENT_OPS


class ServiceClient:
    """One blocking connection to a serving socket, with retry/reconnect.

    Parameters
    ----------
    host / port:
        The server's bound address.
    timeout:
        Per-operation socket timeout in seconds (connect, send, receive).
    connect_retries / retry_interval:
        How often (and how patiently) to retry a refused or ``E_BUSY``
        connection before raising.  The total connect budget is roughly
        ``connect_retries * retry_interval`` plus network timeouts.
    reconnect:
        Transparently reconnect and retry **idempotent** requests once
        when the connection drops mid-call (see the module docstring).
    protocol_max:
        Highest protocol version to offer in the handshake.
        ``protocol_max=1`` pins the client to the JSON-only v1 data plane
        (it then sends the exact hello a pre-v2 client sends); the default
        offers everything this build implements and lets the server pick
        ``max(common)``.
    compression:
        Offer compression codecs (``zstd``/``zlib``, whichever are
        importable) for binary replication payloads.  ``False`` sends an
        empty codec list, so the connection negotiates compression off.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_retries: int = 40,
        retry_interval: float = 0.25,
        reconnect: bool = True,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        protocol_max: Optional[int] = None,
        compression: bool = True,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.connect_retries = int(connect_retries)
        self.retry_interval = float(retry_interval)
        self.reconnect = bool(reconnect)
        self.max_frame_bytes = int(max_frame_bytes)
        if protocol_max is None:
            protocol_max = max(SUPPORTED_PROTOCOLS)
        if int(protocol_max) < PROTOCOL_VERSION:
            raise ValueError(
                f"protocol_max must be >= {PROTOCOL_VERSION}, got {protocol_max!r}"
            )
        self._protocols = tuple(
            version for version in SUPPORTED_PROTOCOLS if version <= int(protocol_max)
        )
        self._offer_compression = bool(compression)
        self._protocol = PROTOCOL_VERSION
        self._codec: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._tracer = get_tracer()
        #: The server's handshake payload (mode, generation, protocol).
        self.server_info: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    @property
    def connected(self) -> bool:
        """Whether a live socket is currently held (not a health check)."""
        return self._sock is not None

    @property
    def protocol(self) -> int:
        """Protocol version negotiated on the live connection.

        :data:`~framing.PROTOCOL_VERSION` (1, the JSON data plane) until a
        handshake negotiates higher; reset per connection, so a reconnect
        to a downgraded server is reflected immediately.
        """
        return self._protocol

    @property
    def compression(self) -> Optional[str]:
        """Codec negotiated for binary replication payloads (or ``None``)."""
        return self._codec

    def connect(self) -> "ServiceClient":
        """Connect and handshake, retrying refused/busy attempts."""
        if self._sock is not None:
            return self
        last_error: Optional[Exception] = None
        for attempt in range(max(1, self.connect_retries)):
            if attempt:
                time.sleep(self.retry_interval)
            sock = None
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                hello = hello_request()
                if len(self._protocols) > 1:
                    # Additive extension keys only — a client pinned to v1
                    # sends the exact hello a pre-v2 build sends, and v1
                    # servers ignore unknown keys (docs/PROTOCOL.md).
                    hello["protocols"] = list(self._protocols)
                    hello["compression"] = (
                        list(available_codecs()) if self._offer_compression else []
                    )
                send_frame(sock, hello, self.max_frame_bytes)
                response = recv_frame(sock, self.max_frame_bytes)
                if response is None:
                    raise TruncatedFrameError("server closed during handshake")
                self.server_info = check_hello_response(response)
                try:
                    negotiated = int(response.get("negotiated", PROTOCOL_VERSION))
                except (TypeError, ValueError):
                    negotiated = PROTOCOL_VERSION
                # Clamp: never speak higher than we offered, whatever the
                # server claims.
                self._protocol = max(
                    PROTOCOL_VERSION, min(negotiated, max(self._protocols))
                )
                codec = response.get("compression")
                self._codec = (
                    str(codec)
                    if codec and self._protocol >= PROTOCOL_VERSION_BINARY
                    else None
                )
                self._sock = sock
                return self
            except (ProtocolVersionError, RemoteServiceError):
                _close_quietly(sock)
                raise  # retrying cannot fix a rejected handshake
            except (ServiceBusyError, FrameError, ConnectionError, OSError) as exc:
                _close_quietly(sock)
                last_error = exc
        raise TransportError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.connect_retries} attempts: {last_error}"
        ) from last_error

    def close(self) -> None:
        """Say goodbye (best-effort) and drop the connection."""
        sock, self._sock = self._sock, None
        self._protocol = PROTOCOL_VERSION
        self._codec = None
        if sock is None:
            return
        try:
            send_frame(sock, {"op": "goodbye"}, self.max_frame_bytes)
            recv_frame(sock, self.max_frame_bytes)
        except (FrameError, ConnectionError, OSError):
            pass
        finally:
            _close_quietly(sock)

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._protocol = PROTOCOL_VERSION
        self._codec = None
        _close_quietly(sock)

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self.connected else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"

    # ------------------------------------------------------------------ #
    # Request round trips
    # ------------------------------------------------------------------ #
    def call(self, request: Dict[str, object]) -> Dict[str, object]:
        """Send one request, return the raw response payload.

        Connection drops are retried once for idempotent ops when
        ``reconnect`` is enabled; server-side failures come back as
        ``ok = false`` payloads without raising (use :meth:`request` for
        the raising variant).

        When the calling thread is inside a *sampled* trace, the request
        is stamped with the wire context (``trace`` field) so the server
        joins the same trace; servers that predate tracing ignore the
        extra key.
        """
        op = str(request.get("op", ""))
        with self._tracer.start_span(f"client.{op or 'unknown'}") as span:
            if span.recording and "trace" not in request:
                ctx = self._tracer.wire_context()
                if ctx is not None:
                    request = dict(request)
                    request["trace"] = ctx
            return self._call(request)

    def _call(self, request: Dict[str, object]) -> Dict[str, object]:
        retryable = self.reconnect and _is_idempotent(request)
        try:
            return self._roundtrip(request)
        except (FrameError, ConnectionError, OSError) as exc:
            self._drop_connection()
            if not retryable:
                raise TransportError(
                    f"connection to {self.host}:{self.port} failed mid-request "
                    f"({exc}); op {request.get('op')!r} is not idempotent, so "
                    "its fate on the server is unknown"
                ) from exc
            try:
                self.connect()
            except TransportError:
                # Already typed: exhausted retries, or a handshake
                # rejection (ProtocolVersionError / RemoteServiceError)
                # that a retry cannot fix.
                raise
            except OSError as connect_exc:  # pragma: no cover - belt and braces
                self._drop_connection()
                raise TransportError(
                    f"reconnect to {self.host}:{self.port} failed: {connect_exc}"
                ) from connect_exc
            try:
                return self._roundtrip(request)
            except (FrameError, ConnectionError, OSError) as retry_exc:
                self._drop_connection()
                raise TransportError(
                    f"request to {self.host}:{self.port} failed again after "
                    f"a reconnect: {retry_exc}"
                ) from retry_exc

    def request(self, request: Dict[str, object]) -> Dict[str, object]:
        """Like :meth:`call`, but failures raise :class:`RemoteServiceError`."""
        response = self.call(request)
        if not response.get("ok"):
            raise RemoteServiceError(
                str(response.get("error", "request failed")),
                code=str(response.get("code", "internal")),
                response=response,
            )
        return response

    def _roundtrip(self, request: Dict[str, object]) -> Dict[str, object]:
        if self._sock is None:
            self.connect()
        send_frame(self._sock, dict(request), self.max_frame_bytes)
        response = recv_frame(self._sock, self.max_frame_bytes)
        if response is None:
            raise TruncatedFrameError("server closed the connection")
        return response

    # ------------------------------------------------------------------ #
    # Typed helpers (the QueryService.serve vocabulary)
    # ------------------------------------------------------------------ #
    def _use_columns(self) -> bool:
        """Whether to ask for columnar (binary-frame) query responses."""
        if self._sock is None:
            self.connect()
        return self._protocol >= PROTOCOL_VERSION_BINARY

    def metric(self, s: int, metric: str = "connected_components") -> Dict[int, float]:
        """Metric values keyed by original hyperedge ID.

        On a protocol v2 connection the response crosses the wire as
        parallel ``edge_ids``/``values`` numpy columns in a binary frame
        and is rebuilt into the same mapping here, so callers never see
        the difference.
        """
        request: Dict[str, object] = {"op": "metric", "s": int(s), "metric": str(metric)}
        if self._use_columns():
            request["columns"] = True
        response = self.request(request)
        if response.get("columns"):
            ids = response["edge_ids"]
            vals = response["values"]
            return dict(zip(ids.tolist(), vals.tolist()))
        return {int(k): float(v) for k, v in response["values"].items()}

    def components(self, s: int) -> int:
        """Number of s-connected components."""
        return int(self.request({"op": "components", "s": int(s)})["count"])

    def sweep(
        self,
        s_values: Optional[Iterable[int]] = None,
        s_min: int = 1,
        s_max: Optional[int] = None,
        metrics: Sequence[str] = (),
    ) -> Dict[str, Dict[int, int]]:
        """Batched multi-s sweep; counts keyed by integer s.

        Like :meth:`metric`, a v2 connection carries the counts as int64
        columns (``s_values``/``edge_counts``/``active_counts``) and the
        mapping shape is rebuilt here.
        """
        request: Dict[str, object] = {"op": "sweep", "metrics": list(metrics)}
        if s_values is not None:
            request["s_values"] = [int(s) for s in s_values]
        else:
            if s_max is None:
                raise ValueError("sweep needs s_values or s_max")
            request.update(s_min=int(s_min), s_max=int(s_max))
        if self._use_columns():
            request["columns"] = True
        response = self.request(request)
        if response.get("columns"):
            svals = response["s_values"].tolist()
            return {
                "edge_counts": dict(zip(svals, response["edge_counts"].tolist())),
                "active_counts": dict(zip(svals, response["active_counts"].tolist())),
            }
        return {
            "edge_counts": {int(s): int(n) for s, n in response["edge_counts"].items()},
            "active_counts": {
                int(s): int(n) for s, n in response["active_counts"].items()
            },
        }

    def batch(self, requests: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        """Serve many requests in one round trip (server-side fan-out)."""
        response = self.request({"op": "batch", "requests": list(requests)})
        return list(response["results"])

    def add(
        self,
        members: Iterable[int],
        name: Optional[object] = None,
        wait: bool = True,
    ) -> Optional[int]:
        """Submit a hyperedge add; with ``wait`` (default) the returned
        edge ID doubles as the durability acknowledgement."""
        request: Dict[str, object] = {
            "op": "add",
            "members": [int(v) for v in members],
            "wait": bool(wait),
        }
        if name is not None:
            request["name"] = name
        response = self.request(request)
        return int(response["edge_id"]) if wait else None

    def remove(self, edge_id: int, wait: bool = True) -> bool:
        """Submit a hyperedge remove; with ``wait`` the response is the ack."""
        response = self.request(
            {"op": "remove", "edge_id": int(edge_id), "wait": bool(wait)}
        )
        return bool(response.get("removed", response.get("queued")))

    def flush(self) -> None:
        """Block until every previously submitted update is durable."""
        self.request({"op": "flush"})

    def compact(self) -> int:
        """Fold the WAL into a new snapshot; returns the new generation."""
        return int(self.request({"op": "compact"})["generation"])

    def stats(self) -> Dict[str, object]:
        """The server's :meth:`QueryService.stats` payload."""
        return dict(self.request({"op": "stats"})["stats"])

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return str(self.request({"op": "metrics"})["text"])

    def traces(
        self, trace_id: Optional[str] = None, limit: int = 20
    ) -> List[Dict[str, object]]:
        """Finished traces from the server's ring, oldest first.

        ``trace_id`` filters to one trace (e.g. from a slow-query ring
        entry); ``limit`` keeps the newest N after filtering.
        """
        request: Dict[str, object] = {"op": "trace", "limit": int(limit)}
        if trace_id is not None:
            request["trace_id"] = str(trace_id)
        return list(self.request(request)["traces"])

    def generation(self) -> int:
        """Snapshot generation currently served by the peer."""
        return int(self.stats()["generation"])

    def fingerprint(self) -> str:
        """Fingerprint of the hypergraph currently served by the peer."""
        return str(self.stats()["fingerprint"])

    def state_token(self) -> Optional[tuple]:
        """The peer store's ``(generation, WAL bytes)`` change token."""
        token = self.stats().get("state_token")
        return None if token is None else tuple(int(v) for v in token)

    # ------------------------------------------------------------------ #
    # Replication (the StoreMirror source interface — see
    # repro.store.replication; a connected client IS a ReplicationSource)
    # ------------------------------------------------------------------ #
    def _repl_request(self, request: Dict[str, object]) -> Dict[str, object]:
        try:
            return self.request(request)
        except RemoteServiceError as exc:
            if exc.code == E_STALE:
                # Typed for the mirror: restart the sync from a fresh
                # manifest instead of treating this as a server fault.
                raise ReplicationStaleError(str(exc)) from exc
            raise

    def repl_manifest(self) -> Dict[str, object]:
        """The peer's live manifest text plus per-file checksums."""
        return dict(self._repl_request({"op": "repl_manifest"}))

    def repl_wal(self, generation: int, after_seq: int) -> Dict[str, object]:
        """Legacy WAL tail: decoded records after a ``(generation, seq)`` cursor."""
        return dict(
            self._repl_request(
                {
                    "op": "repl_wal",
                    "generation": int(generation),
                    "after_seq": int(after_seq),
                }
            )
        )

    def repl_wal_suffix(
        self, generation: int, after_bytes: int, next_seq: int
    ) -> Optional[Dict[str, object]]:
        """Raw WAL suffix after a ``(generation, byte_offset)`` cursor.

        The :class:`~repro.store.replication.StoreMirror` fast path:
        ``data`` is the source log's on-disk bytes after ``after_bytes``
        (validated from sequence ``next_seq``), ridden raw over a binary
        frame, plus the advanced cursor (``count``/``next_seq``/
        ``end_offset``) or ``rebase=True`` when the source log shrank
        under the cursor.  Returns ``None`` when the connection negotiated
        a protocol below 2 — an older server would ignore the cursor
        fields and answer the legacy shape — so the mirror falls back to
        :meth:`repl_wal`.
        """
        if self._sock is None:
            self.connect()
        if self._protocol < PROTOCOL_VERSION_BINARY:
            return None
        response = dict(
            self._repl_request(
                {
                    "op": "repl_wal",
                    "generation": int(generation),
                    "after_bytes": int(after_bytes),
                    "next_seq": int(next_seq),
                    "raw": True,
                }
            )
        )
        if "data" not in response and not response.get("rebase"):
            return None  # unexpected legacy shape: use the fallback path
        data = response.get("data", b"")
        if isinstance(data, str):
            data = base64.b64decode(data)
        if not isinstance(data, (bytes, bytearray)):
            data = bytes(data)
        response["data"] = bytes(data)
        return response

    def repl_fetch(
        self, name: str, generation: int, offset: int, length: int
    ) -> Dict[str, object]:
        """One chunk of one snapshot file, as bytes.

        On a protocol v2 connection the chunk rides a binary frame raw
        (optionally compressed per the negotiated codec, decompressed by
        the framing layer); on v1 it arrives base64-in-JSON and is decoded
        here.  Either way ``response["data"]`` is ``bytes``.
        """
        request: Dict[str, object] = {
            "op": "repl_fetch",
            "file": str(name),
            "generation": int(generation),
            "offset": int(offset),
            "length": int(length),
        }
        if self._use_columns():
            request["raw"] = True
        response = dict(self._repl_request(request))
        data = response.get("data", b"")
        if isinstance(data, str):
            data = base64.b64decode(data)
        response["data"] = bytes(data)
        return response


class RemoteEngine:
    """Adapt a :class:`ServiceClient` to the s-measure ``engine=`` surface.

    The smetrics functions need exactly two methods —
    :meth:`fingerprint` (guard rail: same hypergraph?) and
    :meth:`metric_by_hyperedge` — so any of them can be served over the
    wire without changing their call sites::

        client = ServiceClient(host, port).connect()
        scores = s_pagerank(h, s=2, engine=RemoteEngine(client))

    The fingerprint is fetched per call (one ``stats`` round trip), so the
    guard tracks the *served* state across remote updates and compactions
    rather than a snapshot taken at construction.
    """

    def __init__(self, client: ServiceClient) -> None:
        self.client = client

    def fingerprint(self) -> str:
        """The served store's hypergraph fingerprint (one stats round trip)."""
        return self.client.fingerprint()

    def metric_by_hyperedge(self, s: int, metric: str) -> Dict[int, float]:
        """Serve ``metric`` at threshold ``s`` as ``{edge_id: value}``."""
        return self.client.metric(s, metric)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteEngine({self.client!r})"
