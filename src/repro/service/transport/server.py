"""A threaded socket server fronting one :class:`QueryService`.

:class:`SocketServer` puts the wire protocol of
:mod:`repro.service.transport.framing` in front of an existing
:class:`~repro.service.QueryService` — writer or read-only replica alike —
so clients on other machines reach the same batched, read-locked serving
path local callers use.  One thread accepts connections; each connection
gets a handler thread that performs the version handshake — negotiating a
per-connection data plane (JSON v1, or the binary v2 frames of
``docs/PROTOCOL.md`` with an optional compression codec) — and then serves
frames in order, so a client may *pipeline* (send several requests before
reading the first response) and still match responses to requests by
position.  ``batch`` frames additionally fan out over the service's worker
threads, turning one round trip into a parallel serve.

Backpressure is explicit: past ``max_connections`` concurrently served
connections, new ones are answered with an :data:`~framing.E_BUSY` error
frame and closed instead of being queued invisibly — clients retry with
backoff (:class:`~repro.service.transport.client.ServiceClient` does so
automatically).

Shutdown is graceful: :meth:`close` stops the accept loop, lets in-flight
requests finish (handlers notice the stop flag between frames; a frame
already half-read gets a short grace period), and joins every handler
before returning, so a CLI ``serve --listen`` process releases its store
lock deterministically on SIGTERM.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.failpoints import fire as _failpoint
from repro.obs import get_registry, get_tracer
from repro.service.service import QueryService
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    E_BAD_FRAME,
    E_BAD_REQUEST,
    E_BUSY,
    E_INTERNAL,
    E_PROTOCOL,
    E_READ_ONLY,
    E_STALE,
    E_UNAVAILABLE,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    SUPPORTED_PROTOCOLS,
    FrameError,
    FrameTooLargeError,
    TruncatedFrameError,
    encode_binary_frame,
    encode_frame,
    negotiate_codec,
    negotiate_protocol,
    payload_has_sections,
    recv_frame,
)

#: Seconds a handler blocked in ``recv`` waits before re-checking the stop
#: flag (bounds shutdown latency; no effect on throughput).
_POLL_INTERVAL = 0.2

#: Seconds a closing handler keeps waiting for the rest of a frame whose
#: first bytes already arrived, before abandoning the connection.
_SHUTDOWN_GRACE = 1.0

#: Per-response send deadline.  The socket's 0.2s poll timeout is right
#: for receives (bounds shutdown latency) but would abort any ``sendall``
#: whose frame outlives the kernel send buffer — a large metric map, or a
#: pipelining client that has not started reading yet — so sends get their
#: own, much larger budget before the connection is declared dead.
_SEND_TIMEOUT = 60.0

#: Error codes for the exception type names reported by
#: :meth:`QueryService.execute` (anything unlisted is ``internal``).
_ERROR_CODE_BY_TYPE = {
    "ValidationError": E_BAD_REQUEST,
    "ReadOnlyStoreError": E_READ_ONLY,
    "StoreError": E_UNAVAILABLE,
    "StoreFormatError": E_UNAVAILABLE,
    "FingerprintMismatchError": E_UNAVAILABLE,
    "ReplicationError": E_UNAVAILABLE,
    "ReplicationStaleError": E_STALE,
    "KeyError": E_BAD_REQUEST,
    "TypeError": E_BAD_REQUEST,
    "ValueError": E_BAD_REQUEST,
}

#: Ops handled by the transport itself rather than the service.
_TRANSPORT_OPS = frozenset({"hello", "goodbye", "batch"})

#: The op vocabulary the per-op latency histogram is labelled with.  A
#: bounded set keeps label cardinality fixed no matter what clients send;
#: anything else is folded into ``other``.
_METRIC_OPS = (
    "metric",
    "components",
    "sweep",
    "add",
    "remove",
    "flush",
    "compact",
    "stats",
    "metrics",
    "trace",
    "repl_manifest",
    "repl_wal",
    "repl_fetch",
    "chaos",
    "batch",
    "other",
)


@dataclass
class ServerStats:
    """Counters describing a server's lifetime (observability / tests)."""

    connections_accepted: int = 0
    connections_rejected: int = 0
    requests_served: int = 0
    frames_rejected: int = 0
    active_connections: int = 0


def classify_error(response: Dict[str, object]) -> Dict[str, object]:
    """Attach a transport error ``code`` to a failed service response."""
    if response.get("ok") or "code" in response:
        return response
    error = str(response.get("error", ""))
    type_name = error.split(":", 1)[0]
    response["code"] = _ERROR_CODE_BY_TYPE.get(type_name, E_INTERNAL)
    return response


def _request_needs_v2(request: Dict[str, object]) -> bool:
    """Whether a request asks for a response only binary frames can carry.

    ``columns`` responses hold numpy buffers and ``raw`` replication
    payloads hold undecoded bytes; neither survives JSON encoding, so a
    v1 connection must get a typed ``bad_request`` instead of a server
    that dies trying to serialise the answer.
    """
    if request.get("columns") or request.get("raw"):
        return True
    if request.get("op") == "batch":
        requests = request.get("requests")
        if isinstance(requests, list):
            return any(
                isinstance(sub, dict) and (sub.get("columns") or sub.get("raw"))
                for sub in requests
            )
    return False


class SocketServer:
    """Serve a :class:`QueryService` over length-prefixed JSON frames.

    Parameters
    ----------
    service:
        The (already constructed) service to front — writer or read-only.
        The server never closes it; the owner does.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; read it back
        from :attr:`port` / :attr:`address` after construction.
    max_connections:
        Concurrently served connections before new ones are turned away
        with an ``E_BUSY`` error frame (the backpressure contract).
    max_frame_bytes:
        Per-frame cap, both directions (see the framing module).
    protocol_max:
        Highest protocol version this server will negotiate (default: the
        newest it implements).  ``protocol_max=1`` pins the server to the
        JSON-only v1 data plane — the operator's big red lever while a
        mixed-version fleet rolls out (see ``docs/PROTOCOL.md``).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 32,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        backlog: int = 32,
        protocol_max: Optional[int] = None,
    ) -> None:
        self.service = service
        self.max_connections = int(max_connections)
        self.max_frame_bytes = int(max_frame_bytes)
        if protocol_max is None:
            protocol_max = max(SUPPORTED_PROTOCOLS)
        if int(protocol_max) < PROTOCOL_VERSION:
            raise ValueError(
                f"protocol_max must be >= {PROTOCOL_VERSION}, got {protocol_max!r}"
            )
        self._protocols: Tuple[int, ...] = tuple(
            version for version in SUPPORTED_PROTOCOLS if version <= int(protocol_max)
        )
        #: conn_id -> (negotiated protocol, negotiated codec) for live
        #: connections; feeds the ``stats()["transport"]`` enrichment.
        self._conn_protocols: Dict[int, Tuple[int, Optional[str]]] = {}
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        self.stats = ServerStats()
        self._handlers_lock = threading.Lock()
        self._handlers: Dict[int, threading.Thread] = {}
        self._conn_counter = 0
        self._tracer = get_tracer()
        registry = get_registry()
        latency = registry.histogram(
            "repro_request_seconds",
            "Wall time serving one request frame, by op.",
            ("op",),
        )
        # Children are bound once here so the per-request cost is a single
        # striped observe — and the label set stays bounded (see _METRIC_OPS).
        self._m_latency = {op: latency.labels(op=op) for op in _METRIC_OPS}
        self._m_inflight = registry.gauge(
            "repro_inflight_requests", "Request frames currently being served."
        )
        self._m_errors = registry.counter(
            "repro_request_errors_total",
            "Failed responses, by op and transport error code.",
            ("op", "code"),
        )
        self._accept_thread: Optional[threading.Thread] = None
        self._listener = socket.create_server((host, int(port)), backlog=backlog)
        self._listener.settimeout(_POLL_INTERVAL)
        self.host, self.port = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        return self.host, self.port

    def start(self) -> "SocketServer":
        """Start the accept loop in a daemon thread and return ``self``."""
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        if self._stop.is_set():
            raise RuntimeError("server already closed")
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-serve-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests, join every handler."""
        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        deadline = time.monotonic() + timeout
        with self._handlers_lock:
            handlers = list(self._handlers.values())
        for thread in handlers:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))

    def __enter__(self) -> "SocketServer":
        return self.start() if self._accept_thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._stop.is_set() else "serving"
        return f"SocketServer({self.host}:{self.port}, {state})"

    # ------------------------------------------------------------------ #
    # Accept loop
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by close()
            if self._stop.is_set():
                conn.close()
                break
            with self._handlers_lock:
                active = len(self._handlers)
                if active >= self.max_connections:
                    handler = None
                else:
                    self._conn_counter += 1
                    conn_id = self._conn_counter
                    handler = threading.Thread(
                        target=self._handle_connection,
                        args=(conn, conn_id),
                        name=f"repro-conn-{conn_id}",
                        daemon=True,
                    )
                    self._handlers[conn_id] = handler
            if handler is None:
                self._reject_busy(conn, active)
                continue
            with self._stats_lock:
                self.stats.connections_accepted += 1
                self.stats.active_connections += 1
            handler.start()

    def _reject_busy(self, conn: socket.socket, active: int) -> None:
        """Turn a connection away with an explicit backpressure signal."""
        with self._stats_lock:
            self.stats.connections_rejected += 1
        self._send_best_effort(
            conn,
            {
                "ok": False,
                "code": E_BUSY,
                "error": (
                    f"server at connection limit ({active}/"
                    f"{self.max_connections}); retry later"
                ),
            },
        )
        conn.close()

    # ------------------------------------------------------------------ #
    # Per-connection handling
    # ------------------------------------------------------------------ #
    def _handle_connection(self, conn: socket.socket, conn_id: int) -> None:
        try:
            conn.settimeout(_POLL_INTERVAL)
            negotiated = self._handshake(conn)
            if negotiated is not None:
                proto, codec = negotiated
                with self._handlers_lock:
                    self._conn_protocols[conn_id] = (proto, codec)
                self._serve_frames(conn, proto, codec)
        except (FrameError, ConnectionError, OSError):
            pass  # connection-level failure: drop this client only
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            with self._handlers_lock:
                self._handlers.pop(conn_id, None)
                self._conn_protocols.pop(conn_id, None)
            with self._stats_lock:
                self.stats.active_connections -= 1

    def _handshake(self, conn: socket.socket) -> Optional[Tuple[int, Optional[str]]]:
        """Require a matching ``hello`` as the first frame; ack or reject.

        Returns the negotiated ``(protocol, codec)`` for the connection, or
        ``None`` when the hello was rejected.  The baseline ``protocol``
        field must equal :data:`PROTOCOL_VERSION` exactly (v1 semantics,
        frozen forever); newer data planes are offered through the
        *additive* ``protocols``/``compression`` lists, which v1 peers
        never send and never read — see ``docs/PROTOCOL.md``.
        """
        try:
            request = self._read_frame(conn)
        except TruncatedFrameError:
            return None  # peer vanished mid-handshake; nothing to answer
        except FrameError as exc:
            # Oversized or unparseable hello: answer like any later bad
            # frame, so the peer can tell "my frame was bad" from "the
            # server died".
            self._reject_frame(conn, str(exc))
            return None
        if request is None:
            return None
        if request.get("op") != "hello":
            self._send_best_effort(
                conn,
                {
                    "ok": False,
                    "code": E_PROTOCOL,
                    "error": "first frame must be {'op': 'hello', 'protocol': N}",
                },
            )
            return None
        if request.get("protocol") != PROTOCOL_VERSION:
            self._send_best_effort(
                conn,
                {
                    "ok": False,
                    "code": E_PROTOCOL,
                    "error": (
                        f"client speaks protocol {request.get('protocol')!r}, "
                        f"server speaks {PROTOCOL_VERSION}"
                    ),
                    "protocol": PROTOCOL_VERSION,
                },
            )
            return None
        offered = request.get("protocols")
        if not isinstance(offered, (list, tuple)):
            offered = None
        proto = negotiate_protocol(offered, self._protocols)
        codec: Optional[str] = None
        if proto >= PROTOCOL_VERSION_BINARY:
            peer_codecs = request.get("compression")
            if isinstance(peer_codecs, (list, tuple)):
                codec = negotiate_codec(peer_codecs)
        self._send(
            conn,
            {
                "ok": True,
                "op": "hello",
                "protocol": PROTOCOL_VERSION,
                "protocols": list(self._protocols),
                "negotiated": proto,
                "compression": codec,
                "server": "repro",
                "read_only": self.service.read_only,
                "generation": self.service.generation,
            },
        )
        return proto, codec

    def _serve_frames(
        self, conn: socket.socket, proto: int = PROTOCOL_VERSION, codec: Optional[str] = None
    ) -> None:
        """Answer frames in order until EOF, ``goodbye`` or shutdown."""
        while not self._stop.is_set():
            try:
                request = self._read_frame(conn)
            except TruncatedFrameError:
                return  # peer vanished mid-frame; nothing to answer
            except FrameError as exc:
                self._reject_frame(conn, str(exc))
                return
            if request is None:
                return
            op = str(request.get("op", ""))
            if op == "goodbye":
                self._send_best_effort(conn, {"ok": True, "op": "goodbye"})
                return
            latency = self._m_latency.get(op, self._m_latency["other"])
            self._m_inflight.inc()
            start = time.perf_counter()
            try:
                # The server span is the sampling point of every trace (or
                # joins the caller's via the optional `trace` field, which
                # pre-tracing clients simply never send).
                with self._tracer.start_request(
                    f"server.{op or 'unknown'}",
                    remote=request.get("trace"),
                    attributes={"op": op},
                ) as span:
                    if proto < PROTOCOL_VERSION_BINARY and _request_needs_v2(request):
                        response = {
                            "ok": False,
                            "op": op,
                            "code": E_BAD_REQUEST,
                            "error": (
                                "'columns'/'raw' responses need a binary data "
                                f"plane; this connection negotiated protocol {proto}"
                            ),
                        }
                    elif op == "batch":
                        response = self._serve_batch(request)
                    else:
                        response = classify_error(self.service.execute(request))
                        if op == "stats" and response.get("ok"):
                            stats_obj = response.get("stats")
                            if isinstance(stats_obj, dict):
                                stats_obj["transport"] = self._transport_stats(
                                    proto, codec
                                )
                    if not response.get("ok"):
                        span.set_status(
                            "error", str(response.get("code", E_INTERNAL))
                        )
            finally:
                latency.observe(time.perf_counter() - start)
                self._m_inflight.dec()
            if not response.get("ok"):
                self._m_errors.labels(
                    op=op if op in self._m_latency else "other",
                    code=str(response.get("code", E_INTERNAL)),
                ).inc()
            with self._stats_lock:
                self.stats.requests_served += 1
            try:
                self._send(conn, response, proto=proto, codec=codec)
            except FrameTooLargeError as exc:
                # The *response* blew the frame cap (e.g. a metric map over
                # a huge store).  Answer with a small error frame instead of
                # dropping the connection — pairing is preserved, the client
                # learns why, and an idempotent retry of the same doomed
                # query is avoided.
                self._send(
                    conn,
                    {
                        "ok": False,
                        "op": str(request.get("op", "")),
                        "code": E_BAD_FRAME,
                        "error": f"response exceeds the frame cap: {exc}",
                    },
                )
        # Shutting down: drain frames the client already pipelined with a
        # typed `unavailable` answer each, then end the stream.  Every
        # response pairs with a frame the peer actually sent, so pipelining
        # stays aligned — but the peer learns *why* instead of reading a
        # bare EOF, and can route the retry to another replica.
        self._drain_on_shutdown(conn)

    def _drain_on_shutdown(self, conn: socket.socket) -> None:
        """Answer already-pipelined frames with ``E_UNAVAILABLE``, bounded.

        The drain budget is one :data:`_SHUTDOWN_GRACE` window for the
        whole connection, so a peer that keeps streaming cannot hold its
        handler past :meth:`close`'s join deadline.
        """
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        while time.monotonic() < deadline:
            try:
                request = self._read_frame(conn)
            except FrameError:
                return
            if request is None:
                return
            op = str(request.get("op", ""))
            if op == "goodbye":
                self._send_best_effort(conn, {"ok": True, "op": "goodbye"})
                return
            self._send_best_effort(
                conn,
                {
                    "ok": False,
                    "op": op,
                    "code": E_UNAVAILABLE,
                    "error": "server is shutting down; retry against another replica",
                },
            )

    def _serve_batch(self, request: Dict[str, object]) -> Dict[str, object]:
        requests = request.get("requests")
        if not isinstance(requests, list) or not all(
            isinstance(r, dict) for r in requests
        ):
            return {
                "ok": False,
                "op": "batch",
                "code": E_BAD_REQUEST,
                "error": "'batch' needs a 'requests' list of objects",
            }
        if any(r.get("op") in _TRANSPORT_OPS for r in requests):
            return {
                "ok": False,
                "op": "batch",
                "code": E_BAD_REQUEST,
                "error": "transport ops cannot be nested inside a batch",
            }
        results: List[Dict[str, object]] = [
            classify_error(r) for r in self.service.serve(requests)
        ]
        return {"ok": True, "op": "batch", "results": results}

    # ------------------------------------------------------------------ #
    # Frame I/O (stop-flag aware)
    # ------------------------------------------------------------------ #
    def _read_frame(self, conn: socket.socket) -> Optional[Dict[str, object]]:
        """:func:`framing.recv_frame` with the stop flag wired in.

        Returns ``None`` on clean EOF or when shutdown arrives between
        frames; mid-frame shutdown grants :data:`_SHUTDOWN_GRACE` seconds
        for the rest of the frame before giving up on the connection.
        """
        grace_deadline: Optional[float] = None

        def on_timeout(mid_frame: bool) -> bool:
            """Decide, per poll tick, whether the read should give up."""
            nonlocal grace_deadline
            if not self._stop.is_set():
                return False  # plain poll tick: keep waiting
            if not mid_frame:
                return True  # idle at a frame boundary: stop cleanly
            if grace_deadline is None:
                grace_deadline = time.monotonic() + _SHUTDOWN_GRACE
            return time.monotonic() > grace_deadline

        request = recv_frame(conn, self.max_frame_bytes, on_timeout=on_timeout)
        if request is not None:
            # Chaos: a fault here models a receive-side failure after the
            # frame arrived — `drop` abandons the client like a real reset.
            _failpoint("transport.recv")
        return request

    def _reject_frame(self, conn: socket.socket, message: str) -> None:
        with self._stats_lock:
            self.stats.frames_rejected += 1
        self._send_best_effort(
            conn, {"ok": False, "code": E_BAD_FRAME, "error": message}
        )

    def _transport_stats(
        self, proto: int, codec: Optional[str]
    ) -> Dict[str, object]:
        """Per-connection protocol mix for ``stats()["transport"]``.

        ``negotiated``/``compression`` describe the asking connection;
        ``by_protocol`` counts every live connection so operators can see
        which peers are still on the v1 JSON data plane.
        """
        by_protocol: Dict[str, int] = {}
        with self._handlers_lock:
            for conn_proto, _ in self._conn_protocols.values():
                key = str(conn_proto)
                by_protocol[key] = by_protocol.get(key, 0) + 1
        return {
            "supported": list(self._protocols),
            "negotiated": proto,
            "compression": codec,
            "connections": {
                "active": sum(by_protocol.values()),
                "by_protocol": by_protocol,
            },
        }

    def _send(
        self,
        conn: socket.socket,
        payload: Dict[str, object],
        proto: int = PROTOCOL_VERSION,
        codec: Optional[str] = None,
    ) -> None:
        # Chaos: fired before the frame hits the wire, so a `drop` models a
        # response lost in transit — the request WAS executed (an acked
        # update is durable even though the client never saw the ack).
        _failpoint("transport.send")
        if proto >= PROTOCOL_VERSION_BINARY and payload_has_sections(payload):
            frame = encode_binary_frame(payload, self.max_frame_bytes, codec=codec)
        else:
            frame = encode_frame(payload, self.max_frame_bytes)
        conn.settimeout(_SEND_TIMEOUT)
        try:
            conn.sendall(frame)
        finally:
            conn.settimeout(_POLL_INTERVAL)

    def _send_best_effort(self, conn: socket.socket, payload: Dict[str, object]) -> None:
        try:
            self._send(conn, payload)
        except (FrameError, ConnectionError, OSError):
            pass
