"""Network transport: the serving layer's wire protocol, server and client.

PR 3 made one store serveable by many processes on one machine; this
package puts a socket in front of it so the clients can live anywhere:

* :mod:`repro.service.transport.framing` — the wire codec of
  ``docs/PROTOCOL.md``: length-prefixed JSON frames (v1), binary frames
  carrying numpy columns / raw replication bytes with optional
  compression (v2), request/response envelopes with machine-readable
  error codes, and the version-negotiating handshake;
* :class:`SocketServer` — a threaded server fronting one
  :class:`~repro.service.QueryService` (writer or read replica): version
  handshake, per-connection pipelining, ``batch`` fan-out over the
  service's worker threads, explicit ``busy`` backpressure past the
  connection limit, graceful drain-then-close shutdown;
* :class:`ServiceClient` — a blocking client with connect/retry, batched
  query submission and durability-ack-aware update calls;
* :class:`RemoteEngine` — adapts a client to the ``engine=`` parameter of
  the s-measure functions, so smetrics endpoints serve from a remote
  store unchanged.
"""

from repro.service.transport.client import RemoteEngine, ServiceClient
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    SUPPORTED_PROTOCOLS,
    FrameError,
    FrameTooLargeError,
    ProtocolVersionError,
    RemoteServiceError,
    ServiceBusyError,
    TransportError,
    TruncatedFrameError,
    available_codecs,
)
from repro.service.transport.server import ServerStats, SocketServer

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_BINARY",
    "SUPPORTED_PROTOCOLS",
    "FrameError",
    "FrameTooLargeError",
    "ProtocolVersionError",
    "RemoteEngine",
    "RemoteServiceError",
    "ServerStats",
    "ServiceBusyError",
    "ServiceClient",
    "SocketServer",
    "TransportError",
    "TruncatedFrameError",
    "available_codecs",
]
