"""Remote read replicas: serve a store that lives on another machine.

:class:`RemoteReadReplica` closes the loop the replication ops opened: it
bootstraps a local mirror of a remote store **over the socket protocol
alone** (no shared filesystem) and keeps serving from it exactly like a
local :class:`~repro.service.ReadReplica` — because it *contains* one.

The moving parts:

* a :class:`~repro.service.transport.client.ServiceClient` connected to
  any serving peer (the writer's socket server, or another replica's);
* a :class:`~repro.store.StoreMirror` that materialises/refreshes the
  local store directory from the peer's ``repl_manifest`` /
  ``repl_fetch`` / ``repl_wal`` ops — full fetch once, then delta syncs
  (WAL tails between compactions, changed-shards-only after one).  On a
  protocol v2 connection the tails use the byte-offset cursor (raw log
  suffix per poll) and file chunks ride binary frames raw instead of
  base64 — the mirror code is identical either way;
* a :class:`~repro.service.ReadReplica` over the mirror directory, whose
  existing change-token polling notices every completed sync and
  hot-swaps engines without dropping in-flight queries.

Staleness is detected by polling the *peer's* ``state_token`` through one
``stats`` round trip (cheap; no checksum work on either side) and only
then pulling a sync.  Transient failures — the peer restarting, a
compaction racing the sync — leave the replica serving its last good
local state, the same degraded-but-available contract ``ReadReplica``
has on a shared filesystem.

The mirror directory is guarded with the store's single-writer
:class:`~repro.service.StoreLock`: the syncing replica is the directory's
writer; any number of *additional* local read-only services may serve
from the same mirror.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.engine.engine import SweepResult
from repro.obs.trace import get_tracer
from repro.parallel.executor import ParallelConfig
from repro.service.lock import StoreLock
from repro.service.replica import ReadReplica
from repro.service.transport.client import ServiceClient
from repro.service.transport.framing import TransportError
from repro.store.format import PathLike, StoreError
from repro.store.replication import ReplicationError, StoreMirror, SyncReport

#: Seconds before the next remote poll after one *failed* (peer down,
#: racing compaction).  Without this, a ``poll_interval=0`` replica would
#: pay the client's full connect-retry budget on every query of an
#: outage instead of serving the local mirror immediately.
_FAILED_POLL_BACKOFF = 1.0


class RemoteReadReplica:
    """A hot-reloading read replica fed purely over the wire.

    Parameters
    ----------
    host / port:
        Address of a serving peer (``serve --listen`` writer or replica).
    store_path:
        Local directory for the mirror (created and locked as its writer).
    poll_interval:
        Minimum seconds between remote staleness checks; ``0`` (default)
        checks before every query.  Between checks, queries are served
        from the local mirror without any network traffic.
    client:
        An already-connected :class:`ServiceClient` to reuse (the replica
        then does not close it); by default one is created and owned.
        ``protocol_max`` / ``compression`` only apply to the owned client.
    sharded / max_resident_shards / cache_size / config:
        Forwarded to the inner :class:`ReadReplica`.
    protocol_max / compression:
        Handshake pins for the owned client: ``protocol_max=1`` keeps the
        peer connection on the JSON-only v1 data plane,
        ``compression=False`` negotiates the replication codec off (see
        ``docs/PROTOCOL.md``).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        store_path: PathLike = None,
        poll_interval: float = 0.0,
        client: Optional[ServiceClient] = None,
        sharded: bool = True,
        max_resident_shards: Optional[int] = None,
        cache_size: int = 256,
        config: Optional[ParallelConfig] = None,
        chunk_bytes: Optional[int] = None,
        protocol_max: Optional[int] = None,
        compression: bool = True,
    ) -> None:
        if store_path is None:
            raise StoreError("RemoteReadReplica needs a local store_path to mirror into")
        if client is None:
            if host is None or port is None:
                raise StoreError("RemoteReadReplica needs host/port or a client")
            client = ServiceClient(
                str(host),
                int(port),
                protocol_max=protocol_max,
                compression=compression,
            ).connect()
            self._owns_client = True
        else:
            self._owns_client = False
        self._client = client
        self._poll_interval = float(poll_interval)
        self._sync_lock = threading.Lock()
        self._closed = False
        self._lock: Optional[StoreLock] = None
        self._tracer = get_tracer()
        #: Why the most recent sync attempt failed (None: it succeeded).
        self._last_sync_error: Optional[str] = None
        try:
            mirror_kwargs = (
                {} if chunk_bytes is None else {"chunk_bytes": int(chunk_bytes)}
            )
            self.mirror = StoreMirror(client, store_path, **mirror_kwargs)
            self._lock = StoreLock(store_path, owner="RemoteReadReplica").acquire(
                blocking=False
            )
            self._remote_token = self._peer_token()
            self.mirror.sync()
            self._replica = ReadReplica(
                store_path,
                sharded=sharded,
                poll_interval=0.0,  # the local token is checked after syncs
                max_resident_shards=max_resident_shards,
                cache_size=cache_size,
                config=config,
            )
        except BaseException:
            if self._lock is not None:
                self._lock.release()
            if self._owns_client:
                self._client.close()
            raise
        self._next_check = time.monotonic() + self._poll_interval

    # ------------------------------------------------------------------ #
    # Syncing
    # ------------------------------------------------------------------ #
    def _peer_token(self) -> Optional[Tuple[int, ...]]:
        return self._client.state_token()

    def sync(self, force: bool = False) -> Optional[SyncReport]:
        """Pull the peer's state if it changed; ``None`` when it had not.

        One ``stats`` round trip decides; only a changed token (or
        ``force=True``) pays for a mirror sync.  Concurrent callers
        serialise on one sync at a time.
        """
        if self._closed:
            return None
        # Blocking network/disk I/O under this lock is the design: the
        # lock exists to serialise the one client socket and the one
        # on-disk mirror, and queries never take it (they serve the last
        # swapped-in replica).
        with self._sync_lock:  # repro-lint: allow[blocking-under-lock]
            token = self._peer_token()
            self.mirror.observe_peer_token(token)
            if not force and token is not None and token == self._remote_token:
                self._last_sync_error = None
                return None
            report = self.mirror.sync()
            self._remote_token = token
            self._last_sync_error = None
        # The mirror moved on disk; swap the serving engine now rather
        # than waiting for the next query's poll.
        self._replica.refresh()
        return report

    def _maybe_sync(self) -> None:
        now = time.monotonic()
        if now < self._next_check:
            return
        with self._tracer.start_span("replica.sync_check") as span:
            try:
                report = self.sync()
                span.set_attribute("synced", report is not None)
                self._next_check = time.monotonic() + self._poll_interval
            except (TransportError, ReplicationError, StoreError, OSError) as exc:
                # Keep serving the last good local state through peer
                # restarts and racing compactions; back off so an outage
                # costs one connect budget per backoff window, not per query.
                self._last_sync_error = f"{type(exc).__name__}: {exc}"
                span.set_status("error", self._last_sync_error)
                self._next_check = time.monotonic() + max(
                    self._poll_interval, _FAILED_POLL_BACKOFF
                )

    def lag(self) -> Dict[str, float]:
        """Measure how far behind the peer this replica is, without syncing.

        One ``stats`` round trip; updates the ``repro_replica_*`` lag
        gauges and returns ``generation_lag`` / ``wal_lag_bytes`` /
        ``last_sync_age_seconds`` (empty when the peer reports no token).
        Serialised with syncs: the client socket carries one request at a
        time, and probes may run on a different thread than queries.
        """
        with self._sync_lock:
            return self.mirror.observe_peer_token(self._peer_token())

    def _serve(self, method: str, *args, **kwargs):
        if self._closed:
            raise StoreError(f"remote replica for {self.path} is closed")
        self._maybe_sync()
        return getattr(self._replica, method)(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """The local mirror directory."""
        return self.mirror.path

    @property
    def client(self) -> ServiceClient:
        return self._client

    @property
    def protocol(self) -> int:
        """Protocol version negotiated with the peer (1 = JSON data plane)."""
        return self._client.protocol

    @property
    def replica(self) -> ReadReplica:
        """The inner (local) read replica serving the mirror."""
        return self._replica

    @property
    def generation(self) -> int:
        return self._replica.generation

    @property
    def engine(self):
        """The inner replica's current engine (ReadReplica surface)."""
        return self._replica.engine

    @property
    def reloads(self) -> int:
        """Engine hot-swaps performed by the inner replica."""
        return self._replica.reloads

    def refresh(self, force: bool = False) -> bool:
        """ReadReplica-compatible refresh: remote check, then local swap.

        ``force=True`` pays an unconditional mirror sync (and may raise on
        an unreachable peer); the default path respects the poll interval
        and degrades to serving local state, like queries do.
        """
        if force:
            self.sync(force=True)
            return self._replica.refresh(force=True)
        self._maybe_sync()
        return self._replica.refresh()

    def readiness(
        self, max_generation_lag: Optional[int] = 1
    ) -> Tuple[bool, Dict[str, object]]:
        """Probe-facing readiness: last sync ok and lag within bounds.

        Backs ``GET /readyz`` on a replica: not ready when closed, when
        the most recent sync attempt failed, when the peer is unreachable
        for the lag check, or when the generation lag exceeds
        ``max_generation_lag`` (``None`` disables the lag bound).
        """
        detail: Dict[str, object] = {
            "role": "replica",
            "generation": int(self.generation),
            "protocol": int(self._client.protocol),
        }
        if self._closed:
            detail["reason"] = "closed"
            return False, detail
        if self._last_sync_error is not None:
            detail["reason"] = "last sync failed"
            detail["error"] = self._last_sync_error
            return False, detail
        try:
            lag = self.lag()
        except (TransportError, ReplicationError, StoreError, OSError) as exc:
            detail["reason"] = "peer unreachable"
            detail["error"] = f"{type(exc).__name__}: {exc}"
            return False, detail
        detail.update(lag)
        gen_lag = lag.get("generation_lag", 0.0)
        if max_generation_lag is not None and gen_lag > max_generation_lag:
            detail["reason"] = "generation lag above threshold"
            detail["max_generation_lag"] = int(max_generation_lag)
            return False, detail
        return True, detail

    def fingerprint(self) -> str:
        return self._serve("fingerprint")

    def max_s(self) -> int:
        return self._serve("max_s")

    # ------------------------------------------------------------------ #
    # Queries (the ReadReplica surface)
    # ------------------------------------------------------------------ #
    def line_graph(self, s: int):
        return self._serve("line_graph", s)

    #: ``extract(s)`` is the service-facing name for a threshold view.
    extract = line_graph

    def metric(self, s: int, name: str) -> np.ndarray:
        return self._serve("metric", s, name)

    def metric_by_hyperedge(self, s: int, name: str) -> Dict[int, float]:
        return self._serve("metric_by_hyperedge", s, name)

    def metrics(self, s: int, names: Sequence[str]) -> Dict[str, np.ndarray]:
        return self._serve("metrics", s, names)

    def sweep(self, s_values: Iterable[int], metrics: Sequence[str] = ()) -> SweepResult:
        return self._serve("sweep", list(s_values), metrics=metrics)

    def num_components(self, s: int) -> int:
        return self._serve("num_components", s)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop serving and release the mirror lock (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._replica.close()
        self._lock.release()
        if self._owns_client:
            self._client.close()

    def __enter__(self) -> "RemoteReadReplica":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = ", closed" if self._closed else ""
        return (
            f"RemoteReadReplica(path={self.path!r}, "
            f"generation={self.generation}{state})"
        )
