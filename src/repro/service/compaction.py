"""Background compaction: fold the WAL into a new snapshot generation.

Between compactions the write-ahead log grows with every admitted batch and
every reader reload replays it in full, so recovery and replica-refresh
costs climb linearly.  :class:`CompactionPolicy` says *when* folding is
worth it (WAL record/byte thresholds, rate-limited); the
:class:`BackgroundCompactor` thread evaluates the policy off the query
path and runs :meth:`~repro.store.PersistentQueryEngine.compact` under the
service's exclusive lock, cooperating with the admission writer.  Readers
in other processes pick the new generation up through their change token
(:class:`~repro.service.ReadReplica` hot reload); their already-open mmaps
of the swept generation stay valid until their in-flight queries finish.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs import get_registry
from repro.service.sync import RWLock
from repro.store.persistent import PersistentQueryEngine
from repro.utils.log import get_logger
from repro.utils.validation import ValidationError

_log = get_logger("service.compaction")


@dataclass(frozen=True)
class CompactionPolicy:
    """Thresholds that trigger folding the WAL into a fresh snapshot.

    Compaction runs when the log holds at least ``max_wal_records`` records
    *or* at least ``max_wal_bytes`` bytes (``None`` disables a threshold),
    but never more often than every ``min_interval_seconds``.  An empty
    log never triggers.
    """

    max_wal_records: Optional[int] = 1024
    max_wal_bytes: Optional[int] = 8 * 1024 * 1024
    min_interval_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_wal_records is None and self.max_wal_bytes is None:
            raise ValidationError(
                "CompactionPolicy needs at least one threshold "
                "(max_wal_records or max_wal_bytes)"
            )

    def should_compact(self, wal_records: int, wal_bytes: int) -> bool:
        if wal_records <= 0:
            return False
        if self.max_wal_records is not None and wal_records >= self.max_wal_records:
            return True
        return self.max_wal_bytes is not None and wal_bytes >= self.max_wal_bytes


class BackgroundCompactor:
    """Daemon thread compacting a persistent engine when the policy fires.

    Parameters
    ----------
    engine:
        The (writable) store-backed engine to compact.
    write_lock:
        The service's :class:`RWLock`; compaction holds its exclusive side,
        so it serialises against the admission writer and in-flight
        queries without any extra protocol.
    policy / poll_interval:
        When to compact, and how often to check.
    """

    def __init__(
        self,
        engine: PersistentQueryEngine,
        write_lock: RWLock,
        policy: Optional[CompactionPolicy] = None,
        poll_interval: float = 0.1,
    ) -> None:
        self._engine = engine
        self._write_lock = write_lock
        self.policy = policy if policy is not None else CompactionPolicy()
        self._poll_interval = float(poll_interval)
        self._stop = threading.Event()
        self._last_compacted = float("-inf")
        #: Completed compactions (observability / tests).
        self.compactions = 0
        registry = get_registry()
        self._m_compactions = registry.counter(
            "repro_compactions_total", "WAL-folding compactions completed."
        )
        self._m_duration = registry.histogram(
            "repro_compaction_seconds",
            "Wall time of one compaction (exclusive lock held).",
        )
        self._m_folded_records = registry.counter(
            "repro_compaction_folded_records_total",
            "WAL records folded into snapshots by compaction.",
        )
        self._m_folded_bytes = registry.counter(
            "repro_compaction_folded_bytes_total",
            "WAL bytes folded into snapshots by compaction.",
        )
        self._thread = threading.Thread(
            target=self._run, name="background-compactor", daemon=True
        )
        self._thread.start()

    def _wal_bytes(self) -> int:
        try:
            return os.path.getsize(self._engine.store.wal.path)
        except OSError:
            return 0

    def _run(self) -> None:
        while not self._stop.wait(self._poll_interval):
            try:
                self.maybe_compact()
            except Exception:
                # Compaction failure must not kill the service loop; the
                # WAL stays authoritative and the next tick retries — but
                # a silent retry loop hides a dying disk, so say so.
                _log.warning(
                    "background compaction failed; retrying next tick",
                    exc_info=True,
                )
                continue

    def maybe_compact(self, force: bool = False) -> bool:
        """Compact now if the policy (or ``force``) says so; True when run."""
        if not force:
            if time.monotonic() - self._last_compacted < self.policy.min_interval_seconds:
                return False
            if not self.policy.should_compact(
                self._engine.store.num_wal_records(), self._wal_bytes()
            ):
                return False
        folded_records = self._engine.store.num_wal_records()
        folded_bytes = self._wal_bytes()
        start = time.perf_counter()
        with self._write_lock.write():
            self._engine.compact()
        self._m_duration.observe(time.perf_counter() - start)
        self._m_compactions.inc()
        self._m_folded_records.inc(folded_records)
        self._m_folded_bytes.inc(folded_bytes)
        self._last_compacted = time.monotonic()
        self.compactions += 1
        return True

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the polling thread (any in-progress compaction finishes)."""
        self._stop.set()
        self._thread.join(timeout=timeout)
