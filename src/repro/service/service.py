"""The query service: one store, one writer, many threads, many readers.

:class:`QueryService` ties the serving subsystem together.  In **writer**
mode it takes the cross-process :class:`~repro.service.StoreLock`, opens
(or builds) a :class:`~repro.store.PersistentQueryEngine`, and starts the
:class:`~repro.service.AdmissionQueue` writer thread plus — when a
:class:`~repro.service.CompactionPolicy` is given — the background
compactor.  In **read-only** mode it serves from a hot-reloading
:class:`~repro.service.ReadReplica` and takes no lock, so any number of
reader processes can share the store with the writer.

Queries run concurrently under the shared side of one
:class:`~repro.service.sync.RWLock`; updates and compactions take the
exclusive side, so a query never observes a half-applied batch.  Batched
request lists fan out over worker threads via
:func:`repro.parallel.executor.run_partitioned` — the same executor layer
the Stage-3 algorithms use.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.chaos import failpoints as _failpoints
from repro.core.pipeline import METRIC_FUNCTIONS
from repro.engine.engine import QueryEngine, SweepResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.obs import get_registry, get_tracer, render_prometheus
from repro.parallel.executor import ParallelConfig, run_partitioned
from repro.service.admission import AdmissionQueue, AdmissionStats
from repro.service.compaction import BackgroundCompactor, CompactionPolicy
from repro.service.lock import StoreLock
from repro.service.replica import ReadReplica
from repro.service.sync import RWLock
from repro.store.format import PathLike, ReadOnlyStoreError, StoreError
from repro.store.replication import LocalReplicationSource
from repro.store.store import IndexStore
from repro.utils.validation import ValidationError

#: A serving request: ``{"op": ..., ...}`` (see :meth:`QueryService.serve`).
Request = Mapping[str, object]


class QueryService:
    """Concurrent serving façade over one shared store (module docstring).

    Parameters
    ----------
    path:
        Store directory.
    hypergraph / create:
        Forwarded to :meth:`QueryEngine.from_store` (writer mode): supply a
        hypergraph and ``create=True`` to build a store that does not exist.
    read_only:
        Serve as a read replica: no writer lock, no admission queue;
        ``submit_add`` / ``submit_remove`` / ``compact`` raise
        :class:`~repro.store.ReadOnlyStoreError`.
    sharded:
        Serve from mmap'd shards (default) instead of a materialised index.
    num_workers:
        Default thread fan-out for :meth:`serve` request batches.
    max_pending / max_batch:
        Admission-queue bound and coalescing limit (writer mode).
    compaction:
        A :class:`CompactionPolicy` to enable background compaction
        (``None`` — the default — leaves compaction manual).
    lock_timeout:
        Seconds to wait for the writer lock (``None``: fail immediately
        when another writer holds it).
    slow_query_ms:
        When set, queries slower than this many milliseconds are recorded
        in a bounded in-memory ring exposed as ``stats()["slow_queries"]``
        (``None`` — the default — disables the log).  Entries carry the
        request's ``trace_id`` when it was traced, linking the ring to
        ``repro trace --trace-id``.
    remote_source:
        ``(host, port)`` of a serving peer.  With ``read_only=True`` the
        service serves from a :class:`~repro.service.RemoteReadReplica`
        mirroring that peer into ``path`` — each query (re-)checks peer
        staleness within ``replica_poll_interval`` — instead of assuming
        the writer shares the filesystem.  This is how a chained replica
        process serves: its socket server front, this service, and the
        wire-fed mirror underneath.
    remote_protocol_max / remote_compression:
        Forwarded to the replica's :class:`ServiceClient` handshake:
        ``remote_protocol_max=1`` pins the JSON-only v1 data plane toward
        the peer; ``remote_compression=False`` negotiates the codec off
        (see ``docs/PROTOCOL.md``).  Ignored without ``remote_source``.
    """

    def __init__(
        self,
        path: PathLike,
        hypergraph: Optional[Hypergraph] = None,
        create: bool = False,
        read_only: bool = False,
        sharded: bool = True,
        num_workers: int = 4,
        algorithm: str = "hashmap",
        num_shards: int = 4,
        cache_size: int = 256,
        max_pending: int = 1024,
        max_batch: int = 64,
        compaction: Optional[CompactionPolicy] = None,
        compaction_poll_interval: float = 0.1,
        replica_poll_interval: float = 0.0,
        lock_timeout: Optional[float] = None,
        config: Optional[ParallelConfig] = None,
        slow_query_ms: Optional[float] = None,
        slow_query_capacity: int = 128,
        remote_source: Optional[Tuple[str, int]] = None,
        remote_protocol_max: Optional[int] = None,
        remote_compression: bool = True,
    ) -> None:
        self.path = str(path)
        self.read_only = bool(read_only)
        self._num_workers = int(num_workers)
        if remote_source is not None and not self.read_only:
            raise ValidationError(
                "remote_source requires read_only=True: a remote-fed mirror "
                "cannot also be the store's writer"
            )
        # The registry (and tracer) are captured once so the metrics/trace
        # ops and stats snapshot report against the same instances the
        # layers below bound at construction time.
        self._registry = get_registry()
        self._tracer = get_tracer()
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValidationError("slow_query_ms must be >= 0")
        self._slow_query_ms = None if slow_query_ms is None else float(slow_query_ms)
        self._slow_queries: Deque[Dict[str, object]] = deque(
            maxlen=max(1, int(slow_query_capacity))
        )
        self._slow_lock = threading.Lock()
        self._rw = RWLock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._lock: Optional[StoreLock] = None
        self._admission: Optional[AdmissionQueue] = None
        self._compactor: Optional[BackgroundCompactor] = None
        self._replica: Optional[ReadReplica] = None
        # Serves the repl_* ops (writer and replica mode alike): any peer
        # that can reach this service can bootstrap a remote mirror of the
        # store (see repro.store.replication).
        self._replication = LocalReplicationSource(self.path)

        if self.read_only:
            self._engine = None
            if remote_source is not None:
                # Imported lazily: remote.py pulls in the transport client,
                # which shared-filesystem replicas never need.
                from repro.service.remote import RemoteReadReplica

                host, port = remote_source
                self._replica = RemoteReadReplica(
                    str(host),
                    int(port),
                    store_path=path,
                    poll_interval=replica_poll_interval,
                    sharded=sharded,
                    cache_size=cache_size,
                    config=config,
                    protocol_max=remote_protocol_max,
                    compression=remote_compression,
                )
            else:
                self._replica = ReadReplica(
                    path,
                    sharded=sharded,
                    poll_interval=replica_poll_interval,
                    cache_size=cache_size,
                    config=config,
                )
            return

        self._lock = StoreLock(path, owner="QueryService").acquire(
            blocking=lock_timeout is not None, timeout=lock_timeout
        )
        try:
            self._engine = QueryEngine.from_store(
                path,
                hypergraph=hypergraph,
                create=create,
                sharded=sharded,
                algorithm=algorithm,
                num_shards=num_shards,
                cache_size=cache_size,
                config=config,
            )
            self._admission = AdmissionQueue(
                self._engine,
                write_lock=self._rw,
                max_pending=max_pending,
                max_batch=max_batch,
            )
            if compaction is not None:
                self._compactor = BackgroundCompactor(
                    self._engine,
                    self._rw,
                    policy=compaction,
                    poll_interval=compaction_poll_interval,
                )
        except BaseException:
            self._lock.release()
            raise

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> QueryEngine:
        """The underlying engine (the replica's current one in reader mode)."""
        if self._replica is not None:
            return self._replica.engine
        return self._engine

    @property
    def replica(self):
        """The backing replica in reader mode (``None`` for the writer).

        A :class:`~repro.service.ReadReplica`, or a
        :class:`~repro.service.remote.RemoteReadReplica` when the service
        was built with ``remote_source`` — callers keeping a remote-fed
        replica fresh while idle call its ``sync()`` through this.
        """
        return self._replica

    @property
    def generation(self) -> int:
        """Snapshot generation of the served view."""
        if self._replica is not None:
            return self._replica.generation
        return self._engine.store.manifest.generation

    def stats(self) -> Dict[str, object]:
        """Engine + admission counters (the ``stats`` request payload).

        In replica mode this first polls the store's change token, so the
        reported generation/fingerprint describe the state a query issued
        *now* would be served from — remote clients use it to detect
        convergence with the writer.
        """
        if self._replica is not None:
            try:
                self._replica.refresh()
            except (StoreError, OSError):
                pass  # transient writer race; serve the last good view
        out: Dict[str, object] = {
            "read_only": self.read_only,
            "generation": self.generation,
            "fingerprint": self.engine.fingerprint(),
        }
        try:
            # Remote mirrors poll this to decide when to pull a sync (see
            # repro.store.replication); it changes on every append,
            # truncate and compaction.
            out["state_token"] = list(IndexStore.state_token(self.path))
        except (StoreError, OSError):  # pragma: no cover - racing compaction
            pass
        out["engine"] = vars(self.engine.stats())
        if self._admission is not None:
            # snapshot() copies every counter under one lock hold, so the
            # reported values are mutually consistent (the old
            # vars(dataclass) path could interleave with a commit).
            out["admission"] = self._admission.snapshot()
        if self._replica is not None:
            out["replica_reloads"] = self._replica.reloads
        if self._compactor is not None:
            out["compactions"] = self._compactor.compactions
        if self._slow_query_ms is not None:
            out["slow_query_ms"] = self._slow_query_ms
            out["slow_queries"] = self.slow_queries()
        out["metrics"] = self._registry.snapshot()
        out["tracing"] = self._tracer.stats()
        return out

    def slow_queries(self) -> List[Dict[str, object]]:
        """Snapshot of the slow-query ring, oldest first (empty when off)."""
        with self._slow_lock:
            return [dict(entry) for entry in self._slow_queries]

    def admission_stats(self) -> Optional[AdmissionStats]:
        return self._admission.stats() if self._admission is not None else None

    # ------------------------------------------------------------------ #
    # Queries (shared lock: any number run concurrently)
    # ------------------------------------------------------------------ #
    def _query(self, method: str, *args, **kwargs):
        """One dispatch rule for every read: the replica serves directly
        (its engine swap is atomic), the writer's engine is read-locked
        so no query overlaps an update batch or compaction."""
        if self._slow_query_ms is None:
            if self._replica is not None:
                return getattr(self._replica, method)(*args, **kwargs)
            with self._rw.read():
                return getattr(self._engine, method)(*args, **kwargs)
        start = time.perf_counter()
        try:
            if self._replica is not None:
                return getattr(self._replica, method)(*args, **kwargs)
            with self._rw.read():
                return getattr(self._engine, method)(*args, **kwargs)
        finally:
            duration_ms = (time.perf_counter() - start) * 1000.0
            if duration_ms >= self._slow_query_ms:
                self._record_slow(method, args, kwargs, duration_ms)

    def _record_slow(self, method: str, args, kwargs, duration_ms: float) -> None:
        entry: Dict[str, object] = {
            "op": method,
            "duration_ms": round(duration_ms, 3),
            "timestamp": time.time(),
            # Links the ring to `repro trace --trace-id` ("" when the
            # request was not sampled; pair --slow-query-ms with
            # --trace-slow-ms to guarantee slow queries have traces).
            "trace_id": self._tracer.current_trace_id(),
        }
        if args:
            first = args[0]
            if isinstance(first, (int, np.integer)):
                entry["s"] = int(first)
        if method in ("metric", "metric_by_hyperedge") and len(args) > 1:
            entry["metric"] = str(args[1])
        metrics = kwargs.get("metrics")
        if metrics:
            entry["metric"] = ",".join(str(m) for m in metrics)
        try:
            entry["generation"] = self.generation
        except (StoreError, OSError):  # pragma: no cover - racing compaction
            pass
        with self._slow_lock:
            self._slow_queries.append(entry)

    def metric(self, s: int, name: str) -> np.ndarray:
        return self._query("metric", s, name)

    def metric_by_hyperedge(self, s: int, name: str) -> Dict[int, float]:
        return self._query("metric_by_hyperedge", s, name)

    def line_graph(self, s: int):
        return self._query("line_graph", s)

    #: ``extract(s)`` is the service-facing name for a threshold view.
    extract = line_graph

    def sweep(self, s_values: Iterable[int], metrics: Sequence[str] = ()) -> SweepResult:
        return self._query("sweep", s_values, metrics=metrics)

    def num_components(self, s: int) -> int:
        """Number of s-connected components among non-isolated hyperedges."""
        if self._replica is not None:
            return self._replica.num_components(s)
        labels = self.metric(s, "connected_components")
        return int(labels.max()) + 1 if labels.size else 0

    # ------------------------------------------------------------------ #
    # Updates (async admission; writer mode only)
    # ------------------------------------------------------------------ #
    def _admission_or_raise(self) -> AdmissionQueue:
        if self._admission is None:
            raise ReadOnlyStoreError(
                f"service for {self.path} is read-only; updates go through "
                "the single writer process"
            )
        return self._admission

    def submit_add(self, members: Iterable[int], name: Optional[object] = None) -> Future:
        """Enqueue an add; the future resolves to the new hyperedge ID once
        the update is applied and durable (see :class:`AdmissionQueue`)."""
        return self._admission_or_raise().submit_add(members, name=name)

    def submit_remove(self, edge_id: int) -> Future:
        """Enqueue a remove; the future resolves once applied and durable."""
        return self._admission_or_raise().submit_remove(edge_id)

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every previously submitted update is durable."""
        self._admission_or_raise().flush(timeout=timeout)

    def compact(self) -> bool:
        """Flush pending updates, then fold the WAL into a new generation."""
        admission = self._admission_or_raise()
        admission.flush()
        if self._compactor is not None:
            return self._compactor.maybe_compact(force=True)
        with self._rw.write():
            self._engine.compact()
        return True

    # ------------------------------------------------------------------ #
    # Batched request serving
    # ------------------------------------------------------------------ #
    def serve(
        self, requests: Sequence[Request], num_workers: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Serve a batch of requests across worker threads, in order.

        Each request is a mapping with an ``op`` key:

        ========== ==================================== =====================
        op         arguments                            result payload
        ========== ==================================== =====================
        metric     ``s``, ``metric``                    ``values`` (by edge)
        components ``s``                                ``count``
        sweep      ``s_values`` or ``s_min``/``s_max``  ``edge_counts``, …
        add        ``members``, ``name?``, ``wait?``    ``queued``/``edge_id``
        remove     ``edge_id``, ``wait?``               ``queued``/``removed``
        flush      —                                    ``flushed``
        compact    —                                    ``generation``
        stats      —                                    :meth:`stats`
        metrics    —                                    Prometheus ``text``
        trace      ``trace_id?``, ``limit?``            finished ``traces``
        repl_*     see :mod:`repro.store.replication`   manifest/chunks/WAL
        ========== ==================================== =====================

        Responses carry ``ok`` (bool) and, on failure, ``error``; request
        order is preserved.  Worker threads share the engine through the
        read lock, so queries parallelise while updates stay serialised.
        """
        if num_workers is None:
            num_workers = self._num_workers
        requests = list(requests)
        if not requests:
            return []
        config = ParallelConfig(
            num_workers=max(1, min(int(num_workers), len(requests))),
            backend="thread",
        )

        # Worker threads do not inherit this thread's span context; carry
        # the caller's span across so batched queries stay in its trace.
        caller_span = self._tracer.current_span()

        def kernel(part: np.ndarray, worker_id: int):
            with self._tracer.use_span(caller_span):
                return [(int(i), self.execute(requests[int(i)])) for i in part]

        merged: List[Optional[Dict[str, object]]] = [None] * len(requests)
        for partial in run_partitioned(kernel, np.arange(len(requests)), config):
            for i, response in partial:
                merged[i] = response
        return merged  # type: ignore[return-value]

    def execute(self, request: Request) -> Dict[str, object]:
        """Serve one request mapping, never raising: errors become payloads."""
        op = str(request.get("op", ""))
        try:
            # Disabled-failpoint cost on every request rides inside the
            # `obs_overhead` benchmark floor (one module-global bool read).
            _failpoints.fire("service.execute")
            return self._dispatch(op, request)
        except Exception as exc:
            return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, op: str, request: Request) -> Dict[str, object]:
        if op == "metric":
            s = int(request["s"])
            name = str(request.get("metric", "connected_components"))
            if name not in METRIC_FUNCTIONS:
                raise ValidationError(
                    f"unknown metric {name!r}; available: {sorted(METRIC_FUNCTIONS)}"
                )
            values = self.metric_by_hyperedge(s, name)
            base = {
                "ok": True,
                "op": op,
                "s": s,
                "metric": name,
                "generation": self.generation,
            }
            if request.get("columns"):
                # Columnar fast path (binary data plane): parallel sorted
                # int64/float64 arrays instead of a str-keyed JSON object.
                # Sections like these only survive a protocol >= 2
                # connection; the transport enforces that.
                ids = np.fromiter(values.keys(), dtype=np.int64, count=len(values))
                vals = np.fromiter(values.values(), dtype=np.float64, count=len(values))
                order = np.argsort(ids, kind="stable")
                base["columns"] = True
                base["edge_ids"] = ids[order]
                base["values"] = vals[order]
                return base
            base["values"] = {str(k): float(v) for k, v in sorted(values.items())}
            return base
        if op == "components":
            s = int(request["s"])
            return {"ok": True, "op": op, "s": s, "count": self.num_components(s)}
        if op == "sweep":
            if "s_values" in request:
                s_values = [int(v) for v in request["s_values"]]  # type: ignore[arg-type]
            else:
                s_values = list(
                    range(int(request.get("s_min", 1)), int(request["s_max"]) + 1)
                )
            metrics = [str(m) for m in request.get("metrics", ())]  # type: ignore[union-attr]
            result = self.sweep(s_values, metrics=metrics)
            if request.get("columns"):
                ordered = sorted(result.edge_counts)
                return {
                    "ok": True,
                    "op": op,
                    "columns": True,
                    "s_values": np.asarray(ordered, dtype=np.int64),
                    "edge_counts": np.asarray(
                        [result.edge_counts[s] for s in ordered], dtype=np.int64
                    ),
                    "active_counts": np.asarray(
                        [result.active_counts[s] for s in ordered], dtype=np.int64
                    ),
                }
            return {
                "ok": True,
                "op": op,
                "edge_counts": {str(s): int(n) for s, n in result.edge_counts.items()},
                "active_counts": {
                    str(s): int(n) for s, n in result.active_counts.items()
                },
            }
        if op == "add":
            future = self.submit_add(
                [int(v) for v in request["members"]],  # type: ignore[arg-type]
                name=request.get("name"),
            )
            if request.get("wait"):
                return {"ok": True, "op": op, "edge_id": int(future.result())}
            return {"ok": True, "op": op, "queued": True}
        if op == "remove":
            future = self.submit_remove(int(request["edge_id"]))
            if request.get("wait"):
                future.result()
                return {"ok": True, "op": op, "removed": True}
            return {"ok": True, "op": op, "queued": True}
        if op == "flush":
            self.flush()
            return {"ok": True, "op": op, "flushed": True}
        if op == "compact":
            compacted = self.compact()
            return {
                "ok": True,
                "op": op,
                "compacted": bool(compacted),
                "generation": self.generation,
            }
        if op == "stats":
            return {"ok": True, "op": op, "stats": self.stats()}
        if op == "metrics":
            return {
                "ok": True,
                "op": op,
                "content_type": "text/plain; version=0.0.4; charset=utf-8",
                "text": render_prometheus(self._registry),
            }
        if op == "trace":
            trace_id = request.get("trace_id")
            return {
                "ok": True,
                "op": op,
                "traces": self._tracer.finished_traces(
                    trace_id=None if trace_id is None else str(trace_id),
                    limit=int(request.get("limit", 20)),
                ),
                "tracing": self._tracer.stats(),
            }
        if op == "repl_manifest":
            return {"ok": True, "op": op, **self._replication.repl_manifest()}
        if op == "repl_wal":
            if "after_bytes" in request or "next_seq" in request:
                # Byte-offset cursor mode: ship the raw validated log
                # suffix after (generation, byte_offset) — O(suffix), not
                # O(WAL) — see docs/PROTOCOL.md.
                payload = self._replication.repl_wal_suffix(
                    int(request["generation"]),
                    int(request.get("after_bytes", 0)),
                    int(request.get("next_seq", 1)),
                    raw=bool(request.get("raw", False)),
                )
            else:
                payload = self._replication.repl_wal(
                    int(request["generation"]), int(request.get("after_seq", 0))
                )
            return {"ok": True, "op": op, **payload}
        if op == "repl_fetch":
            payload = self._replication.repl_fetch(
                str(request["file"]),
                int(request["generation"]),
                int(request.get("offset", 0)),
                int(request["length"]),
                # Raw bytes ride a binary frame; base64 is the v1 fallback.
                raw=bool(request.get("raw", False)),
            )
            return {"ok": True, "op": op, **payload}
        if op == "chaos":
            return self._serve_chaos(request)
        raise ValidationError(
            f"unknown op {op!r}; expected one of metric/components/sweep/"
            "add/remove/flush/compact/stats/metrics/trace/"
            "repl_manifest/repl_wal/repl_fetch/chaos"
        )

    def _serve_chaos(self, request: Request) -> Dict[str, object]:
        """Failpoint control for a live process (the chaos harness's lever).

        Gated: unless the process was launched with ``REPRO_CHAOS`` set
        (``repro serve --chaos`` does this), the op is refused — fault
        injection must be opted into at process start, never reachable on
        a production server by default.
        """
        if not _failpoints.remote_control_enabled():
            raise ValidationError(
                "chaos control is disabled; start the server with --chaos "
                "(or REPRO_CHAOS=1) to allow remote failpoint control"
            )
        cmd = str(request.get("cmd", "list"))
        if cmd == "activate":
            value = request.get("value")
            count = request.get("count")
            _failpoints.activate(
                str(request["point"]),
                str(request.get("action", "error")),
                None if value is None else float(value),  # type: ignore[arg-type]
                None if count is None else int(count),  # type: ignore[arg-type]
            )
        elif cmd == "deactivate":
            _failpoints.deactivate(str(request["point"]))
        elif cmd == "reset":
            _failpoints.reset()
        elif cmd != "list":
            raise ValidationError(
                f"unknown chaos cmd {cmd!r}; expected "
                "activate/deactivate/reset/list"
            )
        return {
            "ok": True,
            "op": "chaos",
            "cmd": cmd,
            "active": _failpoints.active(),
            "hits": _failpoints.hits(),
        }

    # ------------------------------------------------------------------ #
    # Readiness (the /readyz probe)
    # ------------------------------------------------------------------ #
    def readiness(
        self, max_generation_lag: Optional[int] = 1
    ) -> Tuple[bool, Dict[str, object]]:
        """``(ready, detail)`` for traffic-readiness probes.

        Writer: ready while the store lock is held and the admission
        queue has not been poisoned by a failed group commit.  Replica:
        delegates to :meth:`RemoteReadReplica.readiness` when serving a
        remote mirror (last sync ok, generation lag within
        ``max_generation_lag``); a shared-filesystem replica is ready as
        long as its store is readable.
        """
        if self._closed:
            return False, {"reason": "service closed"}
        if self._replica is not None:
            probe = getattr(self._replica, "readiness", None)
            if probe is not None:
                return probe(max_generation_lag)
            detail: Dict[str, object] = {"role": "replica"}
            try:
                detail["generation"] = int(self.generation)
            except (StoreError, OSError) as exc:
                detail["reason"] = f"store unreadable: {exc}"
                return False, detail
            return True, detail
        detail = {"role": "writer"}
        if self._lock is None or not self._lock.held:
            detail["reason"] = "store writer lock not held"
            return False, detail
        if self._admission is not None and self._admission.poisoned:
            detail["reason"] = "admission queue poisoned (a group commit failed)"
            return False, detail
        detail["generation"] = int(self.generation)
        return True, detail

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop background threads, flush pending updates, drop the lock."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self._compactor is not None:
            self._compactor.stop()
        if self._admission is not None:
            self._admission.close()
        if self._replica is not None:
            self._replica.close()
        if self._lock is not None:
            self._lock.release()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "read-only" if self.read_only else "writer"
        return f"QueryService(path={self.path!r}, {mode})"
