"""Prometheus text-exposition rendering of a :class:`MetricsRegistry`.

Produces the ``text/plain; version=0.0.4`` format real Prometheus
scrapes: per metric a ``# HELP`` line (backslash/newline escaped), a
``# TYPE`` line, then one sample line per label set.  Histograms expand
to cumulative ``_bucket{le="..."}`` series (always ending in the
``+Inf`` bucket), plus ``_sum`` and ``_count`` — exactly the shape
``histogram_quantile()`` expects.

The renderer trusts metric/label *names* (the registry validated them at
registration) but escapes label *values* and help text, which are
arbitrary strings.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    _HistogramChild,
    format_number,
    get_registry,
)

#: The HTTP Content-Type of the rendered payload.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double-quote and newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry = None) -> str:
    """The registry's current state as Prometheus exposition text."""
    if registry is None:
        registry = get_registry()
    lines: List[str] = []
    for instrument in registry.collect():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        for labels, child in instrument.samples():
            if isinstance(instrument, Histogram):
                assert isinstance(child, _HistogramChild)
                counts, total, count = child.snapshot()
                cumulative = 0
                for bound, bucket_count in zip(instrument.buckets, counts):
                    cumulative += bucket_count
                    le = _label_text(
                        labels, f'le="{format_number(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                inf = _label_text(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {count}")
                suffix = _label_text(labels)
                lines.append(f"{name}_sum{suffix} {format_number(total)}")
                lines.append(f"{name}_count{suffix} {count}")
            else:
                suffix = _label_text(labels)
                lines.append(f"{name}{suffix} {format_number(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""
