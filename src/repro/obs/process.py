"""Process-level runtime metrics: uptime, RSS, open fds, GC activity.

Chaos scenarios kill and restart serving processes in a loop; these
gauges are what lets the harness assert the survivors are not *leaking* —
that RSS and the open-fd count stay bounded across cycles, and that GC
pressure is not climbing.  They are equally useful on a long-lived
production server, so :func:`register_process_metrics` is called by the
CLI whenever a metrics listener is started (``serve``/``replicate``
``--metrics-port``).

Everything is collected lazily via :meth:`Gauge.set_function` — a scrape
pays the ``/proc`` reads, an idle process pays nothing.  The ``/proc``
sources are Linux-specific; elsewhere the affected gauges report ``-1``
rather than guessing.

Exported (all on the target registry, default :func:`get_registry`):

``process_uptime_seconds``
    Wall seconds since :func:`register_process_metrics` ran (process
    start, for the CLI entry points).
``process_resident_memory_bytes``
    ``VmRSS`` from ``/proc/self/status`` (``-1`` where unavailable).
``process_open_fds``
    Entries in ``/proc/self/fd`` (``-1`` where unavailable).
``process_gc_collections_total{generation}``
    Cumulative collections per GC generation (``gc.get_stats``).
``process_gc_objects_collected_total{generation}``
    Cumulative objects collected per GC generation.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Optional

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["open_fds", "register_process_metrics", "resident_memory_bytes"]

_PROC_STATUS = "/proc/self/status"
_PROC_FD = "/proc/self/fd"


def resident_memory_bytes() -> float:
    """``VmRSS`` in bytes, or ``-1.0`` when ``/proc`` is unavailable."""
    try:
        with open(_PROC_STATUS, "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0  # kB -> bytes
    except OSError:
        pass
    return -1.0


def open_fds() -> float:
    """Open file descriptors, or ``-1.0`` when ``/proc`` is unavailable."""
    try:
        return float(len(os.listdir(_PROC_FD)))
    except OSError:
        return -1.0


def register_process_metrics(registry: Optional[MetricsRegistry] = None) -> None:
    """Bind the process gauges on ``registry`` (default per-process one).

    Idempotent: re-registering rebinds the collection callbacks (the
    registry get-or-creates by name), resetting the uptime epoch.
    """
    reg = registry if registry is not None else get_registry()
    started = time.monotonic()
    reg.gauge(
        "process_uptime_seconds",
        "Wall seconds since process metrics were registered.",
    ).set_function(lambda: time.monotonic() - started)
    reg.gauge(
        "process_resident_memory_bytes",
        "Resident set size from /proc/self/status (-1 where unsupported).",
    ).set_function(resident_memory_bytes)
    reg.gauge(
        "process_open_fds",
        "Open file descriptors from /proc/self/fd (-1 where unsupported).",
    ).set_function(open_fds)
    collections = reg.gauge(
        "process_gc_collections_total",
        "Cumulative garbage collections, per GC generation.",
        ("generation",),
    )
    collected = reg.gauge(
        "process_gc_objects_collected_total",
        "Cumulative objects collected, per GC generation.",
        ("generation",),
    )
    for generation in range(len(gc.get_stats())):
        collections.labels(generation=generation).set_function(
            lambda g=generation: float(gc.get_stats()[g]["collections"])
        )
        collected.labels(generation=generation).set_function(
            lambda g=generation: float(gc.get_stats()[g]["collected"])
        )
