"""A dependency-free, thread-safe metrics registry.

Three instrument kinds cover the serving stack's telemetry:

``Counter``
    Monotonically increasing totals (requests served, WAL fsyncs, cache
    hits).  By Prometheus convention counter names end in ``_total``.
``Gauge``
    A value that goes up and down (queue depth, in-flight requests,
    replica lag).  A gauge may instead be bound to a *callback* with
    :meth:`Gauge.set_function`, evaluated lazily at collection time.
``Histogram``
    Fixed-bucket distributions (latencies, batch sizes): each observation
    lands in the first bucket whose upper bound contains it, plus a
    running sum and count, so rates and quantile estimates can be derived
    by a scraper without the process keeping raw samples.

Concurrency contract
--------------------
The registry is **lock-striped**: registration (get-or-create of an
instrument) takes the registry lock, but every hot-path mutation —
``inc`` / ``set`` / ``observe`` — takes only the lock of the one
*labelled child* it touches, so concurrent increments of different
metrics (or different label sets of one metric) never contend.  A
label lookup (:meth:`_Instrument.labels`) takes the instrument's child
lock only on the first use of a label set; callers on hot paths should
bind the child once (``child = counter.labels(op="metric")``) and call
``child.inc()`` thereafter.

Snapshots (:meth:`MetricsRegistry.collect` / ``snapshot``) read each
child under its own lock, so every individual sample is consistent
(a histogram's buckets/sum/count always agree) even under concurrent
writers.

A per-process default registry (:func:`get_registry`) is what the
serving layers instrument themselves against; :func:`use_registry`
swaps it temporarily (test isolation, overhead benchmarking with a
:class:`NullRegistry`).
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from functools import wraps
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "time_block",
    "timed",
]


class MetricsError(ValueError):
    """Invalid metric name/labels, or conflicting re-registration."""


#: Prometheus metric-name grammar (colons are reserved for recording
#: rules, but legal in the exposition format).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Prometheus label-name grammar; ``__``-prefixed names are reserved.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for request/operation latencies in
#: seconds: 0.5 ms resolution at the fast end, 10 s at the slow end.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def validate_metric_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(
            f"invalid metric name {name!r}: must match {_NAME_RE.pattern}"
        )
    return name


def validate_label_names(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(str(n) for n in labelnames)
    for name in names:
        if not _LABEL_RE.match(name) or name.startswith("__"):
            raise MetricsError(
                f"invalid label name {name!r}: must match {_LABEL_RE.pattern} "
                "and not start with '__'"
            )
    if len(set(names)) != len(names):
        raise MetricsError(f"duplicate label names in {names}")
    return names


# --------------------------------------------------------------------- #
# Children: one per (instrument, label values) — each with its own lock
# --------------------------------------------------------------------- #
class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at collection time instead of storing a value."""
        with self._lock:
            self._function = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._function
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            # A callback gauge must never break collection (e.g. reading
            # the queue depth of an already-closed admission queue).
            return 0.0


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        # One slot per finite bucket plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """Consistent ``(per-bucket counts, sum, count)`` triple."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #
class _Instrument:
    """Shared labels machinery; subclasses pick the child type."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = validate_metric_name(name)
        self.help = str(help)
        self.labelnames = validate_label_names(labelnames)
        self._children_lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            # Unlabelled instruments get their single child eagerly so the
            # hot path (`counter.inc()`) never takes the children lock.
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: object):
        """The child for one label-value set (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise MetricsError(
                f"{self.name} takes labels {self.labelnames}, got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._children_lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _default_child(self):
        if self.labelnames:
            raise MetricsError(
                f"{self.name} is labelled {self.labelnames}; use .labels(...)"
            )
        return self._children[()]

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels dict, child) `` pairs, label-insertion ordered."""
        with self._children_lock:
            items = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in items]


class Counter(_Instrument):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(_Instrument):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricsError(f"histogram buckets must strictly increase: {bounds}")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """Get-or-create home for instruments; the unit of collection.

    Registration is idempotent: asking for an existing name returns the
    existing instrument, provided kind and label names match (a mismatch
    raises :class:`MetricsError` — two subsystems silently sharing one
    name with different shapes is always a bug).  This is what lets every
    :class:`~repro.store.wal.WriteAheadLog` or admission queue in a
    process bind "its" counters without coordinating ownership.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    str(n) for n in labelnames
                ):
                    raise MetricsError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def collect(self) -> List[_Instrument]:
        """Registered instruments, in registration order."""
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe plain-dict view of every instrument (stable keys).

        Shape (the ``stats()["metrics"]`` payload)::

            {name: {"type": "counter"|"gauge"|"histogram",
                    "help": str,
                    "values": [{"labels": {...}, "value": v}            # counter/gauge
                               | {"labels": {...}, "count": n,
                                  "sum": s, "buckets": {"0.005": c, ...}}]}}  # histogram
        """
        out: Dict[str, object] = {}
        for instrument in self.collect():
            values: List[Dict[str, object]] = []
            for labels, child in instrument.samples():
                if isinstance(child, _HistogramChild):
                    counts, total, count = child.snapshot()
                    values.append(
                        {
                            "labels": labels,
                            "count": count,
                            "sum": total,
                            "buckets": {
                                format_number(b): c
                                for b, c in zip(instrument.buckets, counts)
                            },
                            "inf": counts[-1],
                        }
                    )
                else:
                    values.append({"labels": labels, "value": child.value})
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "values": values,
            }
        return out


def format_number(value: float) -> str:
    """Render a sample value the way the exposition format expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# --------------------------------------------------------------------- #
# Null registry: free-of-charge instruments for overhead measurement
# --------------------------------------------------------------------- #
class _NullInstrument:
    """Accepts the full instrument surface; does nothing."""

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0


_NULL = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-ops.

    Components constructed while a ``NullRegistry`` is the process
    default bind zero-cost instruments — the uninstrumented baseline of
    ``benchmarks/bench_obs_overhead.py``.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NULL

    def gauge(self, name, help="", labelnames=()):  # type: ignore[override]
        return _NULL

    def histogram(  # type: ignore[override]
        self, name, help="", labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS
    ):
        return _NULL

    def snapshot(self) -> Dict[str, object]:
        return {}


# --------------------------------------------------------------------- #
# Per-process default registry
# --------------------------------------------------------------------- #
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The per-process default registry every layer instruments against."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped default-registry swap (test isolation, overhead baselines).

    Components bind their instruments at *construction* time, so only
    objects constructed inside the block report to ``registry``.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# --------------------------------------------------------------------- #
# Timing helpers
# --------------------------------------------------------------------- #
@contextmanager
def time_block(histogram, **labels: object) -> Iterator[None]:
    """Observe the wall time of a ``with`` block into a histogram.

    ``histogram`` may be a bare instrument or an already-bound child;
    ``labels`` (if any) are resolved once on entry, off the measured path.
    """
    child = histogram.labels(**labels) if labels else histogram
    start = time.perf_counter()
    try:
        yield
    finally:
        child.observe(time.perf_counter() - start)


def timed(histogram, **labels: object):
    """Decorator form of :func:`time_block`."""
    child = histogram.labels(**labels) if labels else histogram

    def decorate(fn):
        @wraps(fn)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                child.observe(time.perf_counter() - start)

        return wrapper

    return decorate
