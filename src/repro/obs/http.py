"""A plain-HTTP ``/metrics`` listener for real Prometheus scrapers.

The socket protocol's ``metrics`` op already makes every serving peer
scrapeable by anything that speaks our framing; this module removes even
that requirement: :class:`MetricsHTTPServer` runs a stdlib
``ThreadingHTTPServer`` in a daemon thread answering ``GET /metrics``
with the rendered exposition text, so an off-the-shelf Prometheus (or
``curl``) can scrape a writer or replica directly.  Enabled by
``repro serve --metrics-port N`` / ``repro replicate --metrics-port N``.

The same listener answers the two orchestration probes (``GET`` or
``HEAD`` — load balancers commonly probe with ``HEAD``, which answers
the same status line and headers with no body):

``/healthz``
    Process liveness — always ``200 {"status": "ok"}`` while the
    listener thread is alive (a hung or dead process simply fails to
    answer, which is the signal).
``/readyz``
    Traffic readiness — evaluates the server's *readiness callback*
    (wired by the CLI to ``QueryService.readiness()``): ``200`` with a
    small JSON body when the node should receive traffic, ``503`` with
    the reason otherwise.  Without a callback the endpoint degrades to
    liveness.  The ``reason`` strings are part of the probe contract
    (see README "Probes & readiness reasons"): writers answer ``service
    closed``, ``store unreadable: ...``, ``store writer lock not held``
    or ``admission queue poisoned (a group commit failed)``; remote
    replicas answer ``closed``, ``last sync failed``, ``peer
    unreachable`` or ``generation lag above threshold``.

Every probe is timed into a ``repro_probe_seconds{probe}`` histogram on
the listener's registry, so dashboards can tell a slow readiness check
(e.g. a store stat on a struggling disk) from a dead process.

No new dependency: only ``http.server`` — acceptable here because the
endpoint serves one small text document to trusted scrapers, not
production query traffic.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.registry import MetricsRegistry, get_registry

#: A readiness callback: ``() -> (ready, JSON-safe detail dict)``.
ReadinessCheck = Callable[[], Tuple[bool, Dict[str, object]]]

#: The bounded label vocabulary for ``repro_probe_seconds``.
_PROBES = ("healthz", "readyz", "metrics")


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._serve(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._serve(include_body=False)

    def _serve(self, include_body: bool) -> None:
        path = self.path.split("?", 1)[0]
        self._include_body = include_body
        probe = {"/healthz": "healthz", "/readyz": "readyz"}.get(path)
        if probe is None and path in ("/metrics", "/"):
            probe = "metrics"
        if probe is None:
            self.send_error(404, "only /metrics, /healthz and /readyz are served here")
            return
        timer = self.server.probe_timers[probe]  # type: ignore[attr-defined]
        start = time.perf_counter()
        try:
            if probe == "healthz":
                self._send_json(200, {"status": "ok"})
            elif probe == "readyz":
                self._serve_readyz()
            else:
                self._serve_metrics()
        finally:
            timer.observe(time.perf_counter() - start)

    def _serve_metrics(self) -> None:
        # Resolved per scrape: a pinned registry if the server has one,
        # else whatever the process default is *now* (use_registry-aware).
        registry = self.server.registry or get_registry()  # type: ignore[attr-defined]
        body = render_prometheus(registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self._include_body:
            self.wfile.write(body)

    def _serve_readyz(self) -> None:
        check = self.server.readiness  # type: ignore[attr-defined]
        ready, detail = True, {}
        if check is not None:
            try:
                ready, detail = check()
            except Exception as exc:  # a probe must never 500 the listener
                ready, detail = False, {"error": str(exc)}
        payload: Dict[str, object] = {"status": "ok" if ready else "unavailable"}
        payload.update(detail or {})
        self._send_json(200 if ready else 503, payload)

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self._include_body:
            self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes must not spam the serving process's stdout


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Registry pinned by MetricsHTTPServer (None: live process default).
    registry: Optional[MetricsRegistry] = None
    #: Readiness callback for /readyz (None: always ready while alive).
    readiness: Optional[ReadinessCheck] = None
    #: Per-probe histogram children for repro_probe_seconds.
    probe_timers: Dict[str, object] = {}


class MetricsHTTPServer:
    """Serve ``GET /metrics`` from a registry on a background thread.

    Parameters
    ----------
    port:
        TCP port to bind (``0`` picks an ephemeral one; read it back
        from :attr:`port`).
    host:
        Bind address (default loopback; bind ``0.0.0.0`` explicitly to
        expose metrics beyond the machine).
    registry:
        Registry to render; ``None`` (default) renders the process
        default registry at scrape time.
    readiness:
        Optional ``() -> (ready, detail dict)`` callback backing
        ``GET /readyz``; without one the probe mirrors liveness.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        readiness: Optional[ReadinessCheck] = None,
    ) -> None:
        self._httpd = _Server((host, int(port)), _MetricsHandler)
        self._httpd.registry = registry
        self._httpd.readiness = readiness
        histogram = (registry if registry is not None else get_registry()).histogram(
            "repro_probe_seconds",
            "Wall time answering one HTTP probe/scrape, by endpoint.",
            ("probe",),
        )
        self._httpd.probe_timers = {p: histogram.labels(probe=p) for p in _PROBES}
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._httpd.server_address[:2]

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            self._httpd.server_close()
            return
        self._httpd.shutdown()
        self._thread.join(timeout=timeout)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "serving" if self._thread is not None else "stopped"
        return f"MetricsHTTPServer({self.host}:{self.port}, {state})"
