"""A dependency-free distributed tracer for the serving stack.

Where the metrics registry (:mod:`repro.obs.registry`) answers "how is
the fleet doing in aggregate", this module answers "why was *this one
request* slow": each traced request produces a tree of :class:`Span`
records — one per tier it touched (server, admission queue wait, WAL
group-commit fsync, shard load, engine compute, replica sync check,
mirror sync) — with monotonic start/end timestamps, attributes and
parentage, collected into a bounded in-memory ring of finished traces.

Sampling
--------
Two knobs, combinable:

``sample_rate``
    Probabilistic head sampling: each *root* request flips a coin once;
    children inherit the decision (children are only recorded when an
    ancestor is).
``slow_ms``
    Always-on-slow: when set, every request is recorded *speculatively*
    and kept only if the root span's duration reaches the threshold (or
    the coin also came up sampled).  This is what links the slow-query
    ring to a full breakdown: the slowest requests always have a trace.

A tracer with ``sample_rate == 0`` and ``slow_ms is None`` is *disabled*
and every entry point degrades to a shared no-op context manager — the
default for every process, so untraced deployments pay only a predicate
check per request.

Context
-------
The current span is thread-local.  :meth:`Tracer.start_request` opens a
root span (optionally adopting a remote wire context — see
:meth:`Tracer.wire_context` for the ``{"trace_id", "parent_span_id",
"sampled"}`` request field), :meth:`Tracer.start_span` opens a child of
whatever is current, and :meth:`Tracer.use_span` re-activates an
existing span on another thread (how the admission queue's writer
thread attributes WAL fsyncs to the request that triggered the batch).
:meth:`Tracer.record_span` backfills an already-elapsed interval from
explicit timestamps (queue wait is only known once the batch is
claimed).

Like the metrics registry, a per-process default tracer
(:func:`get_tracer`) is what the serving layers bind at construction;
:func:`use_tracer` swaps it temporarily for tests and benchmarks.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TraceBuffer",
    "Tracer",
    "get_tracer",
    "render_trace",
    "set_tracer",
    "use_tracer",
]

#: Attribute values are coerced to these JSON-safe scalar types.
_SCALARS = (str, int, float, bool)


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def _clean_attributes(attributes: Optional[Dict[str, object]]) -> Dict[str, object]:
    if not attributes:
        return {}
    return {
        str(k): (v if isinstance(v, _SCALARS) else str(v))
        for k, v in attributes.items()
    }


class _NoopSpan:
    """Absorbs the full span surface at zero cost; never recorded."""

    __slots__ = ()
    recording = False
    trace_id = ""
    span_id = ""
    parent_id = ""
    name = ""

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def set_status(self, status: str, detail: str = "") -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<noop span>"


#: The shared placeholder yielded by every untraced context.
NOOP_SPAN = _NoopSpan()


class _NoopContext:
    """Reusable ``with``-target for the disabled/unsampled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()


class Span:
    """One recorded operation: a named, timed, attributed tree node.

    Timestamps are ``time.perf_counter()`` values (monotonic; only
    differences are meaningful).  The wall-clock anchor lives on the
    trace record, stamped when the root span opens.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "status",
        "detail",
        "_record",
    )

    recording = True

    def __init__(
        self,
        name: str,
        record: "_TraceRecord",
        parent_id: str = "",
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = str(name)
        self.trace_id = record.trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attributes = _clean_attributes(attributes)
        self.status = "ok"
        self.detail = ""
        self._record = record

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[str(key)] = value if isinstance(value, _SCALARS) else str(value)

    def set_status(self, status: str, detail: str = "") -> None:
        self.status = str(status)
        self.detail = str(detail)

    def to_dict(self, epoch: float) -> Dict[str, object]:
        end = self.end if self.end is not None else self.start
        out: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.start - epoch) * 1000.0, 3),
            "duration_ms": round((end - self.start) * 1000.0, 3),
            "status": self.status,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, trace={self.trace_id[:8]}…)"


class _TraceRecord:
    """Mutable collector for one in-flight trace (root + children)."""

    __slots__ = (
        "trace_id",
        "sampled",
        "start_time",
        "lock",
        "spans",
        "closed",
        "dropped",
        "max_spans",
    )

    def __init__(self, trace_id: str, sampled: bool, max_spans: int) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self.start_time = time.time()
        self.lock = threading.Lock()
        self.spans: List[Span] = []
        self.closed = False
        self.dropped = 0
        self.max_spans = max_spans

    def add(self, span: Span) -> bool:
        with self.lock:
            if self.closed or len(self.spans) >= self.max_spans:
                self.dropped += 1
                return False
            self.spans.append(span)
            return True

    def finish(self, root: Span, slow: bool) -> Dict[str, object]:
        """Close the record and freeze it into a JSON-safe trace dict."""
        with self.lock:
            self.closed = True
            spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
            dropped = self.dropped
        end = root.end if root.end is not None else root.start
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "root": root.name,
            "sampled": self.sampled,
            "slow": slow,
            "start_time": self.start_time,
            "duration_ms": round((end - root.start) * 1000.0, 3),
            "spans": [span.to_dict(root.start) for span in spans],
        }
        if dropped:
            out["spans_dropped"] = dropped
        return out


class TraceBuffer:
    """Thread-safe bounded ring of finished traces (newest evicts oldest)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"trace buffer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: deque = deque(maxlen=self.capacity)

    def append(self, trace: Dict[str, object]) -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Finished traces, oldest first; optionally filtered / truncated.

        ``limit`` keeps the *newest* N after filtering (the most recent
        traces are the ones an operator is debugging).
        """
        with self._lock:
            out = list(self._traces)
        if trace_id is not None:
            out = [t for t in out if t.get("trace_id") == trace_id]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


class _SpanContext:
    """``with``-target that finishes ``span`` (and the trace, if root)."""

    __slots__ = ("_tracer", "_span", "_is_root", "_previous")

    def __init__(self, tracer: "Tracer", span: Span, is_root: bool) -> None:
        self._tracer = tracer
        self._span = span
        self._is_root = is_root
        self._previous: object = None

    def __enter__(self) -> Span:
        local = self._tracer._local
        self._previous = getattr(local, "span", None)
        local.span = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = time.perf_counter()
        if exc_type is not None and span.status == "ok":
            span.set_status("error", f"{exc_type.__name__}: {exc}")
        self._tracer._local.span = self._previous
        span._record.add(span)
        if self._is_root:
            self._tracer._finish_trace(span)
        return False


class _ActivateContext:
    """Temporarily make an existing span the thread's current span."""

    __slots__ = ("_tracer", "_span", "_previous")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._previous: object = None

    def __enter__(self) -> Span:
        local = self._tracer._local
        self._previous = getattr(local, "span", None)
        local.span = self._span
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._tracer._local.span = self._previous
        return False


class Tracer:
    """Samples requests into span trees and rings finished traces.

    Parameters
    ----------
    sample_rate:
        Probability in ``[0, 1]`` that a root request is recorded.
    slow_ms:
        When set, record every request speculatively and keep any whose
        root span lasted at least this many milliseconds (on top of the
        probabilistic keeps).
    buffer_capacity:
        How many finished traces the ring retains.
    max_spans_per_trace:
        Per-trace span cap; spans past it are counted as dropped, not
        stored (a runaway sweep must not hold the process's memory).
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        slow_ms: Optional[float] = None,
        buffer_capacity: int = 256,
        max_spans_per_trace: int = 512,
    ) -> None:
        rate = float(sample_rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if slow_ms is not None and float(slow_ms) < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.sample_rate = rate
        self.slow_ms = None if slow_ms is None else float(slow_ms)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.buffer = TraceBuffer(buffer_capacity)
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._started = 0
        self._sampled = 0
        self._kept = 0
        self._kept_slow = 0
        self._discarded = 0
        self._spans = 0

    # -- state ---------------------------------------------------------- #
    @property
    def enabled(self) -> bool:
        """Whether any request can possibly be recorded."""
        return self.sample_rate > 0.0 or self.slow_ms is not None

    def current_span(self) -> Optional[Span]:
        """The thread's active *recording* span, or ``None``."""
        span = getattr(self._local, "span", None)
        return span if isinstance(span, Span) else None

    def current_trace_id(self) -> str:
        """Trace id of the active recording span, or ``""``."""
        span = self.current_span()
        return span.trace_id if span is not None else ""

    # -- span creation --------------------------------------------------- #
    def start_request(
        self,
        name: str,
        remote: object = None,
        attributes: Optional[Dict[str, object]] = None,
    ):
        """Open a *root* span for one request (the sampling point).

        ``remote`` is the optional wire-context dict from the request's
        ``trace`` field; a valid, sampled remote context is adopted
        (same trace id, root parented under the caller's span) so one
        trace id spans client and server processes.  Anything invalid —
        old clients, hand-rolled frames — is ignored.
        """
        if not self.enabled:
            return _NOOP_CONTEXT
        trace_id = ""
        parent_id = ""
        sampled = False
        ctx = _valid_wire_context(remote)
        if ctx is not None:
            trace_id, parent_id = ctx
            sampled = True
        elif self.sample_rate > 0.0 and (
            self.sample_rate >= 1.0 or random.random() < self.sample_rate
        ):
            sampled = True
        if not sampled and self.slow_ms is None:
            with self._stats_lock:
                self._started += 1
            return _NOOP_CONTEXT
        record = _TraceRecord(
            trace_id or _new_trace_id(), sampled, self.max_spans_per_trace
        )
        span = Span(name, record, parent_id=parent_id, attributes=attributes)
        with self._stats_lock:
            self._started += 1
            self._spans += 1
            if sampled:
                self._sampled += 1
        return _SpanContext(self, span, is_root=True)

    def start_span(
        self, name: str, attributes: Optional[Dict[str, object]] = None
    ):
        """Open a child of the current span (no-op when nothing records)."""
        parent = getattr(self._local, "span", None)
        if not isinstance(parent, Span):
            return _NOOP_CONTEXT
        span = Span(
            name, parent._record, parent_id=parent.span_id, attributes=attributes
        )
        with self._stats_lock:
            self._spans += 1
        return _SpanContext(self, span, is_root=False)

    def use_span(self, span: Optional[Span]):
        """Re-activate ``span`` on this thread (cross-thread attribution).

        ``None`` or a non-recording span yields the shared no-op, so
        callers can unconditionally ``with tracer.use_span(maybe_span):``.
        """
        if not isinstance(span, Span):
            return _NOOP_CONTEXT
        return _ActivateContext(self, span)

    def record_span(
        self,
        name: str,
        parent: Optional[Span],
        start: float,
        end: float,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Optional[Span]:
        """Backfill an already-elapsed interval under ``parent``.

        ``start``/``end`` are ``time.perf_counter()`` stamps taken by the
        caller (e.g. admission submit/claim times).  Returns the span, or
        ``None`` when nothing was recorded (no parent, trace closed).
        """
        if not isinstance(parent, Span):
            return None
        span = Span(
            name, parent._record, parent_id=parent.span_id, attributes=attributes
        )
        span.start = float(start)
        span.end = float(end)
        if not parent._record.add(span):
            return None
        with self._stats_lock:
            self._spans += 1
        return span

    # -- propagation ----------------------------------------------------- #
    def wire_context(self) -> Optional[Dict[str, object]]:
        """The ``trace`` request field for the current span, or ``None``.

        Only *sampled* contexts propagate: a speculative slow-only trace
        stays process-local (the remote peer cannot retroactively learn
        that the whole request turned out slow).
        """
        span = self.current_span()
        if span is None or not span._record.sampled:
            return None
        return {
            "trace_id": span.trace_id,
            "parent_span_id": span.span_id,
            "sampled": True,
        }

    # -- completion ------------------------------------------------------ #
    def _finish_trace(self, root: Span) -> None:
        record = root._record
        end = root.end if root.end is not None else root.start
        duration_ms = (end - root.start) * 1000.0
        slow = self.slow_ms is not None and duration_ms >= self.slow_ms
        if not record.sampled and not slow:
            with self._stats_lock:
                self._discarded += 1
            return
        trace = record.finish(root, slow)
        self.buffer.append(trace)
        with self._stats_lock:
            self._kept += 1
            if slow:
                self._kept_slow += 1

    # -- export ---------------------------------------------------------- #
    def finished_traces(
        self, trace_id: Optional[str] = None, limit: Optional[int] = 20
    ) -> List[Dict[str, object]]:
        """Finished traces from the ring (see :meth:`TraceBuffer.traces`)."""
        return self.buffer.traces(trace_id=trace_id, limit=limit)

    def stats(self) -> Dict[str, object]:
        """JSON-safe counters (the ``stats()["tracing"]`` payload)."""
        with self._stats_lock:
            return {
                "enabled": self.enabled,
                "sample_rate": self.sample_rate,
                "slow_ms": self.slow_ms,
                "requests": self._started,
                "sampled": self._sampled,
                "kept": self._kept,
                "kept_slow": self._kept_slow,
                "discarded": self._discarded,
                "spans": self._spans,
                "buffered": len(self.buffer),
            }


def _valid_wire_context(remote: object) -> Optional[Tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a sampled wire dict, else None."""
    if not isinstance(remote, dict) or not remote.get("sampled"):
        return None
    trace_id = remote.get("trace_id")
    if not isinstance(trace_id, str) or not 8 <= len(trace_id) <= 64:
        return None
    try:
        int(trace_id, 16)
    except ValueError:
        return None
    parent = remote.get("parent_span_id", "")
    if not isinstance(parent, str) or len(parent) > 64:
        parent = ""
    return trace_id, parent


# --------------------------------------------------------------------- #
# Rendering (the `repro trace` CLI)
# --------------------------------------------------------------------- #
def render_trace(trace: Dict[str, object]) -> str:
    """Render one finished trace dict as an indented span tree."""
    spans = list(trace.get("spans") or [])
    header = (
        f"trace {trace.get('trace_id', '?')}  root={trace.get('root', '?')}  "
        f"duration={float(trace.get('duration_ms') or 0.0):.2f}ms"
    )
    flags = [flag for flag in ("sampled", "slow") if trace.get(flag)]
    if flags:
        header += "  [" + ",".join(flags) + "]"
    lines = [header]
    if trace.get("spans_dropped"):
        lines.append(f"  ({trace['spans_dropped']} span(s) dropped: trace full)")

    ids = {span.get("span_id") for span in spans}
    children: Dict[object, List[dict]] = {}
    roots: List[dict] = []
    for span in spans:
        parent = span.get("parent_id") or ""
        if parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def _emit(span: dict, depth: int) -> None:
        name = str(span.get("name", "?"))
        duration = float(span.get("duration_ms") or 0.0)
        start = float(span.get("start_ms") or 0.0)
        label = "  " * depth + name
        line = f"  {label:<40s} {start:9.2f}ms +{duration:9.2f}ms"
        if span.get("status") not in (None, "ok"):
            line += f"  !{span['status']}"
            if span.get("detail"):
                line += f" ({span['detail']})"
        attrs = span.get("attributes")
        if attrs:
            rendered = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            line += f"  {{{rendered}}}"
        lines.append(line)
        for child in children.get(span.get("span_id"), ()):
            _emit(child, depth + 1)

    for root in roots:
        _emit(root, 0)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Per-process default tracer
# --------------------------------------------------------------------- #
_default_tracer = Tracer()  # disabled: zero overhead until configured
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The per-process default tracer every layer binds at construction."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one."""
    global _default_tracer
    with _default_lock:
        previous, _default_tracer = _default_tracer, tracer
    return previous


def use_tracer(tracer: Tracer):
    """Scoped default-tracer swap (mirrors :func:`use_registry`).

    Components bind their tracer at *construction* time, so only objects
    constructed inside the block emit spans to ``tracer``.
    """
    return _TracerSwap(tracer)


class _TracerSwap:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        if self._previous is not None:
            set_tracer(self._previous)
        return False
