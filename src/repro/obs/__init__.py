"""Production observability: metrics registry, exposition, scrape endpoint.

The serving stack instruments itself against a per-process default
:class:`MetricsRegistry` (:func:`get_registry`): the engine's LRU cache,
the sharded store's residency cache, the write-ahead log, background
compaction, the admission queue, the socket server and the replication
mirror each register counters/gauges/histograms at construction and
increment them on their hot paths (lock-striped; see
:mod:`repro.obs.registry`).

The registry is surfaced three ways:

* ``QueryService.stats()`` embeds :meth:`MetricsRegistry.snapshot` — a
  JSON-safe plain-dict view — under ``"metrics"``;
* the idempotent ``metrics`` request op answers the rendered Prometheus
  text (:func:`render_prometheus`) over the existing socket protocol;
* :class:`MetricsHTTPServer` serves ``GET /metrics`` over plain HTTP
  (``repro serve --metrics-port N``) for off-the-shelf scrapers, plus
  ``/healthz`` (liveness) and ``/readyz`` (readiness) probes.

Per-request tracing lives in :mod:`repro.obs.trace`: a sampled
:class:`Tracer` (probabilistic + always-on-slow) collects per-tier
:class:`Span` trees into a bounded ring, with trace context propagated
over the socket protocol's optional ``trace`` request field.  Surfaced
by the ``trace`` op, ``stats()["tracing"]`` and ``repro trace``.

See README "Observability" for the metric and span catalogues.
"""

from repro.obs.http import MetricsHTTPServer
from repro.obs.process import register_process_metrics
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceBuffer,
    Tracer,
    get_tracer,
    render_trace,
    set_tracer,
    use_tracer,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    time_block,
    timed,
    use_registry,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NullRegistry",
    "Span",
    "TraceBuffer",
    "Tracer",
    "get_registry",
    "get_tracer",
    "register_process_metrics",
    "render_prometheus",
    "render_trace",
    "set_registry",
    "set_tracer",
    "time_block",
    "timed",
    "use_registry",
    "use_tracer",
]
