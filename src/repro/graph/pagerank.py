"""PageRank by power iteration on the CSR adjacency.

Used by the paper's Table II experiment: ranking diseases by PageRank on the
clique expansion (s=1) versus the s-clique graphs (s=10, 100) of the
disease–gene hypergraph, showing the top-ranked entities are stable across
the (much sparser) high-order expansions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import ValidationError


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    weighted: bool = False,
    personalization: Optional[np.ndarray] = None,
) -> np.ndarray:
    """PageRank scores of every vertex (sums to 1).

    Parameters
    ----------
    graph:
        Undirected CSR graph; each undirected edge acts as two directed edges.
    damping:
        Teleportation damping factor in ``(0, 1)``.
    tol:
        L1 convergence tolerance between successive iterations.
    max_iter:
        Iteration cap; a :class:`RuntimeError` is raised when not converged.
    weighted:
        When True transition probabilities are proportional to edge weights.
    personalization:
        Optional restart distribution (normalised internally).
    """
    if not 0.0 < damping < 1.0:
        raise ValidationError("damping must be in (0, 1)")
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    adjacency = graph.adjacency_matrix(weighted=weighted)
    out_weight = np.asarray(adjacency.sum(axis=1)).ravel()
    dangling = out_weight == 0
    inv_out = np.zeros(n, dtype=np.float64)
    inv_out[~dangling] = 1.0 / out_weight[~dangling]
    # Row-stochastic transition matrix (transposed application below).
    transition = adjacency.multiply(inv_out[:, None]).tocsr()

    if personalization is None:
        restart = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        restart = np.asarray(personalization, dtype=np.float64)
        if restart.size != n:
            raise ValidationError("personalization must have one entry per vertex")
        total = restart.sum()
        if total <= 0:
            raise ValidationError("personalization must have positive mass")
        restart = restart / total

    rank = np.full(n, 1.0 / n, dtype=np.float64)
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum()
        new_rank = (
            damping * (transition.T @ rank + dangling_mass * restart)
            + (1.0 - damping) * restart
        )
        err = np.abs(new_rank - rank).sum()
        rank = new_rank
        if err < tol:
            return rank / rank.sum()
    raise RuntimeError(f"PageRank did not converge within {max_iter} iterations")


def rank_order(scores: np.ndarray, descending: bool = True) -> np.ndarray:
    """Vertex IDs sorted by score (stable; ties broken by vertex ID)."""
    order = np.argsort(scores, kind="stable")
    return order[::-1] if descending else order


def score_percentiles(scores: np.ndarray) -> np.ndarray:
    """Percentile (0–100) of each vertex's score among all scores.

    The paper's Table II reports, next to each ordinal rank, the percentile
    of the disease's PageRank score; ties share the same percentile.
    """
    n = scores.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if n == 1:
        return np.array([100.0])
    # "Weak" percentile: fraction of scores less than or equal to the score,
    # so the top score (and any ties for it) sits at 100%.
    sorted_scores = np.sort(scores)
    positions = np.searchsorted(sorted_scores, scores, side="right")
    return positions / n * 100.0
