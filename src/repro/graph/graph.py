"""A compact undirected weighted graph in CSR form.

The s-line graphs produced by the framework are ordinary undirected graphs;
this class stores them as a symmetric CSR adjacency (both directions of each
edge are stored) over ``numpy`` arrays, which is what the BFS/centrality/
PageRank kernels in this subpackage traverse.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.utils.validation import ValidationError, check_array_int


class Graph:
    """An undirected, optionally weighted graph stored as symmetric CSR.

    Parameters
    ----------
    num_vertices:
        Number of vertices (IDs ``0..num_vertices-1``).
    indptr, indices:
        CSR adjacency arrays storing *both* directions of every edge.
    weights:
        Optional per-stored-entry weights aligned with ``indices``.
    """

    __slots__ = ("num_vertices", "indptr", "indices", "weights", "metadata")

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        if num_vertices < 0:
            raise ValidationError("num_vertices must be non-negative")
        self.num_vertices = int(num_vertices)
        self.indptr = check_array_int(indptr, "indptr")
        self.indices = check_array_int(indices, "indices")
        if self.indptr.size != self.num_vertices + 1:
            raise ValidationError("indptr must have length num_vertices + 1")
        if int(self.indptr[-1]) != self.indices.size:
            raise ValidationError("indptr[-1] must equal len(indices)")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise ValidationError("neighbour indices out of range")
        if weights is None:
            self.weights = np.ones(self.indices.size, dtype=np.float64)
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.shape != self.indices.shape:
                raise ValidationError("weights must align with indices")
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls,
        num_vertices: int,
        edges: np.ndarray | Sequence[Tuple[int, int]],
        weights: Optional[np.ndarray | Sequence[float]] = None,
    ) -> "Graph":
        """Build from an undirected edge list ``(k, 2)`` (duplicates collapsed).

        Each input edge is stored in both directions.  Self-loops are
        rejected — s-line graphs never contain them.
        """
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            w = np.ones(arr.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.size != arr.shape[0]:
                raise ValidationError("weights length must equal the number of edges")
        if arr.size and np.any(arr[:, 0] == arr[:, 1]):
            raise ValidationError("self-loops are not supported")
        if arr.size and (arr.min() < 0 or arr.max() >= num_vertices):
            raise ValidationError("edge endpoint out of range")
        if arr.shape[0] == 0:
            return cls(
                num_vertices,
                np.zeros(num_vertices + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        # Symmetrise and deduplicate.
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        order = np.lexsort((hi, lo))
        lo, hi, w = lo[order], hi[order], w[order]
        keep = np.ones(lo.size, dtype=bool)
        keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        lo, hi, w = lo[keep], hi[keep], w[keep]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        val = np.concatenate([w, w])
        order = np.lexsort((dst, src))
        src, dst, val = src[order], dst[order], val[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, dst, val)

    @classmethod
    def from_scipy(cls, adjacency: sparse.spmatrix) -> "Graph":
        """Build from a symmetric scipy adjacency matrix (diagonal dropped)."""
        adj = sparse.csr_matrix(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise ValidationError("adjacency matrix must be square")
        adj = adj.tolil()
        adj.setdiag(0)
        adj = adj.tocsr()
        adj.eliminate_zeros()
        adj.sort_indices()
        return cls(
            num_vertices=adj.shape[0],
            indptr=adj.indptr.astype(np.int64),
            indices=adj.indices.astype(np.int64),
            weights=adj.data.astype(np.float64),
        )

    # ------------------------------------------------------------------ #
    # Shape / access
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size // 2)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour IDs of vertex ``v``."""
        if v < 0 or v >= self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Number of neighbours of ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex."""
        return np.diff(self.indptr)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for idx in range(self.indptr[u], self.indptr[u + 1]):
                v = int(self.indices[idx])
                if u < v:
                    yield u, v, float(self.weights[idx])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` is present."""
        return bool(np.isin(v, self.neighbors(u)).item())

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self, weighted: bool = True) -> sparse.csr_matrix:
        """The symmetric adjacency matrix as scipy CSR."""
        data = self.weights if weighted else np.ones(self.indices.size, dtype=np.float64)
        return sparse.csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.num_vertices, self.num_vertices),
        )

    def subgraph(self, vertex_ids: Sequence[int] | np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph; returns ``(graph, kept_vertex_ids)`` with compact IDs."""
        keep = np.unique(np.asarray(vertex_ids, dtype=np.int64))
        if keep.size and (keep.min() < 0 or keep.max() >= self.num_vertices):
            raise ValidationError("vertex id out of range")
        lookup = np.full(self.num_vertices, -1, dtype=np.int64)
        lookup[keep] = np.arange(keep.size, dtype=np.int64)
        edges = []
        weights = []
        for u, v, w in self.edges():
            if lookup[u] >= 0 and lookup[v] >= 0:
                edges.append((lookup[u], lookup[v]))
                weights.append(w)
        sub = Graph.from_edge_list(
            keep.size,
            np.asarray(edges, dtype=np.int64).reshape(-1, 2),
            np.asarray(weights, dtype=np.float64),
        )
        return sub, keep

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"
