"""Union–find (disjoint-set) connected components.

A third connected-components implementation besides BFS and label
propagation: the union–find formulation is the one used by edge-centric
frameworks (and by Hygra's connected-components variants the paper compares
against in Table V's discussion).  Having three independent implementations
lets the test suite cross-validate them on the s-line graphs.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import ValidationError, check_positive_int


class DisjointSet:
    """Array-based disjoint-set forest with path compression and union by size."""

    def __init__(self, num_elements: int) -> None:
        if num_elements < 0:
            raise ValidationError("num_elements must be non-negative")
        self._parent = np.arange(num_elements, dtype=np.int64)
        self._size = np.ones(num_elements, dtype=np.int64)
        self._num_sets = num_elements

    @property
    def num_elements(self) -> int:
        """Number of elements in the universe."""
        return int(self._parent.size)

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._num_sets

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path compression)."""
        if x < 0 or x >= self._parent.size:
            raise IndexError(f"element {x} out of range")
        root = x
        while self._parent[root] != root:
            root = int(self._parent[root])
        # Path compression.
        while self._parent[x] != root:
            self._parent[x], x = root, int(self._parent[x])
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._num_sets -= 1
        return True

    def same_set(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` currently belong to the same set."""
        return self.find(a) == self.find(b)

    def labels(self) -> np.ndarray:
        """Compact 0-based set label of every element (by first occurrence)."""
        n = self._parent.size
        roots = np.array([self.find(i) for i in range(n)], dtype=np.int64)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)


def union_find_components(graph: Graph) -> np.ndarray:
    """Connected-component label of every vertex via union–find."""
    ds = DisjointSet(graph.num_vertices)
    for u, v, _ in graph.edges():
        ds.union(u, v)
    return ds.labels()


def union_find_components_from_edges(
    num_vertices: int, edges: Iterable[Tuple[int, int]]
) -> np.ndarray:
    """Component labels directly from an edge iterable (no Graph needed)."""
    num_vertices = check_positive_int(num_vertices, "num_vertices", minimum=0)
    ds = DisjointSet(num_vertices)
    for u, v in edges:
        ds.union(int(u), int(v))
    return ds.labels()
