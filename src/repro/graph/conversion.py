"""Conversion between :class:`repro.graph.Graph` and :mod:`networkx` graphs.

networkx is used as an oracle in the test suite and for the paper's
visualisation-style examples (Figure 5 plots line graphs with NetworkX).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import ValidationError


def to_networkx(graph: Graph):
    """Convert to a weighted :class:`networkx.Graph` (attribute ``weight``)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


def from_networkx(nx_graph) -> Graph:
    """Convert a networkx graph with integer-labelled nodes ``0..n-1``.

    Nodes must already be consecutive integers (relabel with
    ``networkx.convert_node_labels_to_integers`` beforehand if not); edge
    ``weight`` attributes are carried over (default 1).
    """
    nodes = list(nx_graph.nodes())
    n = len(nodes)
    if sorted(nodes) != list(range(n)):
        raise ValidationError(
            "networkx graph nodes must be the integers 0..n-1; "
            "use networkx.convert_node_labels_to_integers first"
        )
    edges = []
    weights = []
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        edges.append((int(u), int(v)))
        weights.append(float(data.get("weight", 1.0)))
    return Graph.from_edge_list(
        n,
        np.asarray(edges, dtype=np.int64).reshape(-1, 2),
        np.asarray(weights, dtype=np.float64),
    )
