"""Connected components: BFS-based and label-propagation (LPCC).

The paper's Table V times a Label-Propagation Connected Components run on
the s-line graphs (s=1 clique expansion versus s=8), and Table I includes an
"s-connected components" stage.  Both flavours are provided:

* :func:`connected_components` — BFS sweep, linear time, deterministic;
* :func:`label_propagation_components` — iterative min-label propagation
  (the classic data-parallel LPCC formulation used by Hygra/MESH), which
  converges to the same partition but whose cost is rounds × edges.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graph.graph import Graph


def connected_components(graph: Graph) -> np.ndarray:
    """Component label of every vertex (labels are 0-based, in discovery order)."""
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    current = 0
    for start in range(graph.num_vertices):
        if labels[start] != -1:
            continue
        labels[start] = current
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for v in graph.neighbors(u):
                v = int(v)
                if labels[v] == -1:
                    labels[v] = current
                    frontier.append(v)
        current += 1
    return labels


def label_propagation_components(graph: Graph, max_rounds: int = 0) -> np.ndarray:
    """Connected components by iterative minimum-label propagation (LPCC).

    Every vertex starts with its own ID as label; in each round every vertex
    adopts the minimum label in its closed neighbourhood; iteration stops
    when no label changes.  Labels are then compacted to 0-based component
    IDs.  ``max_rounds=0`` means "until convergence".
    """
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    if graph.num_vertices == 0:
        return labels
    rounds = 0
    changed = True
    while changed and (max_rounds == 0 or rounds < max_rounds):
        changed = False
        rounds += 1
        # Gather the minimum neighbour label per vertex (vectorised gather/scatter).
        new_labels = labels.copy()
        for u in range(graph.num_vertices):
            nbrs = graph.neighbors(u)
            if nbrs.size:
                candidate = min(int(labels[nbrs].min()), int(labels[u]))
                if candidate < new_labels[u]:
                    new_labels[u] = candidate
                    changed = True
        labels = new_labels
    # Compact labels to 0..k-1 (deterministic order by representative ID).
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Size of each component given a label array."""
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.bincount(labels.astype(np.int64))


def components_as_lists(labels: np.ndarray) -> List[np.ndarray]:
    """Vertex IDs per component, ordered by component label."""
    out: List[np.ndarray] = []
    if labels.size == 0:
        return out
    for c in range(int(labels.max()) + 1):
        out.append(np.flatnonzero(labels == c))
    return out


def largest_component(graph: Graph) -> np.ndarray:
    """Vertex IDs of the largest connected component (ties broken by label)."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    sizes = component_sizes(labels)
    return np.flatnonzero(labels == int(np.argmax(sizes)))
