"""Brandes betweenness centrality (unweighted).

s-betweenness centrality of a hyperedge (Section II-B of the paper) is the
ordinary betweenness centrality of the corresponding vertex in the s-line
graph, so the standard Brandes algorithm applies: one BFS plus a dependency
back-propagation per source, O(V·E) total for unweighted graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import ValidationError


def betweenness_centrality(
    graph: Graph, normalized: bool = True, endpoints: bool = False
) -> np.ndarray:
    """Betweenness centrality of every vertex (Brandes' algorithm).

    Parameters
    ----------
    graph:
        Undirected CSR graph (edge weights are ignored; hops count as 1).
    normalized:
        Divide by the number of vertex pairs ``(n−1)(n−2)/2`` (undirected),
        matching :func:`networkx.betweenness_centrality`.
    endpoints:
        Include path endpoints in the count (networkx-compatible option).
    """
    n = graph.num_vertices
    centrality = np.zeros(n, dtype=np.float64)
    for source in range(n):
        # Single-source shortest paths (BFS) with path counting.
        sigma = np.zeros(n, dtype=np.float64)
        sigma[source] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[source] = 0
        predecessors: list[list[int]] = [[] for _ in range(n)]
        order: list[int] = []
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            order.append(u)
            du = dist[u]
            for v in graph.neighbors(u):
                v = int(v)
                if dist[v] == -1:
                    dist[v] = du + 1
                    frontier.append(v)
                if dist[v] == du + 1:
                    sigma[v] += sigma[u]
                    predecessors[v].append(u)
        # Dependency accumulation in reverse BFS order.
        delta = np.zeros(n, dtype=np.float64)
        for v in reversed(order):
            for u in predecessors[v]:
                delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v])
            if v != source:
                centrality[v] += delta[v]
        if endpoints:
            reached = np.count_nonzero(dist >= 0) - 1
            centrality[source] += reached
            centrality[dist >= 1] += 1.0
    # Each undirected pair was counted from both endpoints.
    centrality /= 2.0
    if normalized:
        if endpoints:
            scale = 2.0 / (n * (n - 1)) if n > 1 else 1.0
        else:
            scale = 2.0 / ((n - 1) * (n - 2)) if n > 2 else 1.0
        centrality *= scale
    return centrality


def _single_source_dependencies(graph: Graph, source: int) -> np.ndarray:
    """Brandes dependency contribution of one BFS source (helper for sampling)."""
    n = graph.num_vertices
    sigma = np.zeros(n, dtype=np.float64)
    sigma[source] = 1.0
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    predecessors: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        order.append(u)
        du = dist[u]
        for v in graph.neighbors(u):
            v = int(v)
            if dist[v] == -1:
                dist[v] = du + 1
                frontier.append(v)
            if dist[v] == du + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    delta = np.zeros(n, dtype=np.float64)
    contribution = np.zeros(n, dtype=np.float64)
    for v in reversed(order):
        for u in predecessors[v]:
            delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v])
        if v != source:
            contribution[v] = delta[v]
    return contribution


def betweenness_centrality_sampled(
    graph: Graph,
    num_sources: int,
    normalized: bool = True,
    seed: SeedLike = None,
    sources: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Approximate betweenness centrality from a sample of BFS sources.

    The exact Brandes algorithm runs one BFS per vertex, which is the
    bottleneck of Stage 5 on dense low-``s`` line graphs; sampling ``k``
    source vertices uniformly (Brandes–Pich estimator) scales the summed
    dependencies by ``n / k`` and converges to the exact values as ``k → n``.

    Parameters
    ----------
    graph:
        Undirected CSR graph.
    num_sources:
        Number of pivot sources to sample (clamped to ``n``); ignored when an
        explicit ``sources`` sequence is given.
    normalized:
        Apply the same pair-count normalisation as the exact algorithm.
    seed:
        RNG seed for pivot selection.
    sources:
        Optional explicit pivot set (deduplicated); useful for tests.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    if sources is None:
        if num_sources < 1:
            raise ValidationError("num_sources must be >= 1")
        rng = make_rng(seed)
        k = min(int(num_sources), n)
        pivots = rng.choice(n, size=k, replace=False)
    else:
        pivots = np.unique(np.asarray(list(sources), dtype=np.int64))
        if pivots.size == 0:
            raise ValidationError("sources must be non-empty")
        if pivots.min() < 0 or pivots.max() >= n:
            raise ValidationError("source vertex out of range")
        k = int(pivots.size)
    centrality = np.zeros(n, dtype=np.float64)
    for source in pivots:
        centrality += _single_source_dependencies(graph, int(source))
    # Scale the sample to the full source population, then halve for the
    # undirected double counting (as in the exact algorithm).
    centrality *= (n / k) / 2.0
    if normalized:
        scale = 2.0 / ((n - 1) * (n - 2)) if n > 2 else 1.0
        centrality *= scale
    return centrality
