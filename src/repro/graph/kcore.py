"""k-core decomposition of CSR graphs.

Core numbers of the s-line graph identify the densest groups of strongly
overlapping hyperedges (e.g. the "core of Friendster" communities the paper
finds at s = 1024); they complement the s-connected-component analysis of
Stage 5.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import check_positive_int


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of every vertex (Batagelj–Zaveršnik peeling, O(E))."""
    n = graph.num_vertices
    degrees = graph.degrees().astype(np.int64).copy()
    core = degrees.copy()
    if n == 0:
        return core
    # Bucket sort vertices by degree.
    max_degree = int(degrees.max()) if n else 0
    bin_starts = np.zeros(max_degree + 2, dtype=np.int64)
    counts = np.bincount(degrees, minlength=max_degree + 1)
    np.cumsum(counts, out=bin_starts[1:])
    position = np.empty(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    cursor = bin_starts[:-1].copy()
    for v in range(n):
        d = degrees[v]
        position[v] = cursor[d]
        order[position[v]] = v
        cursor[d] += 1
    bin_ptr = bin_starts[:-1].copy()

    current = degrees.copy()
    for idx in range(n):
        v = order[idx]
        core[v] = current[v]
        for u in graph.neighbors(v):
            u = int(u)
            if current[u] > current[v]:
                du = current[u]
                pu = position[u]
                pw = bin_ptr[du]
                w = order[pw]
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_ptr[du] += 1
                current[u] -= 1
    return core


def k_core_vertices(graph: Graph, k: int) -> np.ndarray:
    """Vertices of the k-core (maximal subgraph with all degrees >= k)."""
    k = check_positive_int(k, "k", minimum=0)
    return np.flatnonzero(core_numbers(graph) >= k).astype(np.int64)


def k_core_subgraph(graph: Graph, k: int) -> Tuple[Graph, np.ndarray]:
    """The induced k-core subgraph and the original IDs of its vertices."""
    members = k_core_vertices(graph, k)
    return graph.subgraph(members)


def degeneracy(graph: Graph) -> int:
    """The graph degeneracy: the largest k for which the k-core is non-empty."""
    if graph.num_vertices == 0:
        return 0
    return int(core_numbers(graph).max())
