"""Graph substrate: CSR graphs and the standard algorithms applied to s-line graphs.

Once an s-line graph is built (Stage 3/4 of the framework), the paper's
Stage 5 runs ordinary graph analytics on it: connected components (both
BFS-based and label-propagation, the latter matching the paper's LPCC
experiments), betweenness centrality, PageRank, distances and spectral
measures.  This subpackage implements those algorithms from scratch on a
compact CSR graph type; :mod:`networkx` is used only as a correctness oracle
in the test suite.
"""

from repro.graph.graph import Graph
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.connected_components import (
    connected_components,
    label_propagation_components,
    component_sizes,
    components_as_lists,
)
from repro.graph.betweenness import betweenness_centrality, betweenness_centrality_sampled
from repro.graph.pagerank import pagerank
from repro.graph.distance import (
    eccentricity,
    diameter,
    closeness_centrality,
    harmonic_centrality,
    all_pairs_shortest_path_lengths,
)
from repro.graph.conversion import to_networkx, from_networkx
from repro.graph.kcore import core_numbers, k_core_vertices, k_core_subgraph, degeneracy
from repro.graph.clustering import (
    triangle_counts,
    total_triangles,
    clustering_coefficients,
    average_clustering,
    transitivity,
)
from repro.graph.union_find import DisjointSet, union_find_components

__all__ = [
    "DisjointSet",
    "union_find_components",
    "core_numbers",
    "k_core_vertices",
    "k_core_subgraph",
    "degeneracy",
    "triangle_counts",
    "total_triangles",
    "clustering_coefficients",
    "average_clustering",
    "transitivity",
    "Graph",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "label_propagation_components",
    "component_sizes",
    "components_as_lists",
    "betweenness_centrality",
    "betweenness_centrality_sampled",
    "pagerank",
    "eccentricity",
    "diameter",
    "closeness_centrality",
    "harmonic_centrality",
    "all_pairs_shortest_path_lengths",
    "to_networkx",
    "from_networkx",
]
