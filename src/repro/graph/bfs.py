"""Breadth-first search on CSR graphs.

Unweighted BFS is the workhorse behind s-distance, s-eccentricity,
s-closeness and s-betweenness: the s-line graph's edges are unweighted for
distance purposes (an s-walk step is one hop regardless of overlap size).
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from repro.graph.graph import Graph

#: Sentinel distance for unreachable vertices.
UNREACHABLE = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every vertex (−1 when unreachable)."""
    if source < 0 or source >= graph.num_vertices:
        raise IndexError(f"source {source} out of range")
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            v = int(v)
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                frontier.append(v)
    return dist


def bfs_tree(graph: Graph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS distances and predecessors (−1 for the source and unreachable vertices)."""
    dist = np.full(graph.num_vertices, UNREACHABLE, dtype=np.int64)
    pred = np.full(graph.num_vertices, -1, dtype=np.int64)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            v = int(v)
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                pred[v] = u
                frontier.append(v)
    return dist, pred


def bfs_frontier_levels(graph: Graph, source: int) -> list[np.ndarray]:
    """The BFS level sets (frontiers) from ``source``, level 0 first."""
    dist = bfs_distances(graph, source)
    max_level = int(dist.max()) if np.any(dist >= 0) else 0
    return [np.flatnonzero(dist == level) for level in range(max_level + 1)]
