"""Triangle counting and clustering coefficients on CSR graphs.

Clustering coefficients are among the motif-based hypergraph analytics the
paper's related-work section cites (Estrada & Rodríguez-Velázquez); applied
to the s-line graph they measure how clique-like the strongly-overlapping
hyperedge neighbourhoods are.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def triangle_counts(graph: Graph) -> np.ndarray:
    """Number of triangles through each vertex (each triangle counted once per member)."""
    n = graph.num_vertices
    counts = np.zeros(n, dtype=np.int64)
    neighbor_sets = [set(map(int, graph.neighbors(v))) for v in range(n)]
    for u in range(n):
        nbrs_u = graph.neighbors(u)
        for v in nbrs_u:
            v = int(v)
            if v <= u:
                continue
            common = neighbor_sets[u] & neighbor_sets[v]
            for w in common:
                if w > v:
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return counts


def total_triangles(graph: Graph) -> int:
    """Total number of distinct triangles in the graph."""
    return int(triangle_counts(graph).sum() // 3)


def clustering_coefficients(graph: Graph) -> np.ndarray:
    """Local clustering coefficient of every vertex (0 for degree < 2)."""
    degrees = graph.degrees().astype(np.float64)
    triangles = triangle_counts(graph).astype(np.float64)
    possible = degrees * (degrees - 1.0) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        coeffs = np.where(possible > 0, triangles / possible, 0.0)
    return coeffs


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all vertices (0 for empty graphs)."""
    if graph.num_vertices == 0:
        return 0.0
    return float(clustering_coefficients(graph).mean())


def transitivity(graph: Graph) -> float:
    """Global transitivity: 3 × triangles / number of connected vertex triples."""
    degrees = graph.degrees().astype(np.float64)
    triples = float((degrees * (degrees - 1.0) / 2.0).sum())
    if triples == 0:
        return 0.0
    return 3.0 * total_triangles(graph) / triples
