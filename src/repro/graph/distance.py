"""Distance-based measures: eccentricity, diameter, closeness, harmonic centrality.

These back the paper's s-distance, s-eccentricity and s-closeness measures:
the s-distance between hyperedges is the hop distance between the
corresponding vertices of the s-line graph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.bfs import UNREACHABLE, bfs_distances
from repro.graph.graph import Graph


def all_pairs_shortest_path_lengths(graph: Graph) -> np.ndarray:
    """Dense hop-distance matrix (−1 for unreachable pairs).  O(V·E) via BFS."""
    n = graph.num_vertices
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for source in range(n):
        out[source] = bfs_distances(graph, source)
    return out


def eccentricity(graph: Graph, within_component: bool = True) -> np.ndarray:
    """Eccentricity of every vertex.

    With ``within_component=True`` (default) unreachable pairs are ignored,
    so the eccentricity of a vertex is taken within its connected component
    (the convention the paper uses when reporting per-component s-measures).
    Isolated vertices get eccentricity 0.
    """
    n = graph.num_vertices
    out = np.zeros(n, dtype=np.int64)
    for source in range(n):
        dist = bfs_distances(graph, source)
        reachable = dist[dist >= 0]
        if not within_component and np.any(dist == UNREACHABLE):
            out[source] = np.iinfo(np.int64).max
        else:
            out[source] = int(reachable.max()) if reachable.size else 0
    return out


def diameter(graph: Graph) -> int:
    """Largest eccentricity across vertices (per-component convention)."""
    if graph.num_vertices == 0:
        return 0
    return int(eccentricity(graph).max())


def closeness_centrality(graph: Graph, wf_improved: bool = True) -> np.ndarray:
    """Closeness centrality of every vertex (networkx-compatible).

    ``wf_improved`` applies the Wasserman–Faust correction for disconnected
    graphs: the score is scaled by the fraction of vertices reachable.
    """
    n = graph.num_vertices
    out = np.zeros(n, dtype=np.float64)
    for source in range(n):
        dist = bfs_distances(graph, source)
        reachable = dist > 0
        total = float(dist[reachable].sum())
        count = int(np.count_nonzero(reachable))
        if total > 0:
            score = count / total
            if wf_improved and n > 1:
                score *= count / (n - 1)
            out[source] = score
    return out


def harmonic_centrality(graph: Graph) -> np.ndarray:
    """Harmonic centrality: sum of reciprocal distances to all other vertices."""
    n = graph.num_vertices
    out = np.zeros(n, dtype=np.float64)
    for source in range(n):
        dist = bfs_distances(graph, source)
        mask = dist > 0
        if np.any(mask):
            out[source] = float((1.0 / dist[mask]).sum())
    return out


def distance_between(graph: Graph, u: int, v: int) -> int:
    """Hop distance between two vertices (−1 when disconnected)."""
    dist = bfs_distances(graph, u)
    return int(dist[v])
