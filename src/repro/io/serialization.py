"""Binary round-trip of hypergraphs and s-line graphs via ``numpy.savez``.

Labels (edge/vertex names) are stored as JSON strings inside the ``.npz``
archive so the round trip preserves application metadata (gene symbols,
author names, …).  The archive also records the structural
:meth:`~repro.hypergraph.Hypergraph.fingerprint` of the saved hypergraph;
loading verifies the rebuilt structure hashes to the same value, so a
corrupted or hand-edited file cannot silently impersonate the original —
the same guarantee the persistent index store's manifest validation relies
on.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Union

import numpy as np

from repro.core.slinegraph import SLineGraph
from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError

PathLike = Union[str, os.PathLike]


def save_hypergraph_npz(h: Hypergraph, path: PathLike) -> None:
    """Save a hypergraph (CSR arrays, optional labels, fingerprint) to ``path``."""
    payload = {
        "indptr": h.edges_csr.indptr,
        "indices": h.edges_csr.indices,
        "num_vertices": np.asarray([h.num_vertices], dtype=np.int64),
        "fingerprint": np.asarray([h.fingerprint()]),
    }
    if h.edge_names is not None:
        payload["edge_names"] = np.asarray([json.dumps(list(map(str, h.edge_names)))])
    if h.vertex_names is not None:
        payload["vertex_names"] = np.asarray([json.dumps(list(map(str, h.vertex_names)))])
    np.savez_compressed(str(path), **payload)


def load_hypergraph_npz(path: PathLike, verify_fingerprint: bool = True) -> Hypergraph:
    """Load a hypergraph previously written by :func:`save_hypergraph_npz`.

    When the archive carries a fingerprint (all archives written since the
    store subsystem do) the rebuilt hypergraph is re-hashed and compared;
    a mismatch raises :class:`ValidationError`.  Pass
    ``verify_fingerprint=False`` to skip the check (e.g. when salvaging a
    damaged file).
    """
    with np.load(str(path), allow_pickle=False) as data:
        edges = CSRMatrix(
            indptr=data["indptr"],
            indices=data["indices"],
            num_cols=int(data["num_vertices"][0]),
        )
        edge_names = (
            json.loads(str(data["edge_names"][0])) if "edge_names" in data else None
        )
        vertex_names = (
            json.loads(str(data["vertex_names"][0])) if "vertex_names" in data else None
        )
        saved_fp = str(data["fingerprint"][0]) if "fingerprint" in data else None
    h = Hypergraph(edges=edges, edge_names=edge_names, vertex_names=vertex_names)
    if verify_fingerprint and saved_fp is not None and h.fingerprint() != saved_fp:
        raise ValidationError(
            f"hypergraph loaded from {path} hashes to {h.fingerprint()[:12]}… "
            f"but the archive recorded {saved_fp[:12]}… (file corrupted or "
            "tampered with)"
        )
    return h


def peek_hypergraph_fingerprint(path: PathLike) -> Optional[str]:
    """The fingerprint recorded in a saved archive, without rebuilding it.

    Returns ``None`` for archives written before fingerprints were stored.
    """
    with np.load(str(path), allow_pickle=False) as data:
        if "fingerprint" not in data:
            return None
        return str(data["fingerprint"][0])


def save_slinegraph_npz(graph: SLineGraph, path: PathLike) -> None:
    """Save an s-line graph (edge list, weights, metadata) to ``path`` (.npz)."""
    payload = {
        "s": np.asarray([graph.s], dtype=np.int64),
        "edges": graph.edges,
        "weights": graph.weights,
        "num_hyperedges": np.asarray([graph.num_hyperedges], dtype=np.int64),
    }
    if graph.active_vertices is not None:
        payload["active_vertices"] = graph.active_vertices
    np.savez_compressed(str(path), **payload)


def load_slinegraph_npz(path: PathLike) -> SLineGraph:
    """Load an s-line graph previously written by :func:`save_slinegraph_npz`."""
    with np.load(str(path), allow_pickle=False) as data:
        return SLineGraph(
            s=int(data["s"][0]),
            edges=data["edges"],
            weights=data["weights"],
            num_hyperedges=int(data["num_hyperedges"][0]),
            active_vertices=data["active_vertices"] if "active_vertices" in data else None,
        )
