"""MatrixMarket I/O of hypergraph incidence matrices.

The incidence matrix ``H`` is ``n × m`` (rows = vertices, columns =
hyperedges); the files use the ``coordinate pattern general`` MatrixMarket
dialect via :mod:`scipy.io`.
"""

from __future__ import annotations

import os
from typing import Union

from scipy import io as scipy_io
from scipy import sparse

from repro.hypergraph.builders import hypergraph_from_incidence_matrix
from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, os.PathLike]


def write_incidence_matrixmarket(h: Hypergraph, path: PathLike) -> None:
    """Write the incidence matrix of ``h`` to a MatrixMarket file."""
    scipy_io.mmwrite(str(path), h.incidence_matrix())


def read_incidence_matrixmarket(path: PathLike) -> Hypergraph:
    """Read a MatrixMarket incidence matrix into a hypergraph."""
    mat = scipy_io.mmread(str(path))
    return hypergraph_from_incidence_matrix(sparse.csr_matrix(mat))
