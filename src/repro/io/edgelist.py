"""Text edge-list formats for hypergraphs.

``bipartite edge list`` — one incidence per line: ``<edge_id> <vertex_id>``.
Lines starting with ``#`` or ``%`` are comments (KONECT convention).

``hyperedge list`` — one hyperedge per line, vertex IDs separated by
whitespace; the line number (0-based, skipping comments) is the hyperedge
ID.  An empty line denotes an empty hyperedge.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.hypergraph.builders import (
    hypergraph_from_edge_lists,
    hypergraph_from_incidence_pairs,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError

PathLike = Union[str, os.PathLike]
_COMMENT_PREFIXES = ("#", "%")


def read_bipartite_edgelist(path: PathLike) -> Hypergraph:
    """Read a ``<edge_id> <vertex_id>`` bipartite edge list into a hypergraph."""
    edges: List[int] = []
    vertices: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValidationError(
                    f"{path}:{lineno}: expected '<edge_id> <vertex_id>', got {line!r}"
                )
            edges.append(int(parts[0]))
            vertices.append(int(parts[1]))
    if not edges:
        raise ValidationError(f"{path}: no incidences found")
    return hypergraph_from_incidence_pairs(
        np.asarray(edges, dtype=np.int64), np.asarray(vertices, dtype=np.int64)
    )


def write_bipartite_edgelist(h: Hypergraph, path: PathLike, header: bool = True) -> None:
    """Write a hypergraph as a ``<edge_id> <vertex_id>`` bipartite edge list."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# hypergraph bipartite edge list: {h.num_edges} hyperedges, "
                f"{h.num_vertices} vertices, {h.num_incidences} incidences\n"
            )
        for e, members in h.iter_edges():
            for v in members:
                handle.write(f"{int(e)} {int(v)}\n")


def read_hyperedge_list(path: PathLike) -> Hypergraph:
    """Read a one-hyperedge-per-line file into a hypergraph."""
    lists: List[List[int]] = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped.startswith(_COMMENT_PREFIXES):
                continue
            if not stripped:
                lists.append([])
                continue
            members = [int(tok) for tok in stripped.split()]
            if members:
                max_vertex = max(max_vertex, max(members))
            lists.append(members)
    if not lists:
        raise ValidationError(f"{path}: no hyperedges found")
    return hypergraph_from_edge_lists(
        lists, num_vertices=max_vertex + 1 if max_vertex >= 0 else 0
    )


def write_hyperedge_list(h: Hypergraph, path: PathLike, header: bool = True) -> None:
    """Write a hypergraph as a one-hyperedge-per-line file."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(
                f"# hyperedge list: {h.num_edges} hyperedges over {h.num_vertices} vertices\n"
            )
        for _, members in h.iter_edges():
            handle.write(" ".join(str(int(v)) for v in members) + "\n")
