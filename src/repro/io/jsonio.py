"""JSON interchange for hypergraphs and s-line graphs.

Two dialects are supported:

* the library's own JSON document (``{"edges": {label: [vertex labels]}}``),
  round-trippable with labels preserved;
* a HyperNetX-style "setsystem" dictionary (``{edge_label: [vertex labels]}``)
  for interoperability with the HyperNetX/NWHypergraph ecosystem the paper's
  reference implementation belongs to.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Hashable, List, Union

from repro.core.slinegraph import SLineGraph
from repro.hypergraph.builders import hypergraph_from_edge_dict
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError

PathLike = Union[str, os.PathLike]

FORMAT_VERSION = 1


def hypergraph_to_setsystem(h: Hypergraph) -> Dict[str, List[str]]:
    """The HyperNetX-style ``{edge label: [vertex labels]}`` dictionary of ``h``."""
    return {
        str(h.edge_name(e)): [str(h.vertex_name(int(v))) for v in members]
        for e, members in h.iter_edges()
    }


def hypergraph_from_setsystem(setsystem: Dict[Hashable, List[Hashable]]) -> Hypergraph:
    """Build a hypergraph from a HyperNetX-style setsystem dictionary."""
    if not isinstance(setsystem, dict):
        raise ValidationError("setsystem must be a mapping of edge label -> member list")
    return hypergraph_from_edge_dict(setsystem)


def save_hypergraph_json(h: Hypergraph, path: PathLike, indent: int = 2) -> None:
    """Write ``h`` as a self-describing JSON document."""
    document = {
        "format": "repro-hypergraph",
        "version": FORMAT_VERSION,
        "num_vertices": h.num_vertices,
        "num_edges": h.num_edges,
        "edges": hypergraph_to_setsystem(h),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent)


def load_hypergraph_json(path: PathLike) -> Hypergraph:
    """Read a hypergraph written by :func:`save_hypergraph_json` (or a bare setsystem)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict) and "edges" in document and "format" in document:
        if document.get("format") != "repro-hypergraph":
            raise ValidationError(f"unrecognised format {document.get('format')!r}")
        return hypergraph_from_setsystem(document["edges"])
    if isinstance(document, dict):
        return hypergraph_from_setsystem(document)
    raise ValidationError("JSON document does not describe a hypergraph")


def save_slinegraph_json(graph: SLineGraph, path: PathLike, indent: int = 2) -> None:
    """Write an s-line graph as JSON (edge triples ``[i, j, overlap]``)."""
    document = {
        "format": "repro-slinegraph",
        "version": FORMAT_VERSION,
        "s": graph.s,
        "num_hyperedges": graph.num_hyperedges,
        "edges": [
            [int(i), int(j), int(w)] for (i, j), w in zip(graph.edges, graph.weights)
        ],
        "active_vertices": (
            [int(v) for v in graph.active_vertices]
            if graph.active_vertices is not None
            else None
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent)


def load_slinegraph_json(path: PathLike) -> SLineGraph:
    """Read an s-line graph written by :func:`save_slinegraph_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != "repro-slinegraph":
        raise ValidationError("JSON document does not describe an s-line graph")
    return SLineGraph.from_weighted_pairs(
        s=int(document["s"]),
        pairs=[tuple(edge) for edge in document["edges"]],
        num_hyperedges=int(document["num_hyperedges"]),
        active_vertices=document.get("active_vertices"),
    )
