"""Hypergraph input/output.

Three interchange formats are supported:

* bipartite edge lists (``edge_id vertex_id`` per line), the format of the
  KONECT datasets the paper uses;
* hyperedge-list text files (one hyperedge per line, members separated by
  whitespace), the format used by Hygra/practical-parallel-hypergraph
  releases;
* MatrixMarket coordinate files holding the incidence matrix;
* a compact ``.npz`` binary round-trip of the CSR structures.
"""

from repro.io.edgelist import (
    read_bipartite_edgelist,
    write_bipartite_edgelist,
    read_hyperedge_list,
    write_hyperedge_list,
)
from repro.io.matrixmarket import read_incidence_matrixmarket, write_incidence_matrixmarket
from repro.io.serialization import (
    load_hypergraph_npz,
    load_slinegraph_npz,
    save_hypergraph_npz,
    save_slinegraph_npz,
)
from repro.io.jsonio import (
    save_hypergraph_json,
    load_hypergraph_json,
    save_slinegraph_json,
    load_slinegraph_json,
    hypergraph_to_setsystem,
    hypergraph_from_setsystem,
)

__all__ = [
    "save_hypergraph_json",
    "load_hypergraph_json",
    "save_slinegraph_json",
    "load_slinegraph_json",
    "hypergraph_to_setsystem",
    "hypergraph_from_setsystem",
    "read_bipartite_edgelist",
    "write_bipartite_edgelist",
    "read_hyperedge_list",
    "write_hyperedge_list",
    "read_incidence_matrixmarket",
    "write_incidence_matrixmarket",
    "save_hypergraph_npz",
    "load_hypergraph_npz",
    "save_slinegraph_npz",
    "load_slinegraph_npz",
]
