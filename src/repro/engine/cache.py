"""A small thread-safe LRU result cache for the query engine.

Keys are ``(hypergraph fingerprint, s, kind)`` tuples where ``kind`` names
what is cached ("line_graph", "squeezed", or a Stage-5 metric name).  The
fingerprint component makes entries from superseded hypergraph versions
unreachable; the engine additionally *re-keys* entries that provably cannot
have changed after an incremental update (see
:meth:`repro.engine.QueryEngine.add_hyperedge`), so the cache doubles as the
bookkeeping structure for selective invalidation.

Concurrency contract
--------------------
Every public method is atomic (an internal re-entrant lock serialises
mutations of the ordering dict and the counters), so any number of threads
may ``get``/``put``/``peek`` concurrently — the prerequisite for the
multi-threaded :class:`repro.service.QueryService`.  Two guarantees are
deliberately *not* made:

* ``get`` then ``put`` is not one atomic operation: two threads that miss
  the same key may both compute it and both ``put`` — the second insert
  wins.  Engine results are deterministic for a key, so this only costs a
  duplicated computation, never an inconsistent cache.
* Multi-key passes (the engine's ``_migrate_cache`` over :meth:`keys`)
  are not atomic as a whole; callers that need a consistent multi-entry
  view must serialise against writers externally (the service layer's
  readers-writer lock does exactly this for incremental updates).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, List, Optional

from repro.obs import get_registry
from repro.utils.validation import ValidationError

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with hit/miss/eviction counters.

    ``metrics_label`` (optional) additionally reports hits/misses/
    evictions to the process metrics registry under
    ``repro_cache_*_total{cache=<label>}`` — bound once at construction
    so the per-lookup cost is a single striped counter increment.
    """

    def __init__(self, maxsize: int = 256, metrics_label: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValidationError("cache maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if metrics_label is None:
            self._m_hits = self._m_misses = self._m_evictions = None
        else:
            registry = get_registry()
            self._m_hits = registry.counter(
                "repro_cache_hits_total", "Cache lookups served from cache.", ("cache",)
            ).labels(cache=metrics_label)
            self._m_misses = registry.counter(
                "repro_cache_misses_total", "Cache lookups that missed.", ("cache",)
            ).labels(cache=metrics_label)
            self._m_evictions = registry.counter(
                "repro_cache_evictions_total",
                "Entries evicted by the LRU policy.",
                ("cache",),
            ).labels(cache=metrics_label)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or counters."""
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                if self._m_misses is not None:
                    self._m_misses.inc()
                return default
            self._data.move_to_end(key)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` with *no* side effects.

        Unlike :meth:`get`, peeking neither marks the entry recently used
        nor counts a hit/miss — it is for bookkeeping passes (the engine's
        selective invalidation inspects entries while re-keying them, which
        must not distort the service-traffic statistics or the LRU order).
        """
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                return default
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key`` (no counter updates)."""
        with self._lock:
            return self._data.pop(key, default)

    def counters(self) -> dict:
        """Atomic snapshot of hits/misses/evictions/entries (one lock hold).

        Reading the public counter attributes one by one can interleave
        with a concurrent ``get``/``put`` and report a hit/miss split that
        never existed; stats paths use this instead.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._data),
            }

    def keys(self) -> List[Hashable]:
        """Snapshot of the cached keys, LRU first."""
        with self._lock:
            return list(self._data.keys())

    def rekey(self, old_key: Hashable, new_key: Hashable) -> bool:
        """Move an entry to a new key preserving its value; False if absent."""
        with self._lock:
            value = self._data.pop(old_key, _MISSING)
            if value is _MISSING:
                return False
            self._data[new_key] = value
            return True

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        with self._lock:
            self._data.clear()
