"""A small LRU result cache for the query engine.

Keys are ``(hypergraph fingerprint, s, kind)`` tuples where ``kind`` names
what is cached ("line_graph", "squeezed", or a Stage-5 metric name).  The
fingerprint component makes entries from superseded hypergraph versions
unreachable; the engine additionally *re-keys* entries that provably cannot
have changed after an incremental update (see
:meth:`repro.engine.QueryEngine.add_hyperedge`), so the cache doubles as the
bookkeeping structure for selective invalidation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, List, Optional, Tuple

from repro.utils.validation import ValidationError

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with hit/miss/eviction counters."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValidationError("cache maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or counters."""
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` with *no* side effects.

        Unlike :meth:`get`, peeking neither marks the entry recently used
        nor counts a hit/miss — it is for bookkeeping passes (the engine's
        selective invalidation inspects entries while re-keying them, which
        must not distort the service-traffic statistics or the LRU order).
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key`` (no counter updates)."""
        return self._data.pop(key, default)

    def keys(self) -> List[Hashable]:
        """Snapshot of the cached keys, LRU first."""
        return list(self._data.keys())

    def rekey(self, old_key: Hashable, new_key: Hashable) -> bool:
        """Move an entry to a new key preserving its value; False if absent."""
        value = self._data.pop(old_key, _MISSING)
        if value is _MISSING:
            return False
        self._data[new_key] = value
        return True

    def clear(self) -> None:
        """Drop every entry (counters are retained)."""
        self._data.clear()
