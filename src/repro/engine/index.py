"""The overlap index: compute the weighted overlap structure once, serve any s.

Section II-B of the paper defines the s-line graph as a Boolean filtration
of one weighted structure: ``L_s[i, j] = 1  iff  (H^T H)[i, j] >= s``.
Every s-line graph of a hypergraph is therefore a *threshold view* of the
same set of weighted overlap pairs.  :class:`OverlapIndex` materialises that
observation: it enumerates all pairwise overlaps once — reusing the
registered Stage-3 algorithms at ``s = 1``, in parallel via the existing
:class:`~repro.parallel.executor.ParallelConfig` backends — and stores them
in CSR-style flat arrays sorted ascending by weight.  ``L_s`` for *any* s is
then a binary-search slice of the weight array plus a vectorised
:func:`~repro.core.filtration.filter_weighted_arrays` — no recomputation.

The index also supports incremental maintenance: adding a hyperedge only
walks the wedges of the new edge, and removing one only drops its incident
pairs — both O(affected rows), never a full recount.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.filtration import filter_weighted_arrays
from repro.core.slinegraph import SLineGraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.parallel.workload import WorkloadStats
from repro.utils.validation import ValidationError, check_s_value


def overlap_counts_for_members(
    h: Hypergraph, members: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Overlap counts between a (new) vertex set and every existing hyperedge.

    Walks only the wedges incident to ``members`` — the incremental
    counterpart of one outer iteration of Algorithm 2.  Vertices outside
    ``h``'s current vertex range contribute nothing (they are brand new).

    Returns
    -------
    (edge_ids, counts):
        Hyperedges sharing at least one vertex with ``members`` and the
        exact shared-vertex counts ``|members ∩ e_j|``.
    """
    rows = [
        h.vertex_memberships(int(v)) for v in members if 0 <= int(v) < h.num_vertices
    ]
    if not rows:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    hits = np.concatenate(rows)
    if hits.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    edge_ids, counts = np.unique(hits, return_counts=True)
    return edge_ids.astype(np.int64), counts.astype(np.int64)


class OverlapIndex:
    """All pairwise hyperedge overlaps of a hypergraph, sorted by weight.

    Attributes
    ----------
    edges:
        ``(k, 2)`` int64 array of overlap pairs ``(i, j)`` with ``i < j``,
        sorted ascending by weight (ties by pair for determinism).
    weights:
        Length-``k`` int64 array of exact overlap counts, ascending.
    edge_sizes:
        Per-hyperedge sizes ``|e_i|`` (drives the vertex set ``E_s``).
    workload:
        Worker counters of the one-off counting pass.
    algorithm:
        Name of the Stage-3 algorithm that enumerated the pairs.
    """

    def __init__(
        self,
        edges: np.ndarray,
        weights: np.ndarray,
        edge_sizes: np.ndarray,
        workload: Optional[WorkloadStats] = None,
        algorithm: str = "",
    ) -> None:
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        weights = np.asarray(weights, dtype=np.int64)
        if weights.size != edges.shape[0]:
            raise ValidationError("weights length must equal the number of pairs")
        if weights.size and int(weights.min()) < 1:
            raise ValidationError("overlap weights must be >= 1")
        # Canonical order: ascending weight, ties by (i, j).
        order = np.lexsort((edges[:, 1], edges[:, 0], weights))
        self._edges = edges[order]
        self._weights = weights[order]
        self._edge_sizes = np.asarray(edge_sizes, dtype=np.int64).copy()
        self.workload = workload if workload is not None else WorkloadStats()
        self.algorithm = algorithm

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        h: Hypergraph,
        algorithm: str = "hashmap",
        config: Optional[ParallelConfig] = None,
    ) -> "OverlapIndex":
        """Enumerate every weighted overlap pair of ``h`` once.

        Runs the registered Stage-3 algorithm at ``s = 1``: with no
        filtration threshold, the emitted pairs are exactly the off-diagonal
        upper triangle of ``H^T H`` with their exact overlap counts.
        """
        from repro.core.dispatch import s_line_graph

        graph, workload = s_line_graph(
            h, 1, algorithm=algorithm, config=config, return_workload=True
        )
        return cls(
            edges=graph.edges,
            weights=graph.weights,
            edge_sizes=h.edge_sizes(),
            workload=workload,
            algorithm=algorithm,
        )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def num_pairs(self) -> int:
        """Number of stored overlap pairs (edges of the 1-line graph)."""
        return int(self._weights.size)

    @property
    def num_hyperedges(self) -> int:
        """Size of the hyperedge-ID space the pairs are defined over."""
        return int(self._edge_sizes.size)

    @property
    def max_weight(self) -> int:
        """Largest pairwise overlap — the largest s with a non-empty ``L_s``."""
        return int(self._weights[-1]) if self._weights.size else 0

    @property
    def edge_sizes(self) -> np.ndarray:
        """Per-hyperedge sizes (read-only view)."""
        return self._edge_sizes

    def nbytes(self) -> int:
        """Memory footprint of the pair store in bytes."""
        return int(
            self._edges.nbytes + self._weights.nbytes + self._edge_sizes.nbytes
        )

    # ------------------------------------------------------------------ #
    # Threshold views
    # ------------------------------------------------------------------ #
    def pairs_at_least(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        """All pairs with overlap ``>= s`` as ``(edges_view, weights_view)``.

        A binary search on the ascending weight array — O(log k) to locate
        the slice, zero copies.
        """
        s = check_s_value(s)
        lo = int(np.searchsorted(self._weights, s, side="left"))
        return self._edges[lo:], self._weights[lo:]

    def edge_count(self, s: int) -> int:
        """Number of edges of ``L_s`` without materialising the graph."""
        s = check_s_value(s)
        return self.num_pairs - int(np.searchsorted(self._weights, s, side="left"))

    def active_vertices(self, s: int) -> np.ndarray:
        """The vertex set ``E_s``: hyperedges with ``|e| >= s``."""
        s = check_s_value(s)
        return np.flatnonzero(self._edge_sizes >= s).astype(np.int64)

    def line_graph(self, s: int) -> SLineGraph:
        """``L_s(H)`` as a threshold view: slice + vectorised filtration.

        The overlap counts are never recomputed; the dominant cost is the
        :class:`SLineGraph` constructor re-canonicalising the slice (a
        lexsort, since the store is weight-ordered, not pair-ordered).
        """
        s = check_s_value(s)
        edges, weights = self.pairs_at_least(s)
        return filter_weighted_arrays(
            edges,
            weights,
            s,
            num_hyperedges=self.num_hyperedges,
            active_vertices=self.active_vertices(s),
        )

    def s_profile(self) -> Dict[int, int]:
        """``s -> |edges of L_s|`` for every s in ``1..max_weight`` (Figure 4)."""
        return {s: self.edge_count(s) for s in range(1, self.max_weight + 1)}

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def add_hyperedge(
        self, new_id: int, size: int, pair_ids: np.ndarray, pair_weights: np.ndarray
    ) -> int:
        """Register a new hyperedge and merge its overlap row into the index.

        ``pair_ids``/``pair_weights`` are the overlaps of the new edge with
        existing hyperedges (from :func:`overlap_counts_for_members`).  The
        merge keeps the weight-sorted invariant by binary-search insertion —
        O(existing pairs + new pairs), never a recount.
        """
        if new_id != self.num_hyperedges:
            raise ValidationError(
                f"new hyperedge ID must be {self.num_hyperedges}, got {new_id}"
            )
        pair_ids = np.asarray(pair_ids, dtype=np.int64)
        pair_weights = np.asarray(pair_weights, dtype=np.int64)
        if pair_ids.size:
            if int(pair_ids.max()) >= self.num_hyperedges or int(pair_ids.min()) < 0:
                raise ValidationError("pair IDs must reference existing hyperedges")
            # The incoming row must itself be weight-ascending: np.insert
            # places values that land at the same position in *given* order,
            # so an unsorted row would corrupt the binary-search invariant.
            order = np.argsort(pair_weights, kind="stable")
            pair_ids = pair_ids[order]
            pair_weights = pair_weights[order]
            # The new edge has the largest ID, so pairs are (existing, new).
            new_pairs = np.column_stack(
                [pair_ids, np.full(pair_ids.size, new_id, dtype=np.int64)]
            )
            positions = np.searchsorted(self._weights, pair_weights, side="left")
            self._edges = np.insert(self._edges, positions, new_pairs, axis=0)
            self._weights = np.insert(self._weights, positions, pair_weights)
        self._edge_sizes = np.append(self._edge_sizes, np.int64(max(int(size), 0)))
        return int(pair_ids.size)

    def remove_hyperedge(self, edge_id: int) -> int:
        """Drop every pair incident to ``edge_id`` and zero its size.

        The ID slot is kept (tombstoned at size 0) so all other hyperedge
        IDs — and every cached result that does not involve ``edge_id`` —
        remain valid.  Returns the number of pairs removed.
        """
        if edge_id < 0 or edge_id >= self.num_hyperedges:
            raise ValidationError(
                f"hyperedge ID {edge_id} out of range [0, {self.num_hyperedges})"
            )
        keep = (self._edges[:, 0] != edge_id) & (self._edges[:, 1] != edge_id)
        removed = int(keep.size - int(keep.sum()))
        if removed:
            self._edges = self._edges[keep]
            self._weights = self._weights[keep]
        self._edge_sizes[edge_id] = 0
        return removed

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OverlapIndex(num_hyperedges={self.num_hyperedges}, "
            f"num_pairs={self.num_pairs}, max_weight={self.max_weight})"
        )
