"""The query engine: an LRU-cached, incrementally maintained s-query service.

:class:`QueryEngine` fronts one hypergraph and serves s-line graphs,
s-metrics and batched multi-s sweeps from a single
:class:`~repro.engine.index.OverlapIndex`.  Results are cached under
``(hypergraph fingerprint, s, kind)`` keys, so repeated queries — the
dominant pattern of a long-running analytics service — cost a dictionary
lookup.  Squeezing work (Stage 4) is shared between all metrics of the same
s.

Incremental updates (:meth:`~QueryEngine.add_hyperedge`,
:meth:`~QueryEngine.remove_hyperedge`) patch only the affected overlap rows
of the index — avoiding the wedge-enumeration pass that dominates a rebuild
— and invalidate only cache entries whose result could actually change: a
hyperedge of size ``k`` can never appear in — nor contribute a pair to —
any ``L_s`` with ``s > k``, so those entries are re-keyed to the new
fingerprint instead of being recomputed.  (Refreshing the immutable
:class:`Hypergraph` and its fingerprint is still one vectorised O(|H|)
pass per update; only the overlap *counting* is incremental.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import METRIC_FUNCTIONS
from repro.core.slinegraph import SLineGraph
from repro.engine.cache import LRUCache
from repro.engine.index import OverlapIndex, overlap_counts_for_members
from repro.graph.graph import Graph
from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.preprocessing import SqueezeResult
from repro.obs.trace import get_tracer
from repro.parallel.executor import ParallelConfig
from repro.utils.validation import ValidationError, check_s_value


@dataclass
class QueryStats:
    """Counters describing the engine's work since construction."""

    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0
    index_builds: int = 0
    incremental_adds: int = 0
    incremental_removes: int = 0
    invalidated_entries: int = 0
    retained_entries: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class SweepResult:
    """Outcome of one batched multi-s sweep."""

    s_values: List[int]
    #: ``s -> L_s`` (the same objects held by the engine cache).
    line_graphs: Dict[int, SLineGraph] = field(default_factory=dict)
    #: ``s -> number of line-graph edges`` (the Figure 4 quantity).
    edge_counts: Dict[int, int] = field(default_factory=dict)
    #: ``s -> |E_s|`` (active hyperedges).
    active_counts: Dict[int, int] = field(default_factory=dict)
    #: ``s -> metric name -> array over squeezed vertex IDs``.
    metrics: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def num_components(self, s: int) -> Optional[int]:
        """Number of s-connected components, if a component metric ran."""
        for key in ("connected_components", "lpcc"):
            values = self.metrics.get(s, {}).get(key)
            if values is not None:
                return int(values.max()) + 1 if values.size else 0
        return None


class QueryEngine:
    """Compute-once/serve-many facade over a hypergraph's overlap structure.

    Parameters
    ----------
    h:
        The hypergraph to serve queries for.
    algorithm:
        Stage-3 algorithm used for the one-off index build (and rebuilds).
    config:
        Parallel configuration forwarded to the index build.
    cache_size:
        Maximum number of cached results (line graphs, squeezed graphs and
        per-metric arrays each count as one entry).

    Examples
    --------
    >>> from repro.hypergraph import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]])
    >>> engine = QueryEngine(h)
    >>> engine.line_graph(2).edge_set()
    {(0, 1), (0, 2), (1, 2)}
    >>> engine.index.edge_count(1)
    4
    """

    def __init__(
        self,
        h: Hypergraph,
        algorithm: str = "hashmap",
        config: Optional[ParallelConfig] = None,
        cache_size: int = 256,
        index: Optional[OverlapIndex] = None,
    ) -> None:
        if not isinstance(h, Hypergraph):
            raise ValidationError("QueryEngine requires a Hypergraph")
        self._h = h
        self.algorithm = algorithm
        self.config = config or ParallelConfig()
        if index is not None and (
            index.num_hyperedges != h.num_edges
            or not np.array_equal(index.edge_sizes, h.edge_sizes())
        ):
            raise ValidationError(
                "injected index does not describe this hypergraph "
                "(hyperedge count or sizes differ)"
            )
        self._index: Optional[OverlapIndex] = index
        self._cache = LRUCache(maxsize=cache_size, metrics_label="engine")
        self._tracer = get_tracer()
        self._index_builds = 0
        self._incremental_adds = 0
        self._incremental_removes = 0
        self._invalidated = 0
        self._retained = 0

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(
        cls,
        path,
        hypergraph: Optional[Hypergraph] = None,
        create: bool = False,
        on_mismatch: str = "raise",
        sharded: bool = False,
        algorithm: str = "hashmap",
        num_shards: int = 4,
        config: Optional[ParallelConfig] = None,
        **kwargs,
    ) -> "QueryEngine":
        """Open (or build) a persistent store and serve queries from it.

        Parameters
        ----------
        path:
            Store directory (see :class:`repro.store.IndexStore`).
        hypergraph:
            The hypergraph the engine should serve.  Optional when the
            store saved its own copy; required to ``create`` or rebuild.
        create:
            Build the store when ``path`` holds no snapshot yet.
        on_mismatch:
            What to do when the store describes a *different* hypergraph
            than the one supplied: ``"raise"`` (default) raises
            :class:`repro.store.FingerprintMismatchError`; ``"rebuild"``
            replaces the snapshot with one for ``hypergraph``.
        sharded:
            Serve out-of-core from mmap'd shards instead of materialising
            the index in memory.

        Returns a :class:`repro.store.PersistentQueryEngine` — updates are
        WAL-logged and survive the process.
        """
        from repro.store import (
            FingerprintMismatchError,
            IndexStore,
            PersistentQueryEngine,
        )

        if on_mismatch not in ("raise", "rebuild"):
            raise ValidationError(
                f"on_mismatch must be 'raise' or 'rebuild', got {on_mismatch!r}"
            )
        if not IndexStore.exists(path):
            if not create:
                raise ValidationError(
                    f"no snapshot at {path}; pass create=True to build one"
                )
            if hypergraph is None:
                raise ValidationError("building a store requires a hypergraph")
            return PersistentQueryEngine.build(
                hypergraph,
                path,
                algorithm=algorithm,
                num_shards=num_shards,
                config=config,
                sharded=sharded,
                **kwargs,
            )
        try:
            return PersistentQueryEngine.open(
                path, hypergraph=hypergraph, sharded=sharded, config=config, **kwargs
            )
        except FingerprintMismatchError:
            if on_mismatch != "rebuild" or hypergraph is None:
                raise
            return PersistentQueryEngine.build(
                hypergraph,
                path,
                algorithm=algorithm,
                num_shards=num_shards,
                config=config,
                sharded=sharded,
                **kwargs,
            )

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def hypergraph(self) -> Hypergraph:
        """The current (possibly incrementally updated) hypergraph."""
        return self._h

    @property
    def index(self) -> OverlapIndex:
        """The overlap index, built lazily on first access."""
        if self._index is None:
            self._index = OverlapIndex.build(
                self._h, algorithm=self.algorithm, config=self.config
            )
            self._index_builds += 1
        return self._index

    def fingerprint(self) -> str:
        """Content fingerprint of the current hypergraph (the cache-key prefix)."""
        return self._h.fingerprint()

    def stats(self) -> QueryStats:
        """Snapshot of cache and maintenance counters."""
        cache = self._cache.counters()  # one lock hold: consistent split
        return QueryStats(
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
            cache_entries=cache["entries"],
            index_builds=self._index_builds,
            incremental_adds=self._incremental_adds,
            incremental_removes=self._incremental_removes,
            invalidated_entries=self._invalidated,
            retained_entries=self._retained,
        )

    def max_s(self) -> int:
        """Largest s with a non-empty s-line graph."""
        return self.index.max_weight

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _key(self, s: int, kind: str) -> Tuple[str, int, str]:
        return (self._h.fingerprint(), int(s), kind)

    def line_graph(self, s: int) -> SLineGraph:
        """``L_s(H)`` in original hyperedge IDs (cached threshold view)."""
        s = check_s_value(s)
        key = self._key(s, "line_graph")
        with self._tracer.start_span("engine.line_graph", {"s": s}) as span:
            cached = self._cache.get(key)
            if cached is not None:
                span.set_attribute("cache_hit", True)
                return cached
            span.set_attribute("cache_hit", False)
            graph = self.index.line_graph(s)
            self._cache.put(key, graph)
            return graph

    #: ``extract(s)`` is the service-facing name for a threshold view.
    extract = line_graph

    def squeezed_graph(self, s: int) -> Tuple[Graph, SqueezeResult]:
        """Stage-4 view of ``L_s``: the squeezed CSR graph plus ID mapping.

        Cached per s so every metric of the same s shares one squeeze.
        """
        s = check_s_value(s)
        key = self._key(s, "squeezed")
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        squeezed_line, mapping = self.line_graph(s).squeeze()
        graph = squeezed_line.to_graph(squeezed=False)
        self._cache.put(key, (graph, mapping))
        return graph, mapping

    def metric(self, s: int, name: str) -> np.ndarray:
        """A Stage-5 metric of ``L_s`` over squeezed vertex IDs (cached)."""
        if name not in METRIC_FUNCTIONS:
            raise ValidationError(
                f"unknown metric {name!r}; available: {sorted(METRIC_FUNCTIONS)}"
            )
        s = check_s_value(s)
        key = self._key(s, name)
        with self._tracer.start_span(
            "engine.metric", {"s": s, "metric": name}
        ) as span:
            cached = self._cache.get(key)
            if cached is not None:
                span.set_attribute("cache_hit", True)
                return cached
            span.set_attribute("cache_hit", False)
            graph, _ = self.squeezed_graph(s)
            values = METRIC_FUNCTIONS[name](graph)
            self._cache.put(key, values)
            return values

    def metric_by_hyperedge(self, s: int, name: str) -> Dict[int, float]:
        """A metric keyed by *original* hyperedge IDs."""
        values = self.metric(s, name)
        _, mapping = self.squeezed_graph(s)
        return {
            int(mapping.new_to_old[i]): float(v) for i, v in enumerate(values)
        }

    def metrics(self, s: int, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Several metrics of the same s, sharing one squeeze."""
        return {name: self.metric(s, name) for name in names}

    def sweep(
        self,
        s_values: Iterable[int],
        metrics: Sequence[str] = (),
    ) -> SweepResult:
        """Batched multi-s query: line graphs (and metrics) for every s.

        The index is built at most once; each s is a binary-search slice.
        Squeezing work is shared per s across the requested metrics, and all
        intermediate results land in the cache for later point queries.
        """
        s_list = sorted({check_s_value(s) for s in s_values})
        if not s_list:
            raise ValidationError("sweep requires at least one s value")
        unknown = [m for m in metrics if m not in METRIC_FUNCTIONS]
        if unknown:
            raise ValidationError(
                f"unknown metrics {unknown}; available: {sorted(METRIC_FUNCTIONS)}"
            )
        start = time.perf_counter()
        result = SweepResult(s_values=s_list)
        with self._tracer.start_span(
            "engine.sweep", {"s_count": len(s_list), "metric_count": len(metrics)}
        ):
            for s in s_list:
                graph = self.line_graph(s)
                result.line_graphs[s] = graph
                result.edge_counts[s] = graph.num_edges
                result.active_counts[s] = graph.num_active_vertices
                if metrics:
                    result.metrics[s] = self.metrics(s, metrics)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def add_hyperedge(
        self, members: Iterable[int], name: Optional[object] = None
    ) -> int:
        """Append a hyperedge, patching the index and cache incrementally.

        Only the overlap row of the new edge is computed (a wedge walk from
        its members); cached results for every ``s > |members|`` provably
        cannot change and are retained under the new fingerprint.

        Returns the ID assigned to the new hyperedge.
        """
        member_arr = np.unique(np.asarray(list(members), dtype=np.int64))
        if member_arr.size and int(member_arr.min()) < 0:
            raise ValidationError("vertex IDs must be non-negative")
        old_fp = self._h.fingerprint()
        new_id = self._h.num_edges
        pair_ids = pair_weights = None
        if self._index is not None:
            pair_ids, pair_weights = overlap_counts_for_members(self._h, member_arr)
            self._index.add_hyperedge(
                new_id, member_arr.size, pair_ids, pair_weights
            )
        self._h = with_appended_edge(self._h, member_arr, name)
        self._incremental_adds += 1
        self._migrate_cache(old_fp, threshold_s=int(member_arr.size))
        self._record_add(new_id, member_arr, name, pair_ids, pair_weights)
        return new_id

    def remove_hyperedge(self, edge_id: int) -> None:
        """Remove a hyperedge (tombstoning its ID slot at size 0).

        Keeping the slot preserves every other hyperedge ID, so results for
        ``s > |removed edge|`` — which the edge could never appear in — stay
        valid and are retained in the cache.
        """
        if edge_id < 0 or edge_id >= self._h.num_edges:
            raise ValidationError(
                f"hyperedge ID {edge_id} out of range [0, {self._h.num_edges})"
            )
        old_size = self._h.edge_size(edge_id)
        if old_size == 0:
            return  # already empty: removing it changes nothing
        old_fp = self._h.fingerprint()
        if self._index is not None:
            self._index.remove_hyperedge(edge_id)
        self._h = with_emptied_edge(self._h, edge_id)
        self._incremental_removes += 1
        self._migrate_cache(old_fp, threshold_s=int(old_size))
        self._record_remove(edge_id)

    def _record_add(self, new_id, members, name, pair_ids, pair_weights) -> None:
        """Durability hook: no-op here, WAL-appended by the persistent engine."""

    def _record_remove(self, edge_id) -> None:
        """Durability hook: no-op here, WAL-appended by the persistent engine."""

    def _migrate_cache(self, old_fp: str, threshold_s: int) -> None:
        """Selective invalidation after an update affecting sizes ``<= threshold_s``.

        Entries keyed at ``s > threshold_s`` cannot have changed (the edge
        involved has size ``<= threshold_s``, so it is inactive and pairless
        at those thresholds): they are re-keyed to the new fingerprint.
        Everything else under the old fingerprint is dropped.  Retained line
        graphs get their ID-space bound refreshed so they compare equal to a
        full rebuild after ``add_hyperedge`` grew the hyperedge count.
        """
        new_fp = self._h.fingerprint()
        num_edges = self._h.num_edges
        for key in self._cache.keys():
            fp, s, kind = key
            if fp != old_fp:
                continue
            if s > threshold_s:
                if kind == "line_graph":
                    # peek: bookkeeping must not inflate hit/miss stats nor
                    # promote the entry in the LRU order.
                    graph = self._cache.peek(key)
                    if graph.num_hyperedges != num_edges:
                        graph = _resize_id_space(graph, num_edges)
                        self._cache.pop(key)
                        self._cache.put((new_fp, s, kind), graph)
                    else:
                        self._cache.rekey(key, (new_fp, s, kind))
                else:
                    self._cache.rekey(key, (new_fp, s, kind))
                self._retained += 1
            else:
                self._cache.pop(key)
                self._invalidated += 1


def _resize_id_space(graph: SLineGraph, num_hyperedges: int) -> SLineGraph:
    """Rebind a line graph to a larger hyperedge-ID space without copying.

    Bypasses ``__post_init__``: the arrays are already canonical and shared
    with the original; only the ID-space bound changes (it can only grow,
    via :meth:`QueryEngine.add_hyperedge`).
    """
    resized = SLineGraph.__new__(SLineGraph)
    resized.s = graph.s
    resized.edges = graph.edges
    resized.weights = graph.weights
    resized.num_hyperedges = int(num_hyperedges)
    resized.active_vertices = graph.active_vertices
    return resized


def with_appended_edge(
    h: Hypergraph, members: np.ndarray, name: Optional[object]
) -> Hypergraph:
    """A new hypergraph equal to ``h`` plus one trailing hyperedge."""
    edges = h.edges_csr
    num_vertices = h.num_vertices
    if members.size:
        num_vertices = max(num_vertices, int(members.max()) + 1)
    new_indptr = np.append(edges.indptr, edges.indptr[-1] + members.size)
    new_indices = np.concatenate([edges.indices, members])
    edge_names = None
    if h.edge_names is not None:
        edge_names = list(h.edge_names) + [name if name is not None else h.num_edges]
    vertex_names = None
    if h.vertex_names is not None:
        vertex_names = list(h.vertex_names) + list(
            range(h.num_vertices, num_vertices)
        )
    return Hypergraph(
        edges=CSRMatrix(
            indptr=new_indptr, indices=new_indices, num_cols=num_vertices
        ),
        edge_names=edge_names,
        vertex_names=vertex_names,
    )


def with_emptied_edge(h: Hypergraph, edge_id: int) -> Hypergraph:
    """A new hypergraph equal to ``h`` with one hyperedge emptied in place."""
    edges = h.edges_csr
    start, stop = int(edges.indptr[edge_id]), int(edges.indptr[edge_id + 1])
    new_indices = np.delete(edges.indices, slice(start, stop))
    new_indptr = edges.indptr.copy()
    new_indptr[edge_id + 1 :] -= stop - start
    return Hypergraph(
        edges=CSRMatrix(
            indptr=new_indptr, indices=new_indices, num_cols=edges.num_cols
        ),
        edge_names=h.edge_names,
        vertex_names=h.vertex_names,
    )
