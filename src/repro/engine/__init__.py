"""Overlap-index query engine: compute the overlap structure once, serve any s.

The engine layer turns the library from a batch pipeline into a query
service.  Section II-B of the paper shows every s-line graph is a Boolean
filtration ``L_s[i, j] = 1 iff (H^T H)[i, j] >= s`` of one weighted overlap
structure, so:

* :class:`OverlapIndex` enumerates all weighted overlap pairs once (via the
  registered Stage-3 algorithms at ``s = 1``, parallelised with the existing
  backends) and stores them sorted by weight — any ``L_s`` is then a
  binary-search slice plus a vectorised filtration;
* :class:`QueryEngine` fronts the index with an LRU result cache keyed by
  ``(hypergraph fingerprint, s, metric)`` and serves s-line graphs,
  s-metrics and batched multi-s sweeps with shared Stage-4 squeezing;
* incremental maintenance (:meth:`QueryEngine.add_hyperedge` /
  :meth:`QueryEngine.remove_hyperedge`) patches only the affected overlap
  rows and invalidates only cache entries whose result could change.
"""

from repro.engine.cache import LRUCache
from repro.engine.engine import (
    QueryEngine,
    QueryStats,
    SweepResult,
    with_appended_edge,
    with_emptied_edge,
)
from repro.engine.index import OverlapIndex, overlap_counts_for_members

__all__ = [
    "LRUCache",
    "OverlapIndex",
    "QueryEngine",
    "QueryStats",
    "SweepResult",
    "overlap_counts_for_members",
    "with_appended_edge",
    "with_emptied_edge",
]
