"""Graph Laplacians and algebraic connectivity.

The paper's Figure 6 plots the *normalized algebraic connectivity* of the
s-line graphs of the condMat author–paper network: the second-smallest
eigenvalue of the normalized Laplacian ``L_norm = I − D^{−1/2} A D^{−1/2}``
(Fiedler value of the normalised spectrum), computed on the largest
connected component of each s-line graph.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.linalg.spectral import smallest_eigenvalues
from repro.utils.validation import ValidationError


def _check_square_symmetric(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    adj = sparse.csr_matrix(adjacency, dtype=np.float64)
    if adj.shape[0] != adj.shape[1]:
        raise ValidationError(f"adjacency matrix must be square, got {adj.shape}")
    asym = abs(adj - adj.T)
    if asym.nnz and asym.max() > 1e-9:
        raise ValidationError("adjacency matrix must be symmetric")
    return adj


def laplacian_matrix(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    """Combinatorial Laplacian ``L = D − A`` of an undirected weighted graph."""
    adj = _check_square_symmetric(adjacency)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    return (sparse.diags(degrees) - adj).tocsr()


def normalized_laplacian(adjacency: sparse.spmatrix) -> sparse.csr_matrix:
    """Normalized Laplacian ``I − D^{−1/2} A D^{−1/2}``.

    Vertices with degree zero contribute identity rows (their scaling factor
    is defined as 0, the convention used by scipy and networkx).
    """
    adj = _check_square_symmetric(adjacency)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degrees)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    d_inv_sqrt = sparse.diags(inv_sqrt)
    n = adj.shape[0]
    return (sparse.identity(n, format="csr") - d_inv_sqrt @ adj @ d_inv_sqrt).tocsr()


def algebraic_connectivity(adjacency: sparse.spmatrix) -> float:
    """Second-smallest eigenvalue of the combinatorial Laplacian (Fiedler value)."""
    lap = laplacian_matrix(adjacency)
    if lap.shape[0] < 2:
        return 0.0
    eigs = smallest_eigenvalues(lap, k=2)
    return float(eigs[1])


def normalized_algebraic_connectivity(adjacency: sparse.spmatrix) -> float:
    """Second-smallest eigenvalue of the normalized Laplacian.

    This is the quantity on the y-axis of the paper's Figure 6; larger values
    indicate stronger connectivity of the (s-line) graph.
    """
    lap = normalized_laplacian(adjacency)
    if lap.shape[0] < 2:
        return 0.0
    eigs = smallest_eigenvalues(lap, k=2)
    return float(eigs[1])
