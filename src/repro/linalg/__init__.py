"""Sparse linear-algebra substrate.

Provides the pieces of the paper's linear-algebraic view of s-line graphs:

* the weighted hyperedge adjacency ``L = H^T H`` and clique-expansion
  ``W = H H^T − D_V`` products (via scipy and via a from-scratch Gustavson
  row-wise SpGEMM, including an upper-triangular-only variant);
* graph Laplacians (combinatorial and normalised) and the normalized
  algebraic connectivity used in the paper's Figure 6.
"""

from repro.linalg.spgemm import spgemm_gustavson, spgemm_upper_triangle, spgemm_scipy
from repro.linalg.laplacian import (
    laplacian_matrix,
    normalized_laplacian,
    algebraic_connectivity,
    normalized_algebraic_connectivity,
)
from repro.linalg.spectral import smallest_eigenvalues, fiedler_value

__all__ = [
    "spgemm_gustavson",
    "spgemm_upper_triangle",
    "spgemm_scipy",
    "laplacian_matrix",
    "normalized_laplacian",
    "algebraic_connectivity",
    "normalized_algebraic_connectivity",
    "smallest_eigenvalues",
    "fiedler_value",
]
