"""Eigenvalue helpers for spectral hypergraph analysis.

Thin, robust wrappers over :func:`scipy.sparse.linalg.eigsh` with a dense
fallback for small or ill-conditioned problems, so callers (algebraic
connectivity, spectral s-measures) never need to handle ARPACK quirks.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as splinalg

from repro.utils.validation import ValidationError

#: Below this order, just use dense eigendecomposition — it is faster and exact.
DENSE_THRESHOLD = 64


def _start_vector(n: int) -> np.ndarray:
    """Deterministic ARPACK starting vector.

    Without ``v0`` ARPACK draws a random start per call, making iterative
    eigenvalues (and any test or cached result built on them) vary run to
    run near the tolerance; a fixed seeded vector keeps them reproducible.
    """
    return np.random.default_rng(0).standard_normal(n)


def smallest_eigenvalues(matrix: sparse.spmatrix, k: int = 2) -> np.ndarray:
    """The ``k`` smallest eigenvalues of a symmetric matrix, ascending.

    Uses a dense solver for small matrices (or when ARPACK cannot converge)
    and shift-invert Lanczos otherwise.
    """
    mat = sparse.csr_matrix(matrix, dtype=np.float64)
    n = mat.shape[0]
    if mat.shape[0] != mat.shape[1]:
        raise ValidationError(f"matrix must be square, got {mat.shape}")
    if k < 1:
        raise ValidationError("k must be >= 1")
    k = min(k, n)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    if n <= DENSE_THRESHOLD or k >= n - 1:
        eigs = np.linalg.eigvalsh(mat.toarray())
        return np.sort(eigs)[:k]
    try:
        eigs = splinalg.eigsh(
            mat,
            k=k,
            which="SM",
            return_eigenvectors=False,
            tol=1e-8,
            v0=_start_vector(n),
        )
        return np.sort(eigs)
    except (splinalg.ArpackNoConvergence, splinalg.ArpackError, RuntimeError):
        eigs = np.linalg.eigvalsh(mat.toarray())
        return np.sort(eigs)[:k]


def fiedler_value(laplacian: sparse.spmatrix) -> float:
    """Second-smallest eigenvalue of a Laplacian matrix."""
    if laplacian.shape[0] < 2:
        return 0.0
    return float(smallest_eigenvalues(laplacian, k=2)[1])


def largest_eigenvalue(matrix: sparse.spmatrix) -> float:
    """Largest eigenvalue of a symmetric matrix (dense fallback for small n)."""
    mat = sparse.csr_matrix(matrix, dtype=np.float64)
    n = mat.shape[0]
    if n == 0:
        return 0.0
    if n <= DENSE_THRESHOLD:
        return float(np.linalg.eigvalsh(mat.toarray())[-1])
    try:
        return float(
            splinalg.eigsh(
                mat, k=1, which="LA", return_eigenvectors=False, v0=_start_vector(n)
            )[0]
        )
    except (splinalg.ArpackNoConvergence, splinalg.ArpackError, RuntimeError):
        return float(np.linalg.eigvalsh(mat.toarray())[-1])
