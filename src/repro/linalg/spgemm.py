"""Sparse general matrix-matrix multiplication (SpGEMM) kernels.

The paper compares its hashmap algorithms against an SpGEMM-based pipeline:
compute ``L = H^T H`` with a state-of-the-art SpGEMM library, then filter
entries ``>= s``.  Two variants appear in Figure 11:

* ``SpGEMM+Filter`` — the full product followed by filtration;
* ``SpGEMM+Filter+Upper`` — a modified kernel that only materialises the
  upper-triangular part of the (symmetric) product.

We provide scipy's CSR product as the library baseline and a from-scratch
Gustavson row-wise SpGEMM (dense-accumulator per row) whose row loop can be
restricted to the upper triangle, mirroring the paper's modification.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.utils.validation import ValidationError


def spgemm_scipy(a: sparse.spmatrix, b: sparse.spmatrix) -> sparse.csr_matrix:
    """Compute ``A @ B`` with scipy's CSR SpGEMM (the library baseline)."""
    if a.shape[1] != b.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match: {a.shape} @ {b.shape}"
        )
    return (sparse.csr_matrix(a) @ sparse.csr_matrix(b)).tocsr()


def spgemm_gustavson(
    a: sparse.spmatrix, b: sparse.spmatrix, dtype=np.int64
) -> sparse.csr_matrix:
    """Row-wise Gustavson SpGEMM with a sparse accumulator per output row.

    For each row ``i`` of ``A``: for each stored ``A[i, k]``, scatter
    ``A[i, k] * B[k, :]`` into an accumulator; gather the touched columns at
    the end of the row.  Complexity is proportional to the number of
    multiply–add operations (FLOPs), independent of the output's density
    pattern — the classic algorithm the SpGEMM literature (and the paper's
    ``ikj`` loop ordering) builds on.
    """
    A = sparse.csr_matrix(a).astype(dtype)
    B = sparse.csr_matrix(b).astype(dtype)
    if A.shape[1] != B.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match: {A.shape} @ {B.shape}"
        )
    n_rows, n_cols = A.shape[0], B.shape[1]
    accumulator = np.zeros(n_cols, dtype=dtype)
    out_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    for i in range(n_rows):
        touched: list[int] = []
        for ak in range(A.indptr[i], A.indptr[i + 1]):
            k = A.indices[ak]
            aik = A.data[ak]
            for bk in range(B.indptr[k], B.indptr[k + 1]):
                j = B.indices[bk]
                if accumulator[j] == 0:
                    touched.append(j)
                accumulator[j] += aik * B.data[bk]
        touched_arr = np.array(sorted(touched), dtype=np.int64)
        out_indices.append(touched_arr)
        out_data.append(accumulator[touched_arr].copy())
        accumulator[touched_arr] = 0
        out_indptr[i + 1] = out_indptr[i] + touched_arr.size
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0, dtype=dtype)
    return sparse.csr_matrix((data, indices, out_indptr), shape=(n_rows, n_cols))


def spgemm_upper_triangle(
    a: sparse.spmatrix, b: sparse.spmatrix, dtype=np.int64, strict: bool = True
) -> sparse.csr_matrix:
    """Gustavson SpGEMM restricted to the (strict) upper triangle of the product.

    Intended for symmetric products such as ``H^T H``: only entries with
    column index greater than (``strict=True``) or at least (``strict=False``)
    the row index are accumulated and stored, halving the work — the paper's
    ``SpGEMM+Filter+Upper`` variant.
    """
    A = sparse.csr_matrix(a).astype(dtype)
    B = sparse.csr_matrix(b).astype(dtype)
    if A.shape[1] != B.shape[0]:
        raise ValidationError(
            f"inner dimensions do not match: {A.shape} @ {B.shape}"
        )
    n_rows, n_cols = A.shape[0], B.shape[1]
    accumulator = np.zeros(n_cols, dtype=dtype)
    out_indptr = np.zeros(n_rows + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    for i in range(n_rows):
        touched: list[int] = []
        lower_bound = i + 1 if strict else i
        for ak in range(A.indptr[i], A.indptr[i + 1]):
            k = A.indices[ak]
            aik = A.data[ak]
            for bk in range(B.indptr[k], B.indptr[k + 1]):
                j = B.indices[bk]
                if j < lower_bound:
                    continue
                if accumulator[j] == 0:
                    touched.append(j)
                accumulator[j] += aik * B.data[bk]
        touched_arr = np.array(sorted(touched), dtype=np.int64)
        out_indices.append(touched_arr)
        out_data.append(accumulator[touched_arr].copy())
        accumulator[touched_arr] = 0
        out_indptr[i + 1] = out_indptr[i] + touched_arr.size
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0, dtype=dtype)
    return sparse.csr_matrix((data, indices, out_indptr), shape=(n_rows, n_cols))
