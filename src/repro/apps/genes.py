"""Identifying genes critical to pathogenic viral response (Section V-A).

The paper builds a hypergraph from virology transcriptomics data — genes as
hyperedges, experimental conditions as vertices — and identifies important
genes by computing s-connected components and s-betweenness centrality for
increasing ``s``; at s = 5 the six most important genes stand out, with
IFIT1 and USP18 (which share more than 100 conditions) ranked highest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.dispatch import s_line_graph_ensemble
from repro.generators.datasets import virology_surrogate
from repro.hypergraph.hypergraph import Hypergraph
from repro.smetrics.centrality import s_betweenness_centrality
from repro.smetrics.connected import s_connected_components


@dataclass
class GeneImportanceResult:
    """Per-``s`` analysis of a gene–condition hypergraph."""

    s_values: List[int]
    #: ``s -> number of edges`` in the s-line graph (the Figure 5 visual shrinkage).
    line_graph_sizes: Dict[int, int] = field(default_factory=dict)
    #: ``s -> [(gene name, betweenness score), ...]`` sorted by decreasing score.
    top_genes: Dict[int, List[tuple]] = field(default_factory=dict)
    #: ``s -> connected components`` as lists of gene names.
    components: Dict[int, List[List[str]]] = field(default_factory=dict)

    def top_gene_names(self, s: int, k: int = 6) -> List[str]:
        """Names of the ``k`` highest-betweenness genes at threshold ``s``."""
        return [name for name, _ in self.top_genes[s][:k]]


def identify_important_genes(
    hypergraph: Optional[Hypergraph] = None,
    s_values: Sequence[int] = (1, 3, 5),
    top_k: int = 10,
    centrality_min_s: int = 2,
    seed: int = 0,
) -> GeneImportanceResult:
    """Run the Section V-A analysis on a gene–condition hypergraph.

    Parameters
    ----------
    hypergraph:
        Genes as hyperedges, conditions as vertices; defaults to the
        virology surrogate dataset.
    s_values:
        Overlap thresholds to analyse (the paper plots s = 1, 3, 5).
    top_k:
        How many top genes to retain per ``s``.
    centrality_min_s:
        Smallest ``s`` for which s-betweenness is computed.  The s = 1 line
        graph of transcriptomics data is a dense hairball whose betweenness
        is expensive and not used by the paper's analysis (the important
        genes are read off the s = 5 graph); set to 1 to force it.
    seed:
        Seed for the surrogate dataset when ``hypergraph`` is omitted.
    """
    h = hypergraph if hypergraph is not None else virology_surrogate(seed=seed)
    ensemble = s_line_graph_ensemble(h, list(s_values))
    result = GeneImportanceResult(s_values=sorted(set(int(s) for s in s_values)))
    for s, line_graph in ensemble.items():
        result.line_graph_sizes[s] = line_graph.num_edges
        if s >= centrality_min_s:
            scores = s_betweenness_centrality(h, s, line_graph=line_graph)
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
            result.top_genes[s] = [
                (str(h.edge_name(edge_id)), float(score))
                for edge_id, score in ranked[:top_k]
            ]
        else:
            result.top_genes[s] = []
        comps = s_connected_components(h, s, line_graph=line_graph, min_size=2)
        result.components[s] = [
            [str(h.edge_name(e)) for e in comp] for comp in comps
        ]
    return result
