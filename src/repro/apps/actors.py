"""Uncovering collaborations among actors (Section V-C).

The paper constructs an actor–movie hypergraph from IMDB (movies as
vertices, actors as hyperedges), computes the 100-line graph, and reports
the 100-connected components (groups of actors who appeared in more than
100 movies together) and the 100-betweenness centrality of their members —
finding, e.g., a star-shaped component centred on Adoor Bhasi.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dispatch import s_line_graph
from repro.generators.datasets import imdb_surrogate
from repro.hypergraph.hypergraph import Hypergraph
from repro.smetrics.centrality import s_betweenness_centrality
from repro.smetrics.connected import s_connected_components
from repro.utils.timing import StageTimes


@dataclass
class CollaborationResult:
    """Collaboration groups uncovered at a given overlap threshold ``s``."""

    s: int
    #: Groups of actor names that collaborated in at least ``s`` movies,
    #: sorted by decreasing size.
    components: List[List[str]] = field(default_factory=list)
    #: Actor name → s-betweenness score, for actors with non-zero score only.
    central_actors: Dict[str, float] = field(default_factory=dict)
    #: Number of edges in the s-line graph.
    line_graph_edges: int = 0
    #: Per-stage wall-clock breakdown of the analysis.
    times: StageTimes = field(default_factory=StageTimes)

    def most_central_actor(self) -> Optional[str]:
        """The actor with the highest s-betweenness score (None if all zero)."""
        if not self.central_actors:
            return None
        return max(self.central_actors, key=self.central_actors.get)


def find_collaborations(
    hypergraph: Optional[Hypergraph] = None,
    s: int = 100,
    seed: int = 0,
) -> CollaborationResult:
    """Run the Section V-C analysis on an actor–movie hypergraph.

    Parameters
    ----------
    hypergraph:
        Actors as hyperedges, movies as vertices; defaults to the IMDB
        surrogate with the paper's planted collaboration groups.
    s:
        Collaboration threshold (the paper uses 100).
    seed:
        Seed for the surrogate dataset when ``hypergraph`` is omitted.
    """
    h = hypergraph if hypergraph is not None else imdb_surrogate(seed=seed)
    result = CollaborationResult(s=s)
    with result.times.stage("s_line_graph"):
        line_graph = s_line_graph(h, s, algorithm="hashmap")
    result.line_graph_edges = line_graph.num_edges
    with result.times.stage("s_connected_components"):
        comps = s_connected_components(h, s, line_graph=line_graph, min_size=2)
    result.components = [[str(h.edge_name(e)) for e in comp] for comp in comps]
    with result.times.stage("s_betweenness"):
        scores = s_betweenness_centrality(h, s, line_graph=line_graph)
    result.central_actors = {
        str(h.edge_name(edge_id)): float(score)
        for edge_id, score in sorted(scores.items(), key=lambda kv: -kv[1])
        if score > 0.0
    }
    return result
