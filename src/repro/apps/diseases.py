"""Disease ranking via PageRank on s-clique graphs (Section III-I / Table II).

The paper links diseases that share associated genes: the clique expansion
(s = 1) of the disease–gene hypergraph and the higher-order s-clique graphs
for s = 10 and s = 100.  PageRank is computed on each graph; the top-ranked
diseases and their score percentiles are nearly identical across the three
graphs even though the s = 100 graph has ~231× fewer edges — motivating
high-order expansions as cheap, faithful substitutes for the clique
expansion.

In hypergraph terms the s-clique graph of ``H`` (vertices = diseases,
hyperedges = genes) is the s-line graph of the *dual* hypergraph, so the
implementation simply calls the standard machinery on ``H*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from repro.generators.datasets import disgenet_surrogate
from repro.graph.pagerank import pagerank, score_percentiles
from repro.hypergraph.hypergraph import Hypergraph
from repro.smetrics.base import line_graph_and_mapping


@dataclass
class DiseaseRankingResult:
    """PageRank rankings of diseases across several s-clique graphs."""

    s_values: List[int]
    #: ``s -> [(disease name, ordinal rank, score percentile), ...]`` for the top-k.
    top_ranked: Dict[int, List[tuple]] = field(default_factory=dict)
    #: ``s -> number of edges`` of the s-clique graph (Table II reports 2.7M/246K/12K).
    edge_counts: Dict[int, int] = field(default_factory=dict)
    #: ``s -> {disease name: ordinal rank}`` over all ranked diseases.
    full_rankings: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def overlap_of_top_k(self, s_a: int, s_b: int, k: int) -> float:
        """Fraction of the top-``k`` names at ``s_a`` that remain top-``k`` at ``s_b``."""
        names_a = {name for name, _, _ in self.top_ranked_k(s_a, k)}
        names_b = {name for name, _, _ in self.top_ranked_k(s_b, k)}
        if not names_a:
            return 0.0
        return len(names_a & names_b) / len(names_a)

    def top_ranked_k(self, s: int, k: int) -> List[tuple]:
        """The top-``k`` ``(name, rank, percentile)`` triples for threshold ``s``."""
        ranking = self.full_rankings[s]
        names = sorted(ranking, key=ranking.get)[:k]
        lookup = {name: (rank, pct) for name, rank, pct in self.top_ranked[s]}
        out = []
        for name in names:
            rank, pct = lookup.get(name, (ranking[name], float("nan")))
            out.append((name, rank, pct))
        return out


def rank_diseases(
    hypergraph: Optional[Hypergraph] = None,
    s_values: Sequence[int] = (1, 10, 100),
    top_k: int = 5,
    damping: float = 0.85,
    seed: int = 0,
) -> DiseaseRankingResult:
    """Run the Table II analysis on a disease–gene hypergraph.

    Parameters
    ----------
    hypergraph:
        Genes as hyperedges, diseases as vertices; defaults to the disGeNet
        surrogate.
    s_values:
        Clique-expansion thresholds (the paper uses 1, 10, 100).
    top_k:
        How many top diseases to tabulate per threshold.
    damping:
        PageRank damping factor.
    seed:
        Seed for the surrogate dataset when ``hypergraph`` is omitted.
    """
    h = hypergraph if hypergraph is not None else disgenet_surrogate(seed=seed)
    dual = h.dual()  # hyperedges of the dual = diseases
    result = DiseaseRankingResult(s_values=sorted(set(int(s) for s in s_values)))
    for s in result.s_values:
        graph, mapping, line_graph = line_graph_and_mapping(dual, s, algorithm="hashmap")
        result.edge_counts[s] = line_graph.num_edges
        if graph.num_vertices == 0:
            result.top_ranked[s] = []
            result.full_rankings[s] = {}
            continue
        scores = pagerank(graph, damping=damping)
        percentiles = score_percentiles(scores)
        order = np.argsort(-scores, kind="stable")
        names_in_order = [
            str(h.vertex_name(int(mapping.new_to_old[i]))) for i in order
        ]
        result.full_rankings[s] = {
            name: rank + 1 for rank, name in enumerate(names_in_order)
        }
        result.top_ranked[s] = [
            (
                names_in_order[rank],
                rank + 1,
                float(percentiles[order[rank]]),
            )
            for rank in range(min(top_k, len(names_in_order)))
        ]
    return result
