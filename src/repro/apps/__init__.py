"""Application workflows reproducing Section V and Section III-I of the paper.

* :mod:`repro.apps.genes`    — identify genes critical to pathogenic viral
  response from a gene–condition hypergraph (Section V-A / Figure 5);
* :mod:`repro.apps.authors`  — reveal collaboration structure in an
  author–paper hypergraph via the normalized algebraic connectivity of its
  s-line graphs (Section V-B / Figure 6);
* :mod:`repro.apps.actors`   — uncover actor collaborations in an
  actor–movie hypergraph via 100-connected components and 100-betweenness
  (Section V-C);
* :mod:`repro.apps.diseases` — rank diseases by PageRank on the clique
  expansion versus higher-order s-clique graphs (Section III-I / Table II).
"""

from repro.apps.genes import identify_important_genes, GeneImportanceResult
from repro.apps.authors import coauthorship_connectivity, CoauthorshipResult
from repro.apps.actors import find_collaborations, CollaborationResult
from repro.apps.diseases import rank_diseases, DiseaseRankingResult

__all__ = [
    "identify_important_genes",
    "GeneImportanceResult",
    "coauthorship_connectivity",
    "CoauthorshipResult",
    "find_collaborations",
    "CollaborationResult",
    "rank_diseases",
    "DiseaseRankingResult",
]
