"""Revealing relationships among authors (Section V-B / Figure 6).

The paper computes an ensemble of s-line graphs (s = 1..16) of the condMat
author–paper hypergraph and tracks the normalized algebraic connectivity of
each: decreasing values for s = 3..12 reveal sparse collaboration, and the
sharp increase from s = 13 shows that authors co-authoring at least 13
papers form densely connected groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.engine import QueryEngine
from repro.generators.datasets import condmat_surrogate
from repro.hypergraph.hypergraph import Hypergraph
from repro.smetrics.spectral import s_normalized_algebraic_connectivity


@dataclass
class CoauthorshipResult:
    """Normalized algebraic connectivity of the s-line graphs of an author–paper network."""

    s_values: List[int]
    #: ``s -> normalized algebraic connectivity`` (0.0 when the s-line graph is trivial).
    connectivity: Dict[int, float] = field(default_factory=dict)
    #: ``s -> number of edges`` in the s-line graph.
    line_graph_sizes: Dict[int, int] = field(default_factory=dict)

    def max_nontrivial_s(self) -> int:
        """Largest ``s`` whose s-line graph still has at least one edge."""
        nontrivial = [s for s, n in self.line_graph_sizes.items() if n > 0]
        return max(nontrivial) if nontrivial else 0

    def rises_at(self) -> Optional[int]:
        """The ``s`` value with the largest jump in connectivity over ``s − 1``.

        For the condMat data this is the paper's headline observation: the
        sharp increase at s = 13 showing that authors with 13+ joint papers
        form densely connected collectives.
        """
        ordered = sorted(self.connectivity)
        best_s: Optional[int] = None
        best_jump = 0.0
        for prev, cur in zip(ordered, ordered[1:]):
            jump = self.connectivity[cur] - self.connectivity[prev]
            if jump > best_jump:
                best_jump = jump
                best_s = cur
        return best_s


def coauthorship_connectivity(
    hypergraph: Optional[Hypergraph] = None,
    s_values: Sequence[int] = tuple(range(1, 17)),
    seed: int = 0,
    engine: Optional[QueryEngine] = None,
) -> CoauthorshipResult:
    """Run the Section V-B analysis on an author–paper hypergraph.

    Parameters
    ----------
    hypergraph:
        Papers as hyperedges, authors as vertices; defaults to the condMat
        surrogate.
    s_values:
        Thresholds to sweep (the paper uses 1..16, the largest s with
        non-singleton components).
    seed:
        Seed for the surrogate dataset when ``hypergraph`` is omitted.
    engine:
        Optional pre-built :class:`~repro.engine.QueryEngine` to serve the
        sweep from (its hypergraph takes precedence); one is created
        otherwise.  The whole s-range is a single counting pass either way —
        the engine additionally caches the per-s views for later queries.
    """
    if engine is None:
        h = hypergraph if hypergraph is not None else condmat_surrogate(seed=seed)
        engine = QueryEngine(h)
    elif (
        hypergraph is not None
        and hypergraph.fingerprint() != engine.fingerprint()
    ):
        raise ValueError(
            "hypergraph and engine disagree: pass one or the other, or an "
            "engine built over the same hypergraph"
        )
    h = engine.hypergraph
    s_list = sorted(set(int(s) for s in s_values))
    sweep = engine.sweep(s_list)
    result = CoauthorshipResult(s_values=s_list)
    for s in s_list:
        line_graph = sweep.line_graphs[s]
        result.line_graph_sizes[s] = line_graph.num_edges
        result.connectivity[s] = s_normalized_algebraic_connectivity(
            h, s, line_graph=line_graph
        )
    return result
