"""Named failpoints: deterministic fault injection for the serving stack.

A *failpoint* is a named hook compiled into a hot path (``fire("wal.append")``)
that normally does nothing.  When a test — or the chaos harness driving live
subprocesses — *activates* the point, the next pass through the hook performs
one of four actions:

``error``
    Raise :class:`FailpointError`, an ``OSError`` subclass, so existing
    durability paths (WAL rollback, admission-queue poisoning, transport
    error classification) handle the injected fault exactly like a real
    disk or kernel failure.  The optional value is the errno to carry
    (default ``EIO``; use ``28`` for an ENOSPC).
``crash``
    ``os._exit(value)`` — the process dies *now*, mid-syscall-sequence,
    with no atexit/finally cleanup: the closest a test can get to
    SIGKILL while staying deterministic about *where* the kill lands.
``delay``
    Sleep ``value`` milliseconds — turns a fast path into a slow one so
    races, timeouts and backpressure paths become reachable.
``drop``
    Raise :class:`FailpointDropConnection`, a ``ConnectionError``
    subclass, which the transport layer answers by dropping the client.

Activation has two routes.  In-process: :func:`activate`.  Cross-process:
the ``REPRO_FAILPOINTS`` environment variable, parsed when this module is
first imported — so spawn-based subprocesses (``multiprocessing``
``spawn`` context, ``subprocess`` CLI children) inherit active points
from their parent's environment with no extra plumbing.  The grammar is::

    REPRO_FAILPOINTS="name=action[:value][*count];name2=action2..."

e.g. ``wal.append=error:28*1;transport.send=delay:50`` — fail the next
WAL append with ENOSPC once, and delay every response frame by 50 ms.

The disabled path mirrors the ``NullRegistry`` / no-op-span idiom: with
no point active anywhere, :func:`fire` is one module-global boolean read
and a return — cheap enough to ride inside the ``obs_overhead`` CI floor
(see ``benchmarks/bench_obs_overhead.py``).  Hits are counted on the
per-process metrics registry as ``chaos_failpoint_hits_total{point}``.
"""

from __future__ import annotations

import errno as _errno
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs import get_registry

__all__ = [
    "ACTIONS",
    "CATALOGUE",
    "FailpointDropConnection",
    "FailpointError",
    "activate",
    "active",
    "deactivate",
    "env_spec",
    "fire",
    "hits",
    "install_from_env",
    "is_active",
    "parse_spec",
    "remote_control_enabled",
    "reset",
]

#: Environment variable carrying failpoint specs into child processes.
ENV_VAR = "REPRO_FAILPOINTS"
#: Environment variable gating the remote ``chaos`` wire op (see
#: :meth:`repro.service.QueryService` — a live server only honours
#: failpoint control frames when launched with this set, so production
#: deployments cannot be chaos-injected over the wire by accident).
CONTROL_ENV_VAR = "REPRO_CHAOS"

ACTIONS = ("error", "crash", "delay", "drop")

#: The failpoints compiled into the stack, for docs / CLI listing /
#: typo protection at activation time.
CATALOGUE = {
    "wal.append": "WAL record append, before the write hits the file",
    "wal.fsync": "WAL batch fsync — the group-commit durability point",
    "store.compact.fold": "compaction, after reading live records, before the new snapshot",
    "store.compact.install": "compaction, before the manifest atomically swaps generations",
    "store.shard_load": "shard fault-in (lazy load of a non-resident shard)",
    "admission.commit": "admission group commit, inside the durability scope",
    "transport.recv": "server side, after a request frame is read",
    "transport.send": "server side, before a response frame is written",
    "repl.manifest": "replication manifest build (the repl_manifest op)",
    "repl.wal": "replication WAL-tail build (the repl_wal op)",
    "repl.fetch": "replication chunk fetch (the repl_fetch op)",
    "service.execute": "QueryService dispatch entry — every request, any op",
}


class FailpointError(OSError):
    """Injected failure; an ``OSError`` so durability paths treat it as real."""

    def __init__(self, point: str, err: int = _errno.EIO) -> None:
        super().__init__(err, f"injected chaos failure at failpoint '{point}'")
        self.point = point


class FailpointDropConnection(ConnectionError):
    """Injected connection drop; handlers abandon the peer like a real reset."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected connection drop at failpoint '{point}'")
        self.point = point


class _Failpoint:
    """One active point: action + optional value + optional remaining count."""

    __slots__ = ("name", "action", "value", "remaining", "hits", "_lock", "_counter")

    def __init__(
        self,
        name: str,
        action: str,
        value: Optional[float] = None,
        count: Optional[int] = None,
    ) -> None:
        self.name = name
        self.action = action
        self.value = value
        self.remaining = count
        self.hits = 0
        self._lock = threading.Lock()
        self._counter = get_registry().counter(
            "chaos_failpoint_hits_total",
            "Times an active chaos failpoint fired, by point name.",
            ("point",),
        ).labels(point=name)

    def trigger(self) -> None:
        with self._lock:
            if self.remaining is not None:
                if self.remaining <= 0:
                    return
                self.remaining -= 1
            self.hits += 1
            self._counter.inc()
            if self.remaining == 0:
                _deactivate_quietly(self.name)
            action, value = self.action, self.value
        if action == "error":
            raise FailpointError(self.name, int(value) if value else _errno.EIO)
        if action == "crash":
            os._exit(int(value) if value else 17)
        if action == "delay":
            time.sleep((value or 0.0) / 1000.0)
            return
        if action == "drop":
            raise FailpointDropConnection(self.name)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "point": self.name,
                "action": self.action,
                "value": self.value,
                "remaining": self.remaining,
                "hits": self.hits,
            }


# Copy-on-write registry: `fire` reads `_points` with no lock (dict reads
# are atomic); mutations swap in a fresh dict under `_mutate_lock`.  The
# `_armed` boolean is the entire cost of the disabled path.
_armed: bool = False
_points: Dict[str, _Failpoint] = {}
_hits_retired: Dict[str, int] = {}
_mutate_lock = threading.Lock()


def fire(point: str) -> None:
    """Hot-path hook: no-op unless ``point`` has been activated."""
    if not _armed:
        return
    fp = _points.get(point)
    if fp is not None:
        fp.trigger()


def activate(
    point: str,
    action: str,
    value: Optional[float] = None,
    count: Optional[int] = None,
) -> None:
    """Arm ``point`` with ``action`` (replacing any previous arming).

    ``count`` limits how many times the point fires before it disarms
    itself; ``None`` means until :func:`deactivate`.  Unknown point names
    are rejected — a chaos run that silently injects nothing because of
    a typo would report a vacuous pass.
    """
    global _armed
    if point not in CATALOGUE:
        known = ", ".join(sorted(CATALOGUE))
        raise ValueError(f"unknown failpoint '{point}' (known: {known})")
    if action not in ACTIONS:
        raise ValueError(f"unknown failpoint action '{action}' (known: {ACTIONS})")
    if count is not None and int(count) <= 0:
        raise ValueError(f"failpoint count must be positive, got {count}")
    with _mutate_lock:
        replaced = dict(_points)
        replaced[point] = _Failpoint(
            point, action, value, None if count is None else int(count)
        )
        _swap(replaced)


def deactivate(point: str) -> bool:
    """Disarm ``point``; returns whether it was active."""
    with _mutate_lock:
        if point not in _points:
            return False
        replaced = dict(_points)
        fp = replaced.pop(point)
        _hits_retired[point] = _hits_retired.get(point, 0) + fp.hits
        _swap(replaced)
        return True


def _deactivate_quietly(point: str) -> None:
    """Count-exhausted self-disarm, called with the point's lock held."""
    with _mutate_lock:
        if point in _points:
            replaced = dict(_points)
            fp = replaced.pop(point)
            _hits_retired[point] = _hits_retired.get(point, 0) + fp.hits
            _swap(replaced)


def reset() -> None:
    """Disarm every point and forget retired hit counts."""
    with _mutate_lock:
        _hits_retired.clear()
        _swap({})


def _swap(replaced: Dict[str, _Failpoint]) -> None:
    global _points, _armed
    _points = replaced
    _armed = bool(replaced)


def is_active(point: str) -> bool:
    return point in _points


def active() -> List[Dict[str, object]]:
    """Describe every armed point (stable order)."""
    return [fp.describe() for _, fp in sorted(_points.items())]


def hits() -> Dict[str, int]:
    """Total fire counts per point, including disarmed points."""
    out = dict(_hits_retired)
    for name, fp in _points.items():
        out[name] = out.get(name, 0) + fp.describe()["hits"]  # type: ignore[operator]
    return out


# --------------------------------------------------------------------- #
# Environment propagation (spawn-based children inherit active points)
# --------------------------------------------------------------------- #
def parse_spec(text: str) -> List[Dict[str, object]]:
    """Parse ``name=action[:value][*count][;...]`` into activation kwargs."""
    specs: List[Dict[str, object]] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad failpoint spec '{part}' (expected name=action)")
        name, _, rhs = part.partition("=")
        count: Optional[int] = None
        if "*" in rhs:
            rhs, _, count_text = rhs.rpartition("*")
            count = int(count_text)
        action, _, value_text = rhs.partition(":")
        value = float(value_text) if value_text else None
        specs.append(
            {"point": name.strip(), "action": action.strip(), "value": value,
             "count": count}
        )
    return specs


def format_spec(point: str, action: str, value=None, count=None) -> str:
    """One spec in the ``ENV_VAR`` grammar (inverse of :func:`parse_spec`)."""
    text = f"{point}={action}"
    if value is not None:
        text += f":{value:g}"
    if count is not None:
        text += f"*{int(count)}"
    return text


def env_spec() -> str:
    """Serialise the armed points for a child's ``REPRO_FAILPOINTS``."""
    parts = []
    for desc in active():
        parts.append(
            format_spec(
                str(desc["point"]), str(desc["action"]),
                desc["value"], desc["remaining"],
            )
        )
    return ";".join(parts)


def install_from_env(environ=os.environ) -> int:
    """Activate every point named in ``REPRO_FAILPOINTS``; returns how many.

    Runs once at import, which is what makes env-var propagation work:
    any child process that imports this module (every process serving
    the stack does, via the ``fire`` hooks) arms its inherited points
    before serving its first request.
    """
    text = environ.get(ENV_VAR, "")
    if not text:
        return 0
    specs = parse_spec(text)
    for spec in specs:
        activate(**spec)  # type: ignore[arg-type]
    return len(specs)


def remote_control_enabled(environ=os.environ) -> bool:
    """Whether the ``chaos`` wire op may control this process's failpoints."""
    return environ.get(CONTROL_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


install_from_env()
