"""The chaos scenario suite behind ``repro chaos --scenario NAME``.

Each scenario stands up a real serving topology (subprocesses over the
socket protocol — see :mod:`repro.chaos.harness`), injects faults via the
failpoint subsystem, and scores the orthogonal correctness axes:

``kill_writer_mid_compaction``
    A ``crash`` failpoint at ``store.compact.install`` kills the writer
    process mid-compaction while an updater is streaming acked adds.
    After restart the served state must contain every acked update, with
    the single in-flight add resolved against the served fingerprint.
``partition_replica``
    An ``error`` failpoint at ``repl.manifest`` on the writer severs the
    replication plane while the stats/query plane stays up: the
    replica's lag gauges must rise, ``/readyz`` must flip to 503
    (``last sync failed``) while stale reads keep serving, and after the
    heal the gauges must return to zero, the probe to 200, and the
    mirror directory to byte-identical.
``wal_enospc``
    An ``error:28`` (ENOSPC) failpoint at ``wal.append`` fails one group
    commit: the updater gets a *typed* error (no ack), the admission
    queue poisons, ``/readyz`` answers 503 (``poisoned``) while reads
    continue, and a restart recovers exactly the acknowledged prefix —
    the failed op must be absent.
``restart_everything``
    SIGKILL/restart the writer in a loop under a long-lived replica:
    every cycle must reconverge, and the surviving replica must not leak
    (open fds and RSS bounded across cycles — the process runtime
    gauges are the measurement).

Results aggregate into per-axis artifacts (``AXES_correctness.json``,
``AXES_durability.json``, ``AXES_freshness.json``) whose schema
``benchmarks/check_axes.py`` gates in CI; artifacts merge across runs so
axes can be produced one scenario at a time.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.harness import (
    ChaosHarness,
    LagSampler,
    ScenarioError,
    diff_stores,
    metric_value,
    percentile,
    probe,
    scrape_metrics,
    wait_until,
)

__all__ = ["SCENARIOS", "ScenarioResult", "run_scenarios", "write_axes"]

#: Freshness SLO: seconds a node may take to answer ``/readyz`` 200 after
#: a restart or heal (generous for shared CI runners; a regression that
#: matters — a replica stuck resyncing from scratch — blows way past it).
TIME_TO_READY_SLO_S = 30.0
#: Freshness SLO: p95 generation lag across post-heal/converged samples.
P95_GENERATION_LAG_SLO = 2.0
#: Leak bounds for the long-lived replica in ``restart_everything``.
FD_GROWTH_LIMIT = 20.0
RSS_GROWTH_LIMIT_BYTES = 96 * 1024 * 1024


@dataclass
class ScenarioResult:
    """One scenario's verdicts, sliced by correctness axis."""

    name: str
    failures: List[str] = field(default_factory=list)
    correctness: Dict[str, object] = field(default_factory=dict)
    durability: Optional[Dict[str, object]] = None
    freshness: Optional[Dict[str, object]] = None
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_json(self) -> Dict[str, object]:
        return {
            "scenario": self.name,
            "pass": self.passed,
            "duration_s": round(self.duration_s, 3),
            "failures": list(self.failures),
            "correctness": self.correctness,
            "durability": self.durability,
            "freshness": self.freshness,
        }


def _axis_pass(result: ScenarioResult, axis: str, data: Dict[str, object]) -> bool:
    """An axis entry fails only on ITS OWN failures — orthogonality."""
    prefixes = {
        "correctness": ("correctness", "observability"),
        "durability": ("durability",),
        "freshness": ("freshness",),
    }[axis]
    tainted = any(f.startswith(prefixes) for f in result.failures)
    return not tainted


# --------------------------------------------------------------------- #
# Scenario bodies
# --------------------------------------------------------------------- #
def scenario_kill_writer_mid_compaction(
    h: ChaosHarness, quick: bool
) -> ScenarioResult:
    result = ScenarioResult(name="kill_writer_mid_compaction")
    updates = 8 if quick else 24
    writer, address, base_url = h.start_writer()
    port = address[1]
    client = h.client(address)
    h.submit_updates(client, updates)
    h.check_oracle(client, "pre-crash")

    # Arm the crash, then race an updater thread against the compaction
    # that detonates it: the updater's in-flight add at the instant of
    # death is the scenario's indeterminate op.
    h.chaos(client, "activate", point="store.compact.install", action="crash")
    # The count is effectively "until the connection dies": submit_updates
    # stops at the first transport failure, recording the in-flight op as
    # the indeterminate one.
    updater = threading.Thread(
        target=lambda: h.submit_updates(h.client(address), 100_000),
        daemon=True,
    )
    updater.start()
    time.sleep(0.1)
    from repro.service.transport import TransportError

    try:
        client.compact()
        result.failures.append(
            "correctness: compact returned although the crash failpoint was armed"
        )
    except (TransportError, ConnectionError, OSError):
        pass
    rc = writer.wait_exit()
    h.check(rc == 17, f"correctness: crash exit code {rc}, expected 17")
    updater.join(timeout=30.0)
    h.check(not updater.is_alive(), "correctness: updater thread hung after crash")

    restart_at = time.monotonic()
    writer, address, base_url = h.start_writer(port=port)
    time_to_ready = time.monotonic() - restart_at + h.await_ready(base_url)
    client = h.client(address)

    had_indeterminate = h.ledger.indeterminate is not None
    h.resolve_indeterminate(client)
    divergences = h.check_oracle(client, "post-restart")

    # The stack must keep working after recovery: more acked traffic, a
    # *successful* compaction this time, and the oracle again.
    h.submit_updates(client, 4)
    client.compact()
    divergences += h.check_oracle(client, "post-recovery-compaction")
    h.check_slow_query_trace_linkage(client, "post-restart")
    client.close()

    result.failures.extend(h.failures)
    result.correctness = {
        "oracle_queries": 3 * 3,
        "divergences": divergences,
        "pass": _axis_pass(result, "correctness", {}),
    }
    result.durability = {
        "acked_updates": len(h.ledger.acked),
        "indeterminate_ops": 1 if had_indeterminate else 0,
        "acked_lost": 0 if _axis_pass(result, "durability", {}) else 1,
        "pass": _axis_pass(result, "durability", {}),
    }
    if time_to_ready > TIME_TO_READY_SLO_S:
        result.failures.append(
            f"freshness: writer took {time_to_ready:.1f}s to become ready "
            f"(SLO {TIME_TO_READY_SLO_S:.0f}s)"
        )
    result.freshness = {
        "time_to_ready_s": round(time_to_ready, 3),
        "slo_s": TIME_TO_READY_SLO_S,
        "pass": _axis_pass(result, "freshness", {}),
    }
    return result


def scenario_partition_replica(h: ChaosHarness, quick: bool) -> ScenarioResult:
    result = ScenarioResult(name="partition_replica")
    updates = 6 if quick else 18
    writer, w_address, w_url = h.start_writer()
    w_client = h.client(w_address)
    h.submit_updates(w_client, updates)

    replica, r_address, r_url = h.start_replica(w_address)
    r_client = h.client(r_address)
    h.await_converged(w_client, r_client)
    h.check_oracle(r_client, "replica-baseline")

    sampler = LagSampler(r_url)
    sampler.start()
    queries = h.start_query_traffic(r_address)

    # Partition the replication plane: every repl_manifest answer from
    # the writer now fails, while its stats/query plane keeps serving —
    # so the replica still *learns* how far behind it is (lag gauges
    # rise) but cannot close the gap.
    partition_at = time.monotonic()
    h.chaos(w_client, "activate", point="repl.manifest", action="error")
    h.submit_updates(w_client, updates)
    w_client.compact()  # bumps the writer generation: generation lag >= 1
    h.await_unready(r_url)
    status, payload = probe(r_url, "/readyz")
    h.check(
        status == 503 and payload.get("reason") == "last sync failed",
        f"observability[partition]: /readyz ({status}, "
        f"{payload.get('reason')!r}) != (503, 'last sync failed')",
    )
    # Stale reads must keep flowing on the partitioned replica.
    stale = r_client.metric(1, "connected_components")
    h.check(bool(stale), "correctness[partition]: stale read returned nothing")
    wait_until(
        lambda: any(s[1] >= 1.0 for s in sampler.window(partition_at)),
        description="generation-lag gauge >= 1 during partition",
    )

    # Heal, reconverge, and require full observability recovery.
    heal_at = time.monotonic()
    h.chaos(w_client, "deactivate", point="repl.manifest")
    time_to_ready = h.await_ready(r_url)
    h.await_converged(w_client, r_client)
    queries.stop()
    h.check(queries.ok > 0, "correctness[partition]: no replica queries succeeded")
    divergences = h.check_oracle(r_client, "replica-healed")
    divergences += h.check_oracle(w_client, "writer-healed")
    wait_until(
        lambda: sampler.samples and sampler.samples[-1][1] == 0.0
        and sampler.samples[-1][2] == 0.0,
        description="lag gauges back to zero after heal",
    )
    sampler.stop()

    partition_window = sampler.window(partition_at, heal_at)
    h.check(
        any(s[2] > 0.0 for s in partition_window),
        "observability[partition]: wal-lag gauge never rose during partition",
    )
    healed_window = sampler.window(heal_at)
    p95_lag = percentile([s[1] for s in healed_window], 0.95)
    if p95_lag > P95_GENERATION_LAG_SLO:
        result.failures.append(
            f"freshness: post-heal p95 generation lag {p95_lag} "
            f"(SLO {P95_GENERATION_LAG_SLO})"
        )
    if time_to_ready > TIME_TO_READY_SLO_S:
        result.failures.append(
            f"freshness: replica took {time_to_ready:.1f}s to re-ready "
            f"(SLO {TIME_TO_READY_SLO_S:.0f}s)"
        )

    # The injected faults must be observable on the writer's /metrics.
    scraped = scrape_metrics(w_url + "/metrics")
    fired = metric_value(
        scraped, "chaos_failpoint_hits_total", {"point": "repl.manifest"}
    )
    h.check(
        fired is not None and fired >= 1.0,
        "observability[partition]: chaos_failpoint_hits_total{point=repl.manifest} "
        f"= {fired}, expected >= 1",
    )
    h.check_slow_query_trace_linkage(w_client, "partition")

    # Mirror must be byte-identical once converged and traffic stopped.
    problems = diff_stores(h.store_path, h.mirror_path)
    h.check(
        not problems,
        "correctness[partition]: mirror differs from writer store: "
        + "; ".join(problems[:5]),
    )
    r_client.close()
    w_client.close()

    result.failures.extend(h.failures)
    result.correctness = {
        "oracle_queries": 3 * 3,
        "divergences": divergences,
        "stale_reads_served": queries.ok,
        "mirror_byte_identical": not problems,
        "pass": _axis_pass(result, "correctness", {}),
    }
    result.freshness = {
        "time_to_ready_s": round(time_to_ready, 3),
        "slo_s": TIME_TO_READY_SLO_S,
        "p95_generation_lag": p95_lag,
        "p95_generation_lag_slo": P95_GENERATION_LAG_SLO,
        "lag_samples": len(sampler.samples),
        "pass": _axis_pass(result, "freshness", {}),
    }
    return result


def scenario_wal_enospc(h: ChaosHarness, quick: bool) -> ScenarioResult:
    result = ScenarioResult(name="wal_enospc")
    updates = 6 if quick else 18
    writer, address, base_url = h.start_writer()
    port = address[1]
    client = h.client(address)
    h.submit_updates(client, updates)
    h.check_oracle(client, "pre-fault")

    # One WAL append fails with ENOSPC (errno 28): the group commit
    # breaks, the op is REFUSED with a typed error (so the client knows
    # it was not acked), and the queue poisons until restart.
    h.chaos(client, "activate", point="wal.append", action="error", value=28, count=1)
    acked_more = h.submit_updates(client, 4)
    h.check(
        h.ledger.known_failed >= 1,
        "durability: the ENOSPC add was not refused with a typed error",
    )
    h.await_unready(base_url)
    status, payload = probe(base_url, "/readyz")
    h.check(
        status == 503 and "poisoned" in str(payload.get("reason", "")),
        f"observability[enospc]: /readyz ({status}, {payload.get('reason')!r}) "
        "!= (503, admission-poisoned)",
    )
    # Reads bypass admission and must keep serving while poisoned.  (The
    # served state may legitimately be AHEAD of the log here, so the
    # byte-exact oracle check waits for the restart.)
    h.check(
        bool(client.metric(1, "connected_components")),
        "correctness[enospc]: reads stopped while poisoned",
    )

    # A poisoned writer's contract is "restart me": do, and require
    # exactly the acknowledged prefix back — the refused op must be gone.
    writer.terminate()
    writer.wait_exit()
    restart_at = time.monotonic()
    writer, address, base_url = h.start_writer(port=port)
    time_to_ready = time.monotonic() - restart_at + h.await_ready(base_url)
    client = h.client(address)
    h.resolve_indeterminate(client)
    divergences = h.check_oracle(client, "post-restart")
    h.submit_updates(client, 2)
    divergences += h.check_oracle(client, "post-recovery-writes")
    client.close()

    result.failures.extend(h.failures)
    result.correctness = {
        "oracle_queries": 3 * 3,
        "divergences": divergences,
        "pass": _axis_pass(result, "correctness", {}),
    }
    result.durability = {
        "acked_updates": len(h.ledger.acked),
        "typed_refusals": h.ledger.known_failed,
        "acked_after_fault": acked_more,
        "acked_lost": 0 if _axis_pass(result, "durability", {}) else 1,
        "pass": _axis_pass(result, "durability", {}),
    }
    if time_to_ready > TIME_TO_READY_SLO_S:
        result.failures.append(
            f"freshness: writer took {time_to_ready:.1f}s to become ready "
            f"(SLO {TIME_TO_READY_SLO_S:.0f}s)"
        )
    result.freshness = {
        "time_to_ready_s": round(time_to_ready, 3),
        "slo_s": TIME_TO_READY_SLO_S,
        "pass": _axis_pass(result, "freshness", {}),
    }
    return result


def scenario_restart_everything(h: ChaosHarness, quick: bool) -> ScenarioResult:
    result = ScenarioResult(name="restart_everything")
    cycles = 2 if quick else 3
    updates = 5 if quick else 12
    writer, w_address, w_url = h.start_writer()
    port = w_address[1]
    w_client = h.client(w_address)
    h.submit_updates(w_client, updates)
    replica, r_address, r_url = h.start_replica(w_address)
    r_client = h.client(r_address)
    h.await_converged(w_client, r_client)

    def replica_resources() -> Tuple[float, float]:
        scraped = scrape_metrics(r_url + "/metrics")
        return (
            metric_value(scraped, "process_open_fds") or -1.0,
            metric_value(scraped, "process_resident_memory_bytes") or -1.0,
        )

    fds_before, rss_before = replica_resources()
    ready_times: List[float] = []
    for cycle in range(cycles):
        h.submit_updates(w_client, updates)
        h.await_converged(w_client, r_client)
        h.check_oracle(r_client, f"cycle-{cycle}-pre-kill")

        writer.kill()  # SIGKILL: no drain, no cleanup — the hard case
        writer.wait_exit()
        h.await_unready(r_url)

        restart_at = time.monotonic()
        writer, w_address, w_url = h.start_writer(port=port)
        ready_times.append(time.monotonic() - restart_at + h.await_ready(w_url))
        w_client.close()
        w_client = h.client(w_address)
        h.resolve_indeterminate(w_client)
        ready_times.append(h.await_ready(r_url))
        h.await_converged(w_client, r_client)

    divergences = h.check_oracle(r_client, "final-replica")
    divergences += h.check_oracle(w_client, "final-writer")
    problems = diff_stores(h.store_path, h.mirror_path)
    h.check(
        not problems,
        "correctness[restart]: mirror differs after restart cycles: "
        + "; ".join(problems[:5]),
    )

    # The long-lived replica must not leak across its peer's crash loop.
    fds_after, rss_after = replica_resources()
    if fds_before > 0 and fds_after > 0:
        h.check(
            fds_after - fds_before <= FD_GROWTH_LIMIT,
            f"observability[restart]: replica leaked fds "
            f"({fds_before:.0f} -> {fds_after:.0f})",
        )
    if rss_before > 0 and rss_after > 0:
        h.check(
            rss_after - rss_before <= RSS_GROWTH_LIMIT_BYTES,
            f"observability[restart]: replica RSS grew "
            f"{rss_after - rss_before:.0f} bytes across {cycles} cycles",
        )
    r_client.close()
    w_client.close()

    result.failures.extend(h.failures)
    worst_ready = max(ready_times) if ready_times else 0.0
    result.correctness = {
        "oracle_queries": 3 * (cycles + 2),
        "divergences": divergences,
        "mirror_byte_identical": not problems,
        "pass": _axis_pass(result, "correctness", {}),
    }
    result.durability = {
        "acked_updates": len(h.ledger.acked),
        "restart_cycles": cycles,
        "acked_lost": 0 if _axis_pass(result, "durability", {}) else 1,
        "pass": _axis_pass(result, "durability", {}),
    }
    if worst_ready > TIME_TO_READY_SLO_S:
        result.failures.append(
            f"freshness: worst time-to-ready {worst_ready:.1f}s "
            f"(SLO {TIME_TO_READY_SLO_S:.0f}s)"
        )
    result.freshness = {
        "time_to_ready_s": round(worst_ready, 3),
        "slo_s": TIME_TO_READY_SLO_S,
        "replica_fd_growth": fds_after - fds_before,
        "replica_rss_growth_bytes": rss_after - rss_before,
        "pass": _axis_pass(result, "freshness", {}),
    }
    return result


SCENARIOS: Dict[str, Callable[[ChaosHarness, bool], ScenarioResult]] = {
    "kill_writer_mid_compaction": scenario_kill_writer_mid_compaction,
    "partition_replica": scenario_partition_replica,
    "wal_enospc": scenario_wal_enospc,
    "restart_everything": scenario_restart_everything,
}


# --------------------------------------------------------------------- #
# Runner + per-axis artifacts
# --------------------------------------------------------------------- #
def run_scenarios(
    names: List[str],
    quick: bool = False,
    results_dir: Optional[str] = None,
    emit: Callable[[Dict[str, object]], None] = lambda payload: print(
        json.dumps(payload)
    ),
) -> List[ScenarioResult]:
    """Run ``names`` in order, each in a fresh world; write axis artifacts."""
    results: List[ScenarioResult] = []
    for name in names:
        if name not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ValueError(f"unknown scenario '{name}' (known: {known})")
        with tempfile.TemporaryDirectory(prefix=f"chaos-{name}-") as root:
            harness = ChaosHarness(root, quick=quick)
            started = time.monotonic()
            try:
                result = SCENARIOS[name](harness, quick)
            except ScenarioError as exc:
                result = ScenarioResult(name=name)
                result.failures.extend(harness.failures)
                result.failures.append(f"correctness: scenario aborted: {exc}")
            finally:
                harness.teardown()
            result.duration_s = time.monotonic() - started
            results.append(result)
            emit(result.to_json())
    if results_dir:
        write_axes(results, results_dir)
    return results


def write_axes(results: List[ScenarioResult], results_dir: str) -> List[str]:
    """Merge results into ``AXES_<axis>.json`` artifacts for the CI gate.

    Artifacts merge per scenario: running one scenario updates only its
    own entry, so axes can be assembled across several invocations.
    """
    os.makedirs(results_dir, exist_ok=True)
    written: List[str] = []
    for axis in ("correctness", "durability", "freshness"):
        entries: Dict[str, Dict[str, object]] = {}
        path = os.path.join(results_dir, f"AXES_{axis}.json")
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entries = dict(json.load(handle).get("scenarios", {}))
            except (OSError, json.JSONDecodeError, AttributeError):
                entries = {}
        for result in results:
            data = getattr(result, axis)
            if axis == "correctness":
                data = dict(data or {})
                data["failures"] = [
                    f
                    for f in result.failures
                    if f.startswith(("correctness", "observability"))
                ]
            if data is not None:
                entries[result.name] = data
        payload = {
            "axis": axis,
            "pass": all(bool(e.get("pass")) for e in entries.values()),
            "scenarios": entries,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written
