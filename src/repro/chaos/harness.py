"""Chaos scenario toolkit: live multi-process serving stacks under fault.

The harness stands up the same topology production runs — a writer
``repro serve --listen`` process, optionally a chained ``repro replicate
--serve`` remote read replica, each with a ``/metrics`` + probes listener
— as *subprocesses*, drives mixed query/update traffic over the real
socket protocol, injects faults through the failpoint subsystem
(:mod:`repro.chaos.failpoints`, controlled remotely via the gated
``chaos`` op), and measures three of the four orthogonal correctness
axes the CI gate consumes (:mod:`benchmarks.check_axes`):

**correctness** — served metric values must equal the
:class:`repro.core.pipeline.SLinePipeline` oracle byte-for-byte (JSON
text), and the observability invariants must hold (lag gauges move,
``/readyz`` flips, slow-query entries link to buffered traces);

**durability** — every *acknowledged* update survives every crash.  The
single in-flight update at a kill is *indeterminate* (the ack never
arrived); it is resolved after restart against the served hypergraph
fingerprint, so the invariant checked is exactly
``acked ⊆ served ⊆ acked ∪ indeterminate``;

**freshness** — replica generation lag (p95 over healthy-phase samples)
and time-to-ready after a heal/restart, against an SLO.

(The fourth axis, **throughput**, comes from the existing ``BENCH_*``
headline floors — a chaos run must not be the thing that measures
steady-state speed.)

Scenarios themselves live in :mod:`repro.chaos.scenarios`.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple
from urllib.error import HTTPError, URLError
from urllib.request import Request as _HttpRequest
from urllib.request import urlopen

import repro
from repro.core.pipeline import SLinePipeline
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import make_rng

#: Wall-clock budget for any single wait (process line, convergence, probe
#: flip).  Generous: CI machines stall; a stuck scenario still dies fast
#: enough for the job timeout to attribute it.
DEFAULT_TIMEOUT = 60.0


class ScenarioError(AssertionError):
    """A chaos invariant did not hold (or the stack failed to come up)."""


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = DEFAULT_TIMEOUT,
    interval: float = 0.05,
    description: str = "condition",
) -> float:
    """Poll ``predicate`` until true; returns elapsed seconds.

    Exceptions from the predicate count as "not yet" — probing a process
    that is mid-restart raises connection errors by design.
    """
    start = time.monotonic()
    deadline = start + timeout
    while True:
        try:
            if predicate():
                return time.monotonic() - start
        except Exception:
            pass
        if time.monotonic() > deadline:
            raise ScenarioError(f"timed out after {timeout:.0f}s waiting for {description}")
        time.sleep(interval)


# --------------------------------------------------------------------- #
# Subprocess management
# --------------------------------------------------------------------- #
def harness_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Subprocess environment with this interpreter's ``repro`` importable."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if extra:
        env.update(extra)
    return env


class ManagedProcess:
    """A CLI subprocess whose JSON stdout lines the harness consumes.

    ``repro serve``/``repro replicate`` announce their sockets as JSON
    lines (``{"op": "listening", ...}``); :meth:`expect` reads forward to
    a named announcement.  stdout and stderr are pumped on background
    threads so a chatty child can never fill a pipe and deadlock the
    scenario, and stderr is kept for failure reports.
    """

    def __init__(
        self,
        argv: Sequence[str],
        env: Optional[Dict[str, str]] = None,
        name: str = "proc",
    ) -> None:
        self.name = name
        self.argv = list(argv)
        self.proc = subprocess.Popen(
            self.argv,
            env=env if env is not None else harness_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stderr: List[str] = []
        self._pumps = [
            threading.Thread(target=self._pump_stdout, daemon=True),
            threading.Thread(target=self._pump_stderr, daemon=True),
        ]
        for pump in self._pumps:
            pump.start()

    def _pump_stdout(self) -> None:
        for line in self.proc.stdout:  # type: ignore[union-attr]
            self._lines.put(line)
        self._lines.put(None)

    def _pump_stderr(self) -> None:
        for line in self.proc.stderr:  # type: ignore[union-attr]
            self._stderr.append(line)

    def expect(self, op: str, timeout: float = DEFAULT_TIMEOUT) -> Dict[str, object]:
        """Read stdout lines until one with ``{"op": op}``; return it."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ScenarioError(
                    f"{self.name}: no {op!r} line within {timeout:.0f}s"
                    f"{self._stderr_suffix()}"
                )
            try:
                line = self._lines.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if line is None:
                raise ScenarioError(
                    f"{self.name}: exited (rc={self.proc.poll()}) before "
                    f"announcing {op!r}{self._stderr_suffix()}"
                )
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if payload.get("op") == op:
                return payload

    def _stderr_suffix(self) -> str:
        tail = "".join(self._stderr[-15:]).strip()
        return f"\n--- {self.name} stderr ---\n{tail}" if tail else ""

    @property
    def running(self) -> bool:
        return self.proc.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        return self.proc.poll()

    def wait_exit(self, timeout: float = DEFAULT_TIMEOUT) -> int:
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired as exc:
            raise ScenarioError(
                f"{self.name}: still running {timeout:.0f}s after expected exit"
            ) from exc

    def terminate(self) -> None:
        """Graceful stop (SIGTERM — the CLI's drain-and-release path)."""
        if self.running:
            self.proc.send_signal(signal.SIGTERM)

    def kill(self) -> None:
        if self.running:
            self.proc.kill()

    def close(self, timeout: float = 10.0) -> None:
        self.terminate()
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            self.proc.wait(timeout=timeout)

    def stderr_text(self) -> str:
        return "".join(self._stderr)


# --------------------------------------------------------------------- #
# HTTP probe / metrics-scrape helpers
# --------------------------------------------------------------------- #
def probe(base_url: str, path: str, method: str = "GET") -> Tuple[int, Dict[str, object]]:
    """Hit ``/healthz``-style endpoint; returns ``(status, json payload)``.

    A 503 is a *successful probe answer* here (the readiness contract),
    so it is returned, not raised; only transport-level failures raise.
    """
    request = _HttpRequest(base_url.rstrip("/") + path, method=method)
    try:
        with urlopen(request, timeout=10.0) as response:
            body = response.read()
            status = response.status
    except HTTPError as exc:
        body = exc.read()
        status = exc.code
    payload: Dict[str, object] = {}
    if body:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError:
            payload = {"raw": body.decode("utf-8", "replace")}
    return status, payload


def scrape_metrics(metrics_url: str) -> Dict[str, float]:
    """``/metrics`` exposition text as ``{"name{labels}": value}``."""
    with urlopen(metrics_url, timeout=10.0) as response:
        text = response.read().decode("utf-8")
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        try:
            values[key] = float(value)
        except ValueError:
            continue
    return values


def metric_value(
    scraped: Dict[str, float], name: str, labels: Optional[Dict[str, str]] = None
) -> Optional[float]:
    """First sample matching ``name`` and the given label subset."""
    wanted = [f'{k}="{v}"' for k, v in (labels or {}).items()]
    for key, value in scraped.items():
        if (key == name or key.startswith(name + "{")) and all(w in key for w in wanted):
            return value
    return None


class LagSampler(threading.Thread):
    """Samples a replica's lag gauges at ~10 Hz into ``(t, gen, wal)`` rows."""

    def __init__(self, metrics_url: str, interval: float = 0.1) -> None:
        super().__init__(name="chaos-lag-sampler", daemon=True)
        self.metrics_url = metrics_url
        self.interval = interval
        self.samples: List[Tuple[float, float, float]] = []
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                scraped = scrape_metrics(self.metrics_url)
            except (OSError, URLError):
                continue
            gen = metric_value(scraped, "repro_replica_generation_lag")
            wal = metric_value(scraped, "repro_replica_wal_lag_bytes")
            if gen is not None or wal is not None:
                self.samples.append((time.monotonic(), gen or 0.0, wal or 0.0))

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def window(
        self, start: float, end: Optional[float] = None
    ) -> List[Tuple[float, float, float]]:
        end = end if end is not None else float("inf")
        return [s for s in self.samples if start <= s[0] <= end]


def percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


# --------------------------------------------------------------------- #
# Store comparison (byte-identical mirror convergence)
# --------------------------------------------------------------------- #
#: Files legitimately differing between a writer store and its mirror:
#: the mirror's sync cursor and each side's writer-lock lease.
_NON_STORE_FILES = {"replication.json", "writer.lock"}
_TRANSIENT_SUFFIXES = (".sync", ".staged", ".tmp")


def store_files(path: str) -> Dict[str, str]:
    """Store-relevant relative paths under ``path``."""
    out: Dict[str, str] = {}
    for dirpath, _, filenames in os.walk(path):
        for name in filenames:
            if name in _NON_STORE_FILES or name.endswith(_TRANSIENT_SUFFIXES):
                continue
            full = os.path.join(dirpath, name)
            out[os.path.relpath(full, path)] = full
    return out


def diff_stores(writer_path: str, mirror_path: str) -> List[str]:
    """Byte-compare two store directories; returns human-readable diffs."""
    a, b = store_files(writer_path), store_files(mirror_path)
    problems = [f"only in writer: {name}" for name in sorted(set(a) - set(b))]
    problems += [f"only in mirror: {name}" for name in sorted(set(b) - set(a))]
    for name in sorted(set(a) & set(b)):
        with open(a[name], "rb") as fa, open(b[name], "rb") as fb:
            if fa.read() != fb.read():
                problems.append(f"bytes differ: {name}")
    return problems


# --------------------------------------------------------------------- #
# Oracle + update ledger
# --------------------------------------------------------------------- #
def oracle_values_json(h: Hypergraph, s: int, metric: str) -> str:
    """Pipeline oracle serialised exactly like the wire's ``values``."""
    pipeline = SLinePipeline(
        metrics=(metric,), drop_empty_edges=False, drop_isolated_vertices=False
    )
    values = pipeline.run(h, s).metric_by_hyperedge(metric)
    return json.dumps(
        {str(k): float(v) for k, v in sorted(values.items())}, sort_keys=True
    )


#: The (s, metric) pairs every oracle check serves and compares.
ORACLE_QUERIES: Tuple[Tuple[int, str], ...] = (
    (1, "connected_components"),
    (2, "connected_components"),
    (2, "pagerank"),
)


@dataclass
class UpdateLedger:
    """What the harness *knows* about issued updates, in issue order.

    ``acked`` holds member lists whose durability ack arrived.  At most
    one op is ``indeterminate``: the single in-flight update when its
    connection died (the updater is one thread issuing strictly
    sequential waited adds, so there can never be two).  Known-failed
    ops (the server answered with a typed error) belong to neither —
    they consumed no hyperedge ID.
    """

    acked: List[List[int]] = field(default_factory=list)
    indeterminate: Optional[List[int]] = None
    known_failed: int = 0

    def resolve(self, survived: bool) -> None:
        """Fold the indeterminate op into the ledger after a crash."""
        if self.indeterminate is not None and survived:
            self.acked.append(self.indeterminate)
        self.indeterminate = None


class ChaosHarness:
    """One scenario's world: store, processes, traffic, ledger, checks."""

    def __init__(
        self,
        root: str,
        quick: bool = False,
        num_vertices: int = 48,
        num_seed_edges: int = 36,
    ) -> None:
        self.root = str(root)
        self.quick = quick
        self.num_vertices = num_vertices
        self.store_path = os.path.join(self.root, "store")
        self.failures: List[str] = []
        self.processes: List[ManagedProcess] = []
        self._edge_cursor = 0
        self.ledger = UpdateLedger()
        rng = make_rng(11)
        self.seed_edges: List[List[int]] = [
            sorted(
                set(
                    rng.choice(
                        num_vertices, size=2 + i % 4, replace=False
                    ).tolist()
                )
            )
            for i in range(num_seed_edges)
        ]
        from repro.store import IndexStore  # deferred: heavy import chain

        h = hypergraph_from_edge_lists(self.seed_edges, num_vertices=num_vertices)
        IndexStore.build(h, self.store_path, num_shards=4)

    # -- processes ------------------------------------------------------ #
    def start_writer(
        self,
        port: int = 0,
        max_batch: int = 16,
        extra_args: Iterable[str] = (),
    ) -> Tuple[ManagedProcess, Tuple[str, int], str]:
        """Launch ``repro serve`` (chaos-controllable); returns
        ``(process, socket address, metrics base URL)``."""
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--path", self.store_path,
            "--listen", f"127.0.0.1:{port}",
            "--metrics-port", "0",
            "--max-batch", str(max_batch),
            "--chaos",
            # Every request lands in the slow-query ring with a kept trace
            # so the slow-query -> trace linkage is assertable.
            "--slow-query-ms", "0",
            "--trace-slow-ms", "0",
            *extra_args,
        ]
        process = ManagedProcess(argv, name="writer")
        self.processes.append(process)
        metrics = process.expect("metrics-listening")
        listening = process.expect("listening")
        address = (str(listening["host"]), int(listening["port"]))
        base_url = f"http://{metrics['host']}:{metrics['port']}"
        return process, address, base_url

    def start_replica(
        self,
        source: Tuple[str, int],
        mirror_name: str = "mirror",
        poll_interval: float = 0.05,
        ready_max_lag: int = 1,
    ) -> Tuple[ManagedProcess, Tuple[str, int], str]:
        """Launch ``repro replicate --serve`` chained off ``source``."""
        mirror_path = os.path.join(self.root, mirror_name)
        argv = [
            sys.executable, "-m", "repro", "replicate",
            "--from", f"{source[0]}:{source[1]}",
            "--store", mirror_path,
            "--serve", "127.0.0.1:0",
            "--poll-interval", str(poll_interval),
            "--metrics-port", "0",
            "--ready-max-lag", str(ready_max_lag),
            "--chaos",
        ]
        process = ManagedProcess(argv, name="replica")
        self.processes.append(process)
        process.expect("synced")
        metrics = process.expect("metrics-listening")
        listening = process.expect("listening")
        address = (str(listening["host"]), int(listening["port"]))
        base_url = f"http://{metrics['host']}:{metrics['port']}"
        self.mirror_path = mirror_path
        return process, address, base_url

    def client(self, address: Tuple[str, int], **kwargs):
        from repro.service.transport import ServiceClient

        kwargs.setdefault("connect_retries", 40)
        kwargs.setdefault("retry_interval", 0.25)
        return ServiceClient(address[0], address[1], **kwargs).connect()

    def chaos(self, client, cmd: str, **fields) -> Dict[str, object]:
        """Drive the remote failpoint-control op on a live process."""
        return client.request({"op": "chaos", "cmd": cmd, **fields})

    def teardown(self) -> None:
        for process in self.processes:
            process.close()

    # -- traffic -------------------------------------------------------- #
    def next_edge(self) -> List[int]:
        """Deterministic, strictly in-range member list for the next add."""
        i = self._edge_cursor
        self._edge_cursor += 1
        base = (7 * i + 3) % self.num_vertices
        step = 1 + i % 5
        members = sorted(
            {(base + k * step) % self.num_vertices for k in range(2 + i % 3)}
        )
        if len(members) < 2:
            members = sorted({base, (base + 1) % self.num_vertices})
        return members

    def submit_updates(self, client, count: int) -> int:
        """Issue ``count`` waited adds; returns how many were acked.

        A typed server error records a known failure (the op consumed no
        edge ID); a transport failure records THE indeterminate op and
        stops — the caller decides how to resolve it after recovery.
        """
        from repro.service.transport import RemoteServiceError, TransportError

        done = 0
        for _ in range(count):
            members = self.next_edge()
            try:
                client.add(members)
            except RemoteServiceError:
                self.ledger.known_failed += 1
                continue
            except (TransportError, ConnectionError, OSError):
                self.ledger.indeterminate = members
                return done
            self.ledger.acked.append(members)
            done += 1
        return done

    def start_query_traffic(self, address: Tuple[str, int]) -> "QueryWorker":
        worker = QueryWorker(self, address)
        worker.start()
        return worker

    # -- oracle --------------------------------------------------------- #
    def expected_edges(self) -> List[List[int]]:
        return list(self.seed_edges) + list(self.ledger.acked)

    def oracle_hypergraph(self, edges: Optional[List[List[int]]] = None) -> Hypergraph:
        return hypergraph_from_edge_lists(
            edges if edges is not None else self.expected_edges(),
            num_vertices=self.num_vertices,
        )

    def resolve_indeterminate(self, client) -> bool:
        """Decide the crashed in-flight op's fate from the served state.

        The served hypergraph fingerprint must equal the fingerprint of
        *exactly one* ledger candidate — without the indeterminate op
        (it died before durability) or with it (the ack was lost in the
        crash, the write was not).  Anything else is an acked-update
        loss or a phantom write, and fails the durability axis.
        """
        served = str(client.fingerprint())
        without = self.oracle_hypergraph().fingerprint()
        if self.ledger.indeterminate is None:
            ok = served == without
            self.check(
                ok,
                f"served fingerprint {served[:12]} != expected (no in-flight op)",
            )
            return ok
        with_op = self.oracle_hypergraph(
            self.expected_edges() + [self.ledger.indeterminate]
        ).fingerprint()
        if served == with_op:
            self.ledger.resolve(survived=True)
            return True
        if served == without:
            self.ledger.resolve(survived=False)
            return True
        self.failures.append(
            "durability: served state matches neither acked nor "
            "acked+indeterminate — an acknowledged update was lost"
        )
        self.ledger.resolve(survived=False)
        return False

    def check_oracle(self, client, label: str) -> int:
        """Serve every oracle query; count (and record) divergences."""
        h = self.oracle_hypergraph()
        divergences = 0
        for s, metric in ORACLE_QUERIES:
            response = client.request({"op": "metric", "s": s, "metric": metric})
            served = json.dumps(response["values"], sort_keys=True)
            expected = oracle_values_json(h, s, metric)
            if served != expected:
                divergences += 1
                self.failures.append(
                    f"correctness[{label}]: {metric}/s={s} diverges from the oracle"
                )
        return divergences

    # -- assertions ----------------------------------------------------- #
    def check(self, condition: bool, message: str) -> bool:
        if not condition:
            self.failures.append(message)
        return bool(condition)

    def await_ready(self, base_url: str, timeout: float = DEFAULT_TIMEOUT) -> float:
        return wait_until(
            lambda: probe(base_url, "/readyz")[0] == 200,
            timeout=timeout,
            description=f"{base_url}/readyz -> 200",
        )

    def await_unready(self, base_url: str, timeout: float = DEFAULT_TIMEOUT) -> float:
        return wait_until(
            lambda: probe(base_url, "/readyz")[0] == 503,
            timeout=timeout,
            description=f"{base_url}/readyz -> 503",
        )

    def await_converged(
        self, writer_client, replica_client, timeout: float = DEFAULT_TIMEOUT
    ) -> float:
        """Replica's local state token catches the writer's current one."""

        def caught_up() -> bool:
            target = writer_client.state_token()
            return target is not None and replica_client.state_token() == target

        return wait_until(caught_up, timeout=timeout, description="replica convergence")

    def check_slow_query_trace_linkage(self, client, label: str) -> bool:
        """A slow-query ring entry's trace_id must resolve to a buffered trace."""
        entries = [
            e
            for e in (client.stats().get("slow_queries") or [])
            if e.get("trace_id")
        ]
        if not entries:
            return self.check(False, f"observability[{label}]: slow-query ring empty")
        trace_id = str(entries[-1]["trace_id"])
        traces = client.traces(trace_id=trace_id, limit=1)
        return self.check(
            bool(traces) and traces[0].get("trace_id") == trace_id,
            f"observability[{label}]: slow-query trace_id {trace_id} has no "
            "buffered trace",
        )


class QueryWorker(threading.Thread):
    """Background read traffic: keeps the serving path hot during faults."""

    def __init__(self, harness: ChaosHarness, address: Tuple[str, int]) -> None:
        super().__init__(name="chaos-queries", daemon=True)
        self.harness = harness
        self.address = address
        self.ok = 0
        self.errors = 0
        self._halt = threading.Event()

    def run(self) -> None:
        client = None
        while not self._halt.is_set():
            try:
                if client is None:
                    client = self.harness.client(self.address, connect_retries=1)
                s, metric = ORACLE_QUERIES[self.ok % len(ORACLE_QUERIES)]
                client.request({"op": "metric", "s": s, "metric": metric})
                self.ok += 1
            except Exception:
                self.errors += 1
                if client is not None:
                    try:
                        client.close()
                    except Exception:
                        pass
                    client = None
                time.sleep(0.1)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)
