"""Chaos engineering for the serving stack: failpoints, harness, scenarios.

``repro.chaos.failpoints``
    Dependency-free named failpoints compiled into the WAL, compaction,
    shard fault-in, admission, transport, and replication paths —
    activated in-process or via ``REPRO_FAILPOINTS`` (inherited by
    spawn-based subprocesses), controllable on live servers through the
    gated ``chaos`` wire op.

``repro.chaos.harness``
    Scenario runner: stands up a writer ``SocketServer`` plus chained
    ``RemoteReadReplica`` subprocesses under mixed query/update traffic,
    injects scripted faults, and asserts data invariants (acked updates
    survive, mirrors converge byte-identical, served metrics equal the
    ``SLinePipeline`` oracle) and observability invariants (lag gauges,
    ``/readyz`` flips, slow-query → trace linkage).

``repro.chaos.scenarios``
    The named scenarios behind ``repro chaos --scenario NAME``, each
    emitting per-axis ``AXES_*.json`` artefacts gated independently by
    ``benchmarks/check_axes.py``.
"""

from repro.chaos.failpoints import (
    FailpointDropConnection,
    FailpointError,
    activate,
    deactivate,
    fire,
    install_from_env,
    is_active,
    remote_control_enabled,
    reset,
)

__all__ = [
    "FailpointDropConnection",
    "FailpointError",
    "activate",
    "deactivate",
    "fire",
    "install_from_env",
    "is_active",
    "remote_control_enabled",
    "reset",
]
