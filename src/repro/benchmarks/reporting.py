"""Plain-text rendering of benchmark results.

Every reproduction benchmark prints the same kind of artefact the paper
presents — a table of rows (Tables I, II, IV, V) or a series of (x, y)
points (Figures 4, 6–11) — so the EXPERIMENTS.md comparison can be filled in
directly from the benchmark output.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple


def print_experiment_header(experiment: str, description: str) -> None:
    """Print a banner identifying the paper experiment being reproduced."""
    line = "=" * 72
    print(f"\n{line}\n{experiment}: {description}\n{line}")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], float_format: str = "{:.4f}"
) -> str:
    """Format rows as a fixed-width text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    series: Mapping[object, float] | Sequence[Tuple[object, float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Format an (x, y) series as a two-column table (one figure curve)."""
    if isinstance(series, Mapping):
        items = list(series.items())
    else:
        items = list(series)
    return format_table([x_label, y_label], items)


def format_speedups(speedups: Mapping[str, float], baseline: str) -> str:
    """Format a speedup table relative to ``baseline``."""
    rows = [(name, value) for name, value in speedups.items()]
    rows.sort(key=lambda kv: -kv[1])
    return format_table(["variant", f"speedup vs {baseline}"], rows, float_format="{:.2f}")
