"""Measurement helpers for the table/figure reproduction benchmarks."""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from repro.utils.timing import StageTimes

T = TypeVar("T")


def quick_mode() -> bool:
    """Whether benchmarks run in quick mode (``REPRO_BENCH_QUICK=1``).

    The CI perf-smoke job sets it to trade dataset scale and repetition
    rounds for wall-clock; bench modules derive their scales, rounds *and
    floors* from this one flag so a missed copy cannot run a benchmark at
    full scale against quick-mode floors.
    """
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def time_callable(fn: Callable[[], T], repeats: int = 1) -> Tuple[float, T]:
    """Run ``fn`` ``repeats`` times; return (best wall-clock seconds, last result)."""
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def stage_breakdown(times: StageTimes, stages: Sequence[str]) -> Dict[str, float]:
    """Extract the requested stages (seconds) plus a ``total`` entry."""
    out = {stage: times.get(stage) for stage in stages}
    out["total"] = times.total
    return out


def speedup_table(
    runtimes: Dict[str, float], baseline: str
) -> Dict[str, float]:
    """Speedup of each entry relative to ``baseline`` (baseline → 1.0)."""
    base = runtimes[baseline]
    return {
        name: (base / seconds if seconds > 0 else float("inf"))
        for name, seconds in runtimes.items()
    }


def scaling_series(
    worker_counts: Iterable[int],
    run: Callable[[int], float],
) -> List[Tuple[int, float]]:
    """Evaluate ``run(num_workers)`` for each worker count; returns (workers, seconds)."""
    return [(int(p), float(run(int(p)))) for p in worker_counts]
