"""Shared infrastructure for the experiment-reproduction benchmarks.

The ``benchmarks/`` directory at the repository root contains one module per
table/figure of the paper; they all use the helpers here to time pipeline
stages, build speedup tables and print the rows/series the paper reports.
"""

from repro.benchmarks.harness import (
    quick_mode,
    scaling_series,
    speedup_table,
    stage_breakdown,
    time_callable,
)
from repro.benchmarks.reporting import (
    format_table,
    format_series,
    format_speedups,
    print_experiment_header,
)

__all__ = [
    "quick_mode",
    "time_callable",
    "stage_breakdown",
    "speedup_table",
    "scaling_series",
    "format_table",
    "format_series",
    "format_speedups",
    "print_experiment_header",
]
