"""Degree-distribution analysis of hypergraphs.

The paper's Table IV emphasises that every evaluation dataset has a *skewed
hyperedge degree distribution* — the property that makes relabel-by-degree
and cyclic partitioning matter.  These helpers quantify that skew: degree
histograms, complementary CDFs, and a simple maximum-likelihood power-law
tail exponent (Clauset-style estimate with a fixed ``x_min``), used by the
generator tests and the dataset characterisation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError, check_array_int


@dataclass(frozen=True)
class DegreeDistribution:
    """Summary of one degree sequence (hyperedge sizes or vertex degrees)."""

    mean: float
    median: float
    maximum: int
    gini: float
    power_law_alpha: float
    top_decile_share: float

    def is_skewed(self, gini_threshold: float = 0.25) -> bool:
        """Heuristic skew indicator used by the dataset surrogate tests."""
        return self.gini >= gini_threshold or self.maximum >= 5 * max(self.mean, 1e-12)


def degree_histogram(values: np.ndarray) -> Dict[int, int]:
    """``{degree: count}`` histogram of a degree sequence."""
    values = check_array_int(values, "values")
    if values.size == 0:
        return {}
    uniq, counts = np.unique(values, return_counts=True)
    return {int(d): int(c) for d, c in zip(uniq, counts)}


def complementary_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(degrees, P(X >= degree))`` — the CCDF used for log-log skew plots."""
    values = check_array_int(values, "values")
    if values.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    uniq, counts = np.unique(values, return_counts=True)
    ccdf = 1.0 - np.concatenate([[0.0], np.cumsum(counts[:-1])]) / values.size
    return uniq, ccdf


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sequence (0 = uniform, →1 = concentrated)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0 or values.sum() == 0:
        return 0.0
    if np.any(values < 0):
        raise ValidationError("values must be non-negative")
    n = values.size
    index = np.arange(1, n + 1)
    return float((2.0 * (index * values).sum() / (n * values.sum())) - (n + 1.0) / n)


def power_law_alpha(values: np.ndarray, x_min: int = 1) -> float:
    """Maximum-likelihood power-law exponent of the tail ``x >= x_min``.

    Uses the continuous-approximation MLE
    ``alpha = 1 + n / sum(ln(x / (x_min - 0.5)))``; returns ``inf`` when no
    value reaches ``x_min`` or the tail is degenerate.
    """
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= x_min]
    if tail.size == 0:
        return float("inf")
    denom = np.log(tail / (x_min - 0.5)).sum()
    if denom <= 0:
        return float("inf")
    return float(1.0 + tail.size / denom)


def analyse_degrees(values: np.ndarray) -> DegreeDistribution:
    """Build a :class:`DegreeDistribution` summary for a degree sequence."""
    values = check_array_int(values, "values")
    if values.size == 0:
        return DegreeDistribution(0.0, 0.0, 0, 0.0, float("inf"), 0.0)
    sorted_desc = np.sort(values)[::-1]
    top_k = max(1, values.size // 10)
    total = float(values.sum())
    top_share = float(sorted_desc[:top_k].sum()) / total if total > 0 else 0.0
    return DegreeDistribution(
        mean=float(values.mean()),
        median=float(np.median(values)),
        maximum=int(values.max()),
        gini=gini_coefficient(values),
        power_law_alpha=power_law_alpha(values, x_min=max(1, int(np.median(values)))),
        top_decile_share=top_share,
    )


def edge_size_distribution(h: Hypergraph) -> DegreeDistribution:
    """Degree-distribution summary of the hyperedge sizes of ``h``."""
    return analyse_degrees(h.edge_sizes())


def vertex_degree_distribution(h: Hypergraph) -> DegreeDistribution:
    """Degree-distribution summary of the vertex degrees of ``h``."""
    return analyse_degrees(h.vertex_degrees())
