"""Incidence-matrix conversions.

The paper's naive linear-algebraic formulation works on the boolean
``n × m`` incidence matrix ``H`` (rows = vertices, columns = hyperedges):
``L = H^T H`` is the weighted hyperedge adjacency (line-graph) matrix and
``W = H H^T − D_V`` the weighted clique-expansion matrix.  These helpers
convert between :class:`~repro.hypergraph.Hypergraph` and scipy sparse
matrices for the SpGEMM baselines and the spectral substrate.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.hypergraph.builders import hypergraph_from_incidence_matrix
from repro.hypergraph.hypergraph import Hypergraph


def incidence_matrix(h: Hypergraph, dtype=np.int64) -> sparse.csr_matrix:
    """The ``n × m`` boolean incidence matrix of ``h`` as scipy CSR."""
    return h.incidence_matrix().astype(dtype)


def from_incidence(mat: sparse.spmatrix | np.ndarray) -> Hypergraph:
    """Build a hypergraph from an ``n × m`` incidence matrix (alias of the builder)."""
    return hypergraph_from_incidence_matrix(mat)


def line_graph_weight_matrix(h: Hypergraph, dtype=np.int64) -> sparse.csr_matrix:
    """The ``m × m`` weighted hyperedge adjacency matrix ``L = H^T H``.

    ``L[i, j]`` equals ``inc(e_i, e_j)`` for ``i ≠ j`` and ``|e_i|`` on the
    diagonal (Section II-B of the paper).
    """
    H = incidence_matrix(h, dtype=dtype)
    return (H.T @ H).tocsr()


def clique_expansion_weight_matrix(h: Hypergraph, dtype=np.int64) -> sparse.csr_matrix:
    """The ``n × n`` weighted clique-expansion matrix ``W = H H^T − D_V``.

    ``W[i, j]`` is the number of hyperedges containing both vertices ``i``
    and ``j`` (Section III-H); the diagonal is removed.
    """
    H = incidence_matrix(h, dtype=dtype)
    W = (H @ H.T).tolil()
    W.setdiag(0)
    W = W.tocsr()
    W.eliminate_zeros()
    return W
