"""Stage-1 preprocessing and Stage-4 ID squeezing of the paper's framework.

Stage 1 removes isolated vertices and empty hyperedges and (optionally)
relabels hyperedge IDs by degree ("relabel-by-degree"), which the paper shows
improves both load balance and cache reuse for skew-degree inputs when
combined with upper-triangular wedge traversal.

Stage 4 ("ID squeezing") remaps the hypersparse vertex-ID space of a computed
s-line graph to a contiguous range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError, check_array_int

RelabelOrder = Literal["ascending", "descending", "none"]


@dataclass
class RelabelResult:
    """Outcome of relabelling hyperedges by degree.

    Attributes
    ----------
    hypergraph:
        The relabelled hypergraph (new edge ID ``i`` is old edge
        ``new_to_old[i]``).
    new_to_old:
        Permutation array mapping new IDs to original IDs.
    old_to_new:
        Inverse permutation.
    order:
        The requested ordering ("ascending", "descending" or "none").
    """

    hypergraph: Hypergraph
    new_to_old: np.ndarray
    old_to_new: np.ndarray
    order: RelabelOrder = "none"

    def map_edge_to_original(self, new_id: int) -> int:
        """Translate a relabelled hyperedge ID back to the original ID."""
        return int(self.new_to_old[new_id])


@dataclass
class SqueezeResult:
    """Outcome of squeezing a sparse ID space to a contiguous range."""

    new_to_old: np.ndarray
    old_to_new: Dict[int, int]

    @property
    def num_ids(self) -> int:
        """Number of distinct IDs retained."""
        return int(self.new_to_old.size)

    def to_original(self, new_id: int) -> int:
        """Original ID for a squeezed ID."""
        return int(self.new_to_old[new_id])

    def to_squeezed(self, old_id: int) -> int:
        """Squeezed ID for an original ID (KeyError if the ID was dropped)."""
        return self.old_to_new[int(old_id)]


@dataclass
class PreprocessResult:
    """Outcome of Stage-1 preprocessing."""

    hypergraph: Hypergraph
    removed_empty_edges: int
    removed_isolated_vertices: int
    relabel: Optional[RelabelResult] = None
    kept_edge_ids: Optional[np.ndarray] = None
    kept_vertex_ids: Optional[np.ndarray] = None


def remove_empty_edges(h: Hypergraph) -> Tuple[Hypergraph, np.ndarray]:
    """Drop hyperedges with no members; returns ``(new_h, kept_edge_ids)``."""
    sizes = h.edge_sizes()
    keep = np.flatnonzero(sizes > 0).astype(np.int64)
    if keep.size == h.num_edges:
        return h, keep
    rows: list[int] = []
    cols: list[int] = []
    for new_id, old_id in enumerate(keep):
        members = h.edge_members(int(old_id))
        rows.extend([new_id] * members.size)
        cols.extend(int(v) for v in members)
    edges = CSRMatrix.from_pairs(rows, cols, num_rows=keep.size, num_cols=h.num_vertices)
    edge_names = None
    if h.edge_names is not None:
        edge_names = [h.edge_names[int(e)] for e in keep]
    return (
        Hypergraph(edges=edges, edge_names=edge_names, vertex_names=h.vertex_names),
        keep,
    )


def remove_isolated_vertices(h: Hypergraph) -> Tuple[Hypergraph, np.ndarray]:
    """Drop vertices belonging to no hyperedge; returns ``(new_h, kept_vertex_ids)``."""
    degrees = h.vertex_degrees()
    keep = np.flatnonzero(degrees > 0).astype(np.int64)
    if keep.size == h.num_vertices:
        return h, keep
    old_to_new = -np.ones(h.num_vertices, dtype=np.int64)
    old_to_new[keep] = np.arange(keep.size, dtype=np.int64)
    rows: list[int] = []
    cols: list[int] = []
    for e, members in h.iter_edges():
        rows.extend([e] * members.size)
        cols.extend(int(old_to_new[v]) for v in members)
    edges = CSRMatrix.from_pairs(rows, cols, num_rows=h.num_edges, num_cols=keep.size)
    vertex_names = None
    if h.vertex_names is not None:
        vertex_names = [h.vertex_names[int(v)] for v in keep]
    return (
        Hypergraph(edges=edges, edge_names=h.edge_names, vertex_names=vertex_names),
        keep,
    )


def relabel_edges_by_degree(
    h: Hypergraph, order: RelabelOrder = "ascending"
) -> RelabelResult:
    """Permute hyperedge IDs so edge sizes are sorted in the requested order.

    The paper's relabel-by-degree optimisation: with ascending order and
    upper-triangular wedge traversal (``j > i``), the inner loops of the
    hashmap algorithm touch progressively smaller neighbourhoods, improving
    both load balance and last-level-cache reuse.  Ties are broken by the
    original ID so the permutation is deterministic.
    """
    if order == "none":
        identity = np.arange(h.num_edges, dtype=np.int64)
        return RelabelResult(
            hypergraph=h, new_to_old=identity, old_to_new=identity.copy(), order=order
        )
    if order not in ("ascending", "descending"):
        raise ValidationError(f"unknown relabel order: {order!r}")
    sizes = h.edge_sizes()
    key = sizes if order == "ascending" else -sizes
    # stable sort → ties broken by original ID
    new_to_old = np.argsort(key, kind="stable").astype(np.int64)
    old_to_new = np.empty_like(new_to_old)
    old_to_new[new_to_old] = np.arange(h.num_edges, dtype=np.int64)
    edges = h.edges_csr.permute_rows(new_to_old)
    edge_names = None
    if h.edge_names is not None:
        edge_names = [h.edge_names[int(e)] for e in new_to_old]
    relabelled = Hypergraph(edges=edges, edge_names=edge_names, vertex_names=h.vertex_names)
    return RelabelResult(
        hypergraph=relabelled, new_to_old=new_to_old, old_to_new=old_to_new, order=order
    )


def squeeze_ids(ids: Sequence[int] | np.ndarray) -> SqueezeResult:
    """Map the distinct values of ``ids`` to ``0..k-1`` preserving order.

    This is Stage 4 of the framework: after s-overlap filtering, the s-line
    graph usually uses only a small subset of the hyperedge-ID space, so IDs
    are compacted before building adjacency structures.
    """
    arr = check_array_int(np.asarray(ids).ravel(), "ids")
    unique = np.unique(arr)
    old_to_new = {int(v): i for i, v in enumerate(unique)}
    return SqueezeResult(new_to_old=unique.astype(np.int64), old_to_new=old_to_new)


def preprocess(
    h: Hypergraph,
    relabel: RelabelOrder = "none",
    drop_empty_edges: bool = True,
    drop_isolated_vertices: bool = True,
) -> PreprocessResult:
    """Run the full Stage-1 preprocessing pipeline.

    Parameters
    ----------
    h:
        Input hypergraph.
    relabel:
        Hyperedge relabel-by-degree order ("ascending", "descending", "none").
    drop_empty_edges, drop_isolated_vertices:
        Whether to remove degenerate elements before relabelling.
    """
    original_edges = h.num_edges
    original_vertices = h.num_vertices
    kept_edges = np.arange(h.num_edges, dtype=np.int64)
    kept_vertices = np.arange(h.num_vertices, dtype=np.int64)
    if drop_empty_edges:
        h, kept_edges = remove_empty_edges(h)
    if drop_isolated_vertices:
        h, kept_vertices = remove_isolated_vertices(h)
    relabel_result = relabel_edges_by_degree(h, relabel) if relabel != "none" else None
    if relabel_result is not None:
        h = relabel_result.hypergraph
    return PreprocessResult(
        hypergraph=h,
        removed_empty_edges=original_edges - kept_edges.size,
        removed_isolated_vertices=original_vertices - kept_vertices.size,
        relabel=relabel_result,
        kept_edge_ids=kept_edges,
        kept_vertex_ids=kept_vertices,
    )
