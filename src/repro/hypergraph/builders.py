"""Constructors for :class:`~repro.hypergraph.Hypergraph` from common formats.

Supported inputs:

* a mapping ``{edge_label: iterable of vertex labels}`` (the natural format
  for author–paper, disease–gene, actor–movie data);
* a list of hyperedges, each an iterable of integer vertex IDs;
* parallel ``(edge_id, vertex_id)`` incidence pairs (bipartite edge list);
* a scipy sparse incidence matrix (``n`` vertices × ``m`` edges);
* a networkx bipartite graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError


def hypergraph_from_edge_lists(
    edge_lists: Sequence[Iterable[int]],
    num_vertices: Optional[int] = None,
) -> Hypergraph:
    """Build a hypergraph from a sequence of hyperedges over integer vertex IDs.

    Parameters
    ----------
    edge_lists:
        ``edge_lists[i]`` is the (possibly unsorted, possibly duplicated)
        collection of vertex IDs in hyperedge ``i``.  Duplicate memberships
        are collapsed; an empty iterable yields an empty hyperedge.
    num_vertices:
        Total vertex count; inferred as ``max id + 1`` when omitted.

    Examples
    --------
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]])
    >>> (h.num_vertices, h.num_edges)
    (6, 4)
    """
    edges = CSRMatrix.from_lists(edge_lists, num_cols=num_vertices)
    # from_lists infers num_cols only from the data; widen if caller gave more.
    if num_vertices is not None and edges.num_cols != num_vertices:
        edges = CSRMatrix(
            indptr=edges.indptr, indices=edges.indices, num_cols=int(num_vertices)
        )
    return Hypergraph(edges=edges)


def hypergraph_from_edge_dict(
    edge_dict: Mapping[Hashable, Iterable[Hashable]],
) -> Hypergraph:
    """Build a labelled hypergraph from ``{edge_label: vertex labels}``.

    Edge and vertex labels are assigned contiguous integer IDs in first-seen
    order and stored on the resulting hypergraph (``edge_names`` /
    ``vertex_names``).

    Examples
    --------
    The running example of the paper (Figure 1):

    >>> h = hypergraph_from_edge_dict({
    ...     1: ["a", "b", "c"],
    ...     2: ["b", "c", "d"],
    ...     3: ["a", "b", "c", "d", "e"],
    ...     4: ["e", "f"],
    ... })
    >>> (h.num_vertices, h.num_edges)
    (6, 4)
    """
    edge_names: list[Hashable] = []
    vertex_names: list[Hashable] = []
    vertex_ids: Dict[Hashable, int] = {}
    lists: list[list[int]] = []
    for edge_label, members in edge_dict.items():
        edge_names.append(edge_label)
        row: list[int] = []
        for label in members:
            vid = vertex_ids.get(label)
            if vid is None:
                vid = len(vertex_names)
                vertex_ids[label] = vid
                vertex_names.append(label)
            row.append(vid)
        lists.append(row)
    edges = CSRMatrix.from_lists(lists, num_cols=len(vertex_names))
    return Hypergraph(edges=edges, edge_names=edge_names, vertex_names=vertex_names)


def hypergraph_from_incidence_pairs(
    edge_ids: Sequence[int] | np.ndarray,
    vertex_ids: Sequence[int] | np.ndarray,
    num_edges: Optional[int] = None,
    num_vertices: Optional[int] = None,
) -> Hypergraph:
    """Build from parallel arrays of ``(edge_id, vertex_id)`` incidences.

    This is the bipartite-edge-list format used by the KONECT datasets cited
    in the paper and by :mod:`repro.io.edgelist`.
    """
    edges = CSRMatrix.from_pairs(
        edge_ids, vertex_ids, num_rows=num_edges, num_cols=num_vertices
    )
    return Hypergraph(edges=edges)


def hypergraph_from_incidence_matrix(mat: sparse.spmatrix | np.ndarray) -> Hypergraph:
    """Build from an ``n × m`` incidence matrix (rows = vertices, cols = edges).

    Any non-zero entry denotes membership; the pattern is booleanised.
    """
    if isinstance(mat, np.ndarray):
        mat = sparse.csr_matrix(mat)
    if mat.ndim != 2:
        raise ValidationError("incidence matrix must be two-dimensional")
    # Edge-row orientation is the transpose of the n × m incidence matrix.
    edges = CSRMatrix.from_scipy(sparse.csr_matrix(mat).T)
    return Hypergraph(edges=edges)


def hypergraph_from_bipartite(
    graph, edge_part: str = "e", vertex_part: str = "v"
) -> Hypergraph:
    """Build from a networkx bipartite graph with ``("e", id)`` / ``("v", id)`` nodes.

    The inverse of :meth:`Hypergraph.to_bipartite`.  Nodes whose first tuple
    element equals ``edge_part`` become hyperedges; ``vertex_part`` nodes
    become vertices.  IDs need not be contiguous; they are compacted and the
    original IDs retained as names.
    """
    edge_nodes = sorted(n for n in graph.nodes if isinstance(n, tuple) and n[0] == edge_part)
    vertex_nodes = sorted(
        n for n in graph.nodes if isinstance(n, tuple) and n[0] == vertex_part
    )
    if not edge_nodes and not vertex_nodes:
        raise ValidationError(
            "bipartite graph has no nodes tagged with the requested partitions"
        )
    edge_index = {n: i for i, n in enumerate(edge_nodes)}
    vertex_index = {n: i for i, n in enumerate(vertex_nodes)}
    rows: list[int] = []
    cols: list[int] = []
    for u, w in graph.edges():
        if u in edge_index and w in vertex_index:
            rows.append(edge_index[u])
            cols.append(vertex_index[w])
        elif w in edge_index and u in vertex_index:
            rows.append(edge_index[w])
            cols.append(vertex_index[u])
        else:
            raise ValidationError(f"edge {(u, w)!r} does not connect the two partitions")
    edges = CSRMatrix.from_pairs(
        rows, cols, num_rows=len(edge_nodes), num_cols=len(vertex_nodes)
    )
    return Hypergraph(
        edges=edges,
        edge_names=[n[1] for n in edge_nodes],
        vertex_names=[n[1] for n in vertex_nodes],
    )
