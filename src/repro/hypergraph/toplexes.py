"""Toplex (maximal hyperedge) computation — Stage 2 of the paper's framework.

A *toplex* is a hyperedge not strictly contained in any other hyperedge.
Keeping only toplexes yields the *simplification* ``Ȟ`` of a hypergraph,
which can substantially shrink the input before the expensive s-overlap
stage (the paper cites Marinov et al.'s extremal-set algorithms; we use a
candidate-pruned subset test driven by the vertex→edge CSR, which realises
the same asymptotic savings on sparse inputs).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph


def toplexes(h: Hypergraph) -> np.ndarray:
    """Return the sorted IDs of the maximal hyperedges (toplexes) of ``h``.

    A hyperedge ``e`` is kept unless some *distinct* hyperedge ``f`` is a
    strict superset of ``e``; among duplicated hyperedges (identical vertex
    sets) the smallest ID is kept as the representative.

    The candidate supersets of ``e`` are found by intersecting the incident
    hyperedge lists of ``e``'s members (only edges containing every member of
    ``e`` can be supersets), so each hyperedge touches only its 2-hop
    neighbourhood rather than all ``m`` edges.
    """
    sizes = h.edge_sizes()
    maximal = np.ones(h.num_edges, dtype=bool)
    for e in range(h.num_edges):
        members = h.edge_members(e)
        if members.size == 0:
            # An empty hyperedge is contained in every non-empty hyperedge;
            # among duplicate empty edges keep the smallest ID, and keep it
            # only when the hypergraph has no non-empty hyperedge at all.
            has_nonempty = bool(np.any(sizes > 0))
            first_empty = int(np.flatnonzero(sizes == 0)[0])
            maximal[e] = (not has_nonempty) and (e == first_empty)
            continue
        # Edges containing every vertex of e.
        candidates = h.vertex_memberships(members[0])
        for v in members[1:]:
            candidates = np.intersect1d(
                candidates, h.vertex_memberships(v), assume_unique=True
            )
            if candidates.size <= 1:
                break
        for f in candidates:
            f = int(f)
            if f == e:
                continue
            if sizes[f] > sizes[e]:
                maximal[e] = False
                break
            if sizes[f] == sizes[e] and f < e:
                # Duplicate edge; keep the smallest ID as representative.
                maximal[e] = False
                break
    return np.flatnonzero(maximal).astype(np.int64)


def simplify(h: Hypergraph) -> Hypergraph:
    """Return the simplification ``Ȟ``: the sub-hypergraph induced by the toplexes.

    Vertex IDs are preserved; hyperedge IDs are compacted to ``0..k-1`` in
    increasing original-ID order, with original labels carried over when the
    input was labelled.
    """
    keep = toplexes(h)
    lists: List[np.ndarray] = [h.edge_members(int(e)) for e in keep]
    rows: list[int] = []
    cols: list[int] = []
    for new_id, members in enumerate(lists):
        rows.extend([new_id] * members.size)
        cols.extend(int(v) for v in members)
    edges = CSRMatrix.from_pairs(
        rows, cols, num_rows=len(lists), num_cols=h.num_vertices
    )
    edge_names = None
    if h.edge_names is not None:
        edge_names = [h.edge_names[int(e)] for e in keep]
    return Hypergraph(edges=edges, edge_names=edge_names, vertex_names=h.vertex_names)


def is_simple(h: Hypergraph) -> bool:
    """True when every hyperedge of ``h`` is a toplex (``H = Ȟ``)."""
    return toplexes(h).size == h.num_edges
