"""Hypergraph substrate: storage, construction, duals, properties, preprocessing.

The central type is :class:`repro.hypergraph.Hypergraph`, a non-uniform
hypergraph stored as a pair of CSR adjacency structures (edge→vertex and
vertex→edge, i.e. the incidence matrix ``H`` and its transpose ``H^T``),
matching the representation used by the paper's C++ framework (NWHypergraph).
"""

from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.builders import (
    hypergraph_from_edge_dict,
    hypergraph_from_edge_lists,
    hypergraph_from_incidence_pairs,
    hypergraph_from_incidence_matrix,
    hypergraph_from_bipartite,
)
from repro.hypergraph.dual import dual_hypergraph
from repro.hypergraph.properties import HypergraphStats, compute_stats
from repro.hypergraph.toplexes import toplexes, simplify
from repro.hypergraph.preprocessing import (
    remove_empty_edges,
    remove_isolated_vertices,
    relabel_edges_by_degree,
    squeeze_ids,
    preprocess,
    PreprocessResult,
    RelabelResult,
    SqueezeResult,
)
from repro.hypergraph.incidence import incidence_matrix, from_incidence
from repro.hypergraph.degree import (
    DegreeDistribution,
    edge_size_distribution,
    vertex_degree_distribution,
    degree_histogram,
    complementary_cdf,
    gini_coefficient,
    power_law_alpha,
)

__all__ = [
    "DegreeDistribution",
    "edge_size_distribution",
    "vertex_degree_distribution",
    "degree_histogram",
    "complementary_cdf",
    "gini_coefficient",
    "power_law_alpha",
    "CSRMatrix",
    "Hypergraph",
    "hypergraph_from_edge_dict",
    "hypergraph_from_edge_lists",
    "hypergraph_from_incidence_pairs",
    "hypergraph_from_incidence_matrix",
    "hypergraph_from_bipartite",
    "dual_hypergraph",
    "HypergraphStats",
    "compute_stats",
    "toplexes",
    "simplify",
    "remove_empty_edges",
    "remove_isolated_vertices",
    "relabel_edges_by_degree",
    "squeeze_ids",
    "preprocess",
    "PreprocessResult",
    "RelabelResult",
    "SqueezeResult",
    "incidence_matrix",
    "from_incidence",
]
