"""The :class:`Hypergraph` type: a non-uniform hypergraph in dual CSR form.

A hypergraph ``H = <V, E>`` has ``n`` vertices and ``m`` hyperedges, each
hyperedge a subset of ``V``.  We store:

* ``edges``    — CSR with one row per hyperedge, columns = member vertices
  (the incidence matrix ``H`` read row-wise as ``H^T`` in the paper's
  ``m × n`` orientation, i.e. ``E.Adj``);
* ``vertices`` — CSR with one row per vertex, columns = incident hyperedges
  (``V.Adj``, the transpose).

This mirrors the bipartite adjacency used by the C++ framework in the paper
and gives O(1) access to both a hyperedge's members and a vertex's incident
hyperedges — the two traversals needed by the wedge-based s-line-graph
algorithms.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.hypergraph.csr import CSRMatrix
from repro.utils.validation import ValidationError


class Hypergraph:
    """A non-uniform hypergraph stored as edge→vertex and vertex→edge CSR.

    Instances are immutable by convention: all transformations
    (preprocessing, relabelling, simplification, dualisation) return new
    objects.

    Parameters
    ----------
    edges:
        CSR with ``num_edges`` rows over ``num_vertices`` columns; row ``i``
        lists the vertices of hyperedge ``i``.
    vertices:
        Optional transpose (vertex→edge CSR).  Computed when omitted.
    edge_names, vertex_names:
        Optional sequences mapping internal integer IDs back to user-facing
        labels (author names, gene symbols, …).
    """

    __slots__ = ("_edges", "_vertices", "_edge_names", "_vertex_names", "_fingerprint")

    def __init__(
        self,
        edges: CSRMatrix,
        vertices: Optional[CSRMatrix] = None,
        edge_names: Optional[Sequence[Hashable]] = None,
        vertex_names: Optional[Sequence[Hashable]] = None,
    ) -> None:
        if not isinstance(edges, CSRMatrix):
            raise ValidationError("edges must be a CSRMatrix")
        self._edges = edges
        if vertices is None:
            vertices = edges.transpose_fast()
        else:
            if vertices.shape != (edges.num_cols, edges.num_rows):
                raise ValidationError(
                    "vertices CSR must be the transpose shape of edges CSR: "
                    f"expected {(edges.num_cols, edges.num_rows)}, got {vertices.shape}"
                )
            if vertices.nnz != edges.nnz:
                raise ValidationError(
                    "vertices CSR must have the same number of incidences as edges CSR"
                )
        self._vertices = vertices
        if edge_names is not None and len(edge_names) != edges.num_rows:
            raise ValidationError("edge_names length must equal the number of hyperedges")
        if vertex_names is not None and len(vertex_names) != edges.num_cols:
            raise ValidationError("vertex_names length must equal the number of vertices")
        self._edge_names = None if edge_names is None else list(edge_names)
        self._vertex_names = None if vertex_names is None else list(vertex_names)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Basic shape
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|`` (including isolated vertices)."""
        return self._edges.num_cols

    @property
    def num_edges(self) -> int:
        """Number of hyperedges ``|E|`` (including empty hyperedges)."""
        return self._edges.num_rows

    @property
    def num_incidences(self) -> int:
        """Number of (vertex, hyperedge) incidences — ``nnz`` of the incidence matrix."""
        return self._edges.nnz

    @property
    def edges_csr(self) -> CSRMatrix:
        """Edge→vertex CSR (row ``i`` = members of hyperedge ``i``)."""
        return self._edges

    @property
    def vertices_csr(self) -> CSRMatrix:
        """Vertex→edge CSR (row ``v`` = hyperedges containing vertex ``v``)."""
        return self._vertices

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    @property
    def edge_names(self) -> Optional[list]:
        """User-facing hyperedge labels, or ``None`` if unlabelled."""
        return self._edge_names

    @property
    def vertex_names(self) -> Optional[list]:
        """User-facing vertex labels, or ``None`` if unlabelled."""
        return self._vertex_names

    def edge_name(self, i: int) -> Hashable:
        """Label of hyperedge ``i`` (falls back to the integer ID)."""
        if self._edge_names is None:
            return i
        return self._edge_names[i]

    def vertex_name(self, v: int) -> Hashable:
        """Label of vertex ``v`` (falls back to the integer ID)."""
        if self._vertex_names is None:
            return v
        return self._vertex_names[v]

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def edge_members(self, i: int) -> np.ndarray:
        """Vertices of hyperedge ``i`` (sorted ``int64`` array view)."""
        return self._edges.row(i)

    def vertex_memberships(self, v: int) -> np.ndarray:
        """Hyperedges containing vertex ``v`` (sorted ``int64`` array view)."""
        return self._vertices.row(v)

    def edge_size(self, i: int) -> int:
        """``|e_i|`` — the number of vertices in hyperedge ``i``.

        The paper calls this the hyperedge *degree* when pruning
        (``degree[e_i] < s``), matching ``inc({e_i}) = |e_i|``.
        """
        return self._edges.row_degree(i)

    def vertex_degree(self, v: int) -> int:
        """``deg(v)`` — the number of hyperedges containing vertex ``v``."""
        return self._vertices.row_degree(v)

    def edge_sizes(self) -> np.ndarray:
        """Array of all hyperedge sizes ``|e_i|``."""
        return self._edges.row_degrees()

    def vertex_degrees(self) -> np.ndarray:
        """Array of all vertex degrees ``deg(v)``."""
        return self._vertices.row_degrees()

    def iter_edges(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(edge_id, member_vertex_array)`` for every hyperedge."""
        return self._edges.iter_rows()

    def edges_as_sets(self) -> list[frozenset[int]]:
        """Materialise every hyperedge as a frozenset of vertex IDs."""
        return self._edges.rows_as_sets()

    # ------------------------------------------------------------------ #
    # Pairwise structure functions (Section II-A of the paper)
    # ------------------------------------------------------------------ #
    def inc(self, e: int, f: int) -> int:
        """``inc(e, f) = |e ∩ f|`` — the number of shared vertices of two hyperedges."""
        a = self.edge_members(e)
        b = self.edge_members(f)
        return int(np.intersect1d(a, b, assume_unique=True).size)

    def adj(self, u: int, v: int) -> int:
        """``adj(u, v)`` — the number of hyperedges containing both vertices."""
        a = self.vertex_memberships(u)
        b = self.vertex_memberships(v)
        return int(np.intersect1d(a, b, assume_unique=True).size)

    def inc_set(self, edge_ids: Sequence[int]) -> int:
        """``inc(F) = |∩_{e∈F} e|`` for a set of hyperedges ``F`` (∞-free:
        empty F raises)."""
        ids = list(edge_ids)
        if not ids:
            raise ValidationError("inc_set requires at least one hyperedge")
        common = self.edge_members(ids[0])
        for e in ids[1:]:
            common = np.intersect1d(common, self.edge_members(e), assume_unique=True)
        return int(common.size)

    def adj_set(self, vertex_ids: Sequence[int]) -> int:
        """``adj(U) = |{e ⊇ U}|`` for a set of vertices ``U``."""
        ids = list(vertex_ids)
        if not ids:
            raise ValidationError("adj_set requires at least one vertex")
        common = self.vertex_memberships(ids[0])
        for v in ids[1:]:
            common = np.intersect1d(common, self.vertex_memberships(v), assume_unique=True)
        return int(common.size)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content hash of the incidence structure (hex SHA-256 digest).

        The hash covers the shape and the edge→vertex CSR with columns
        sorted within each row, so two hypergraphs with the same incidence
        pattern produce the same fingerprint regardless of how they were
        built or in what order rows listed their members.  Labels are
        ignored: the fingerprint identifies the *structure*, which is what
        every s-line-graph computation depends on.  Used as the cache key of
        :class:`repro.engine.QueryEngine`.  The digest is computed once and
        memoised (instances are immutable by convention).
        """
        if self._fingerprint is None:
            edges = self._edges
            row_ids = np.repeat(
                np.arange(edges.num_rows, dtype=np.int64), edges.row_degrees()
            )
            order = np.lexsort((edges.indices, row_ids))
            hasher = hashlib.sha256()
            hasher.update(np.int64(edges.num_rows).tobytes())
            hasher.update(np.int64(edges.num_cols).tobytes())
            hasher.update(np.ascontiguousarray(edges.indptr, dtype=np.int64).tobytes())
            hasher.update(
                np.ascontiguousarray(edges.indices[order], dtype=np.int64).tobytes()
            )
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #
    def dual(self) -> "Hypergraph":
        """The dual hypergraph ``H*`` (hyperedges become vertices and vice versa)."""
        return Hypergraph(
            edges=self._vertices.copy(),
            vertices=self._edges.copy(),
            edge_names=self._vertex_names,
            vertex_names=self._edge_names,
        )

    def incidence_matrix(self) -> sparse.csr_matrix:
        """The ``n × m`` boolean incidence matrix ``H`` (rows=vertices, cols=edges)."""
        # edges CSR is m × n (edge rows); H is defined n × m in the paper.
        return self._edges.to_scipy().T.tocsr()

    def to_bipartite(self):
        """The bipartite graph ``B(H)`` as a :mod:`networkx` graph.

        Vertices are labelled ``("v", id)`` and hyperedges ``("e", id)``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from([("v", int(v)) for v in range(self.num_vertices)], bipartite=0)
        g.add_nodes_from([("e", int(e)) for e in range(self.num_edges)], bipartite=1)
        for e, members in self.iter_edges():
            g.add_edges_from((("e", int(e)), ("v", int(v))) for v in members)
        return g

    # ------------------------------------------------------------------ #
    # Dunders
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.num_edges == other.num_edges
            and self._edges.same_pattern(other._edges)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, num_incidences={self.num_incidences})"
        )
