"""A lightweight Compressed Sparse Row (CSR) adjacency structure.

The paper's framework stores a hypergraph as two CSR structures: the
edge→vertex incidence lists (rows are hyperedges, columns are the vertices
they contain) and the vertex→edge transpose.  We implement the same layout
on top of contiguous ``numpy`` ``int64`` arrays — the standard HPC-Python
idiom of keeping hot-path data in flat arrays rather than Python object
graphs — and provide the handful of operations the algorithms need:
row slicing, transposition, degree computation and conversion to
``scipy.sparse`` for the SpGEMM baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.utils.validation import ValidationError, check_array_int


@dataclass
class CSRMatrix:
    """A boolean/unit-weighted sparse matrix in CSR form.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_rows + 1``; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` array of column indices (length ``nnz``).
    num_cols:
        Number of columns (column indices are in ``[0, num_cols)``).
    data:
        Optional per-entry values (e.g. overlap weights).  ``None`` means all
        entries have value 1.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_cols: int
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.indptr = check_array_int(self.indptr, "indptr")
        self.indices = check_array_int(self.indices, "indices")
        if self.indptr.size == 0:
            raise ValidationError("indptr must have length >= 1")
        if int(self.indptr[0]) != 0:
            raise ValidationError("indptr[0] must be 0")
        if int(self.indptr[-1]) != self.indices.size:
            raise ValidationError(
                f"indptr[-1] ({int(self.indptr[-1])}) must equal "
                f"len(indices) ({self.indices.size})"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        if self.num_cols < 0:
            raise ValidationError("num_cols must be non-negative")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_cols
        ):
            raise ValidationError("column indices out of range")
        if self.data is not None:
            self.data = np.asarray(self.data)
            if self.data.shape != self.indices.shape:
                raise ValidationError("data must have the same length as indices")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_rows: int, num_cols: int) -> "CSRMatrix":
        """An all-zero matrix with the given shape."""
        return cls(
            indptr=np.zeros(num_rows + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            num_cols=num_cols,
        )

    @classmethod
    def from_pairs(
        cls,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        num_rows: Optional[int] = None,
        num_cols: Optional[int] = None,
        dedup: bool = True,
    ) -> "CSRMatrix":
        """Build from parallel (row, col) index arrays (COO triplets, all-ones).

        Parameters
        ----------
        rows, cols:
            Row and column index of each non-zero.
        num_rows, num_cols:
            Matrix shape; inferred from the maxima when omitted.
        dedup:
            Remove duplicate (row, col) pairs (default).  The incidence matrix
            of a hypergraph is boolean, so duplicates are collapsed.
        """
        rows = check_array_int(rows, "rows")
        cols = check_array_int(cols, "cols")
        if rows.shape != cols.shape:
            raise ValidationError("rows and cols must have the same length")
        if rows.size and rows.min() < 0:
            raise ValidationError("row indices must be non-negative")
        if cols.size and cols.min() < 0:
            raise ValidationError("column indices must be non-negative")
        if num_rows is not None:
            nrows = int(num_rows)
        else:
            nrows = int(rows.max()) + 1 if rows.size else 0
        if num_cols is not None:
            ncols = int(num_cols)
        else:
            ncols = int(cols.max()) + 1 if cols.size else 0
        if rows.size and rows.max() >= nrows:
            raise ValidationError("num_rows too small for the given row indices")
        if cols.size and cols.max() >= ncols:
            raise ValidationError("num_cols too small for the given column indices")

        if rows.size == 0:
            return cls.empty(nrows, ncols)

        # Sort by (row, col) so rows are contiguous and columns sorted.
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        if dedup:
            keep = np.ones(rows.size, dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            rows = rows[keep]
            cols = cols[keep]

        counts = np.bincount(rows, minlength=nrows)
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr=indptr, indices=cols.astype(np.int64), num_cols=ncols)

    @classmethod
    def from_lists(
        cls, lists: Iterable[Iterable[int]], num_cols: Optional[int] = None
    ) -> "CSRMatrix":
        """Build from an iterable of per-row column-index iterables."""
        row_idx: list[int] = []
        col_idx: list[int] = []
        nrows = 0
        for r, members in enumerate(lists):
            nrows = r + 1
            for c in members:
                row_idx.append(r)
                col_idx.append(int(c))
        return cls.from_pairs(
            np.asarray(row_idx, dtype=np.int64),
            np.asarray(col_idx, dtype=np.int64),
            num_rows=nrows,
            num_cols=num_cols,
        )

    @classmethod
    def from_scipy(cls, mat: sparse.spmatrix) -> "CSRMatrix":
        """Build from any scipy sparse matrix (pattern only; values dropped)."""
        csr = sparse.csr_matrix(mat)
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int64),
            num_cols=csr.shape[1],
        )

    # ------------------------------------------------------------------ #
    # Shape / access
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self.indptr.size - 1

    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_rows, num_cols)``."""
        return (self.num_rows, self.num_cols)

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (a view into ``indices``)."""
        if i < 0 or i >= self.num_rows:
            raise IndexError(f"row index {i} out of range [0, {self.num_rows})")
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_data(self, i: int) -> np.ndarray:
        """Values of row ``i`` (ones if the matrix is pattern-only)."""
        if self.data is None:
            return np.ones(self.row_degree(i), dtype=np.int64)
        return self.data[self.indptr[i] : self.indptr[i + 1]]

    def row_degree(self, i: int) -> int:
        """Number of stored entries in row ``i``."""
        if i < 0 or i >= self.num_rows:
            raise IndexError(f"row index {i} out of range [0, {self.num_rows})")
        return int(self.indptr[i + 1] - self.indptr[i])

    def row_degrees(self) -> np.ndarray:
        """Array of per-row entry counts."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(row_index, column_indices)`` for every row."""
        for i in range(self.num_rows):
            yield i, self.row(i)

    def rows_as_sets(self) -> list[frozenset[int]]:
        """Materialise each row as a frozenset of column indices."""
        return [frozenset(int(c) for c in self.row(i)) for i in range(self.num_rows)]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix (counting-sort based)."""
        nrows, ncols = self.shape
        if self.nnz:
            counts = np.bincount(self.indices, minlength=ncols)
        else:
            counts = np.zeros(ncols, dtype=np.int64)
        indptr = np.zeros(ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(self.nnz, dtype=np.int64)
        data = np.empty(self.nnz, dtype=self.data.dtype) if self.data is not None else None
        cursor = indptr[:-1].copy()
        # Row ids of every nonzero, expanded from indptr.
        row_ids = np.repeat(np.arange(nrows, dtype=np.int64), self.row_degrees())
        for k in range(self.nnz):
            col = self.indices[k]
            pos = cursor[col]
            indices[pos] = row_ids[k]
            if data is not None:
                data[pos] = self.data[k]
            cursor[col] += 1
        return CSRMatrix(indptr=indptr, indices=indices, num_cols=nrows, data=data)

    def transpose_fast(self) -> "CSRMatrix":
        """Transpose via scipy (vectorised); equivalent to :meth:`transpose`."""
        return CSRMatrix.from_scipy(self.to_scipy().T.tocsr())

    def permute_rows(self, permutation: np.ndarray) -> "CSRMatrix":
        """Return a copy with rows reordered so new row ``i`` is old row ``permutation[i]``."""
        permutation = check_array_int(permutation, "permutation")
        if permutation.size != self.num_rows:
            raise ValidationError("permutation length must equal num_rows")
        if np.sort(permutation).tolist() != list(range(self.num_rows)):
            raise ValidationError("permutation must be a permutation of row indices")
        degrees = self.row_degrees()[permutation]
        indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(self.nnz, dtype=np.int64)
        for new_i, old_i in enumerate(permutation):
            indices[indptr[new_i] : indptr[new_i + 1]] = self.row(old_i)
        return CSRMatrix(indptr=indptr, indices=indices, num_cols=self.num_cols)

    def to_scipy(self) -> sparse.csr_matrix:
        """Convert to a scipy ``csr_matrix`` (boolean pattern stored as int64)."""
        data = self.data if self.data is not None else np.ones(self.nnz, dtype=np.int64)
        return sparse.csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()), shape=self.shape
        )

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            num_cols=self.num_cols,
            data=None if self.data is None else self.data.copy(),
        )

    # ------------------------------------------------------------------ #
    # Comparison helpers (used by tests)
    # ------------------------------------------------------------------ #
    def same_pattern(self, other: "CSRMatrix") -> bool:
        """True if both matrices have identical shape and sparsity pattern."""
        if self.shape != other.shape:
            return False
        if not np.array_equal(self.indptr, other.indptr):
            return False
        # Rows may store columns in different orders; compare sorted per row.
        for i in range(self.num_rows):
            if not np.array_equal(np.sort(self.row(i)), np.sort(other.row(i))):
                return False
        return True

    def __eq__(self, other: object) -> bool:  # pragma: no cover - thin wrapper
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        return self.same_pattern(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
