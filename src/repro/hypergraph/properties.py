"""Summary statistics of a hypergraph — the quantities of the paper's Table IV.

Table IV reports, per dataset: number of vertices ``|V|``, number of
hyperedges ``|E|``, average vertex degree ``d_v``, average hyperedge size
``d_e``, maximum vertex degree ``Δ_v`` and maximum hyperedge size ``Δ_e``.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class HypergraphStats:
    """Aggregate characteristics of a hypergraph (cf. Table IV of the paper)."""

    num_vertices: int
    num_edges: int
    num_incidences: int
    avg_vertex_degree: float
    avg_edge_size: float
    max_vertex_degree: int
    max_edge_size: int
    num_empty_edges: int
    num_isolated_vertices: int
    degree_skewness: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return asdict(self)

    def as_table_row(self, name: str = "") -> str:
        """Format as a row compatible with the paper's Table IV layout."""
        return (
            f"{name:<28s} |V|={self.num_vertices:>9d} |E|={self.num_edges:>9d} "
            f"d_v={self.avg_vertex_degree:>7.1f} d_e={self.avg_edge_size:>7.1f} "
            f"Δ_v={self.max_vertex_degree:>8d} Δ_e={self.max_edge_size:>8d}"
        )


def compute_stats(h: Hypergraph) -> HypergraphStats:
    """Compute :class:`HypergraphStats` for ``h``.

    ``degree_skewness`` is the Fisher–Pearson skewness of the hyperedge size
    distribution, used by tests to check that the synthetic surrogates
    reproduce the paper's observation that "all the hypergraphs have a skewed
    hyperedge degree distribution".
    """
    edge_sizes = h.edge_sizes().astype(np.float64)
    vertex_degrees = h.vertex_degrees().astype(np.float64)
    skew = 0.0
    if edge_sizes.size > 1:
        std = edge_sizes.std()
        if std > 0:
            skew = float(np.mean(((edge_sizes - edge_sizes.mean()) / std) ** 3))
    return HypergraphStats(
        num_vertices=h.num_vertices,
        num_edges=h.num_edges,
        num_incidences=h.num_incidences,
        avg_vertex_degree=float(vertex_degrees.mean()) if vertex_degrees.size else 0.0,
        avg_edge_size=float(edge_sizes.mean()) if edge_sizes.size else 0.0,
        max_vertex_degree=int(vertex_degrees.max()) if vertex_degrees.size else 0,
        max_edge_size=int(edge_sizes.max()) if edge_sizes.size else 0,
        num_empty_edges=int(np.count_nonzero(edge_sizes == 0)),
        num_isolated_vertices=int(np.count_nonzero(vertex_degrees == 0)),
        degree_skewness=skew,
    )
