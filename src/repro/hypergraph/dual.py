"""Dual hypergraph construction.

The dual ``H* = <E*, V*>`` of a hypergraph ``H = <V, E>`` swaps the roles of
vertices and hyperedges: each original hyperedge becomes a dual vertex and
each original vertex ``v`` becomes the dual hyperedge ``v* = {e : v ∈ e}``.
Its incidence matrix is the transpose ``H^T`` and ``(H*)* = H``.

The s-line graph of the *dual* is the paper's "s-clique graph": vertices of
``H`` are linked when they co-occur in at least ``s`` hyperedges (the s=1
case being the classic clique expansion / 2-section).
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph


def dual_hypergraph(h: Hypergraph) -> Hypergraph:
    """Return the dual hypergraph ``H*`` of ``h``.

    Examples
    --------
    >>> from repro.hypergraph.builders import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3]])
    >>> d = dual_hypergraph(h)
    >>> (d.num_vertices, d.num_edges) == (h.num_edges, h.num_vertices)
    True
    """
    return h.dual()
