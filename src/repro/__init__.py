"""repro — high-order (s-)line graphs of non-uniform hypergraphs.

A from-scratch Python reproduction of *"High-order Line Graphs of
Non-uniform Hypergraphs: Algorithms, Applications, and Experimental
Analysis"* (Liu et al., IPDPS 2022): hypergraph data structures, the
hashmap-based s-line-graph construction algorithms (and every baseline they
are compared against), the five-stage s-measure framework, the s-measures
themselves, parallel-execution strategies, synthetic dataset surrogates, and
a benchmark harness that regenerates every table and figure of the paper's
evaluation.

Quickstart
----------
>>> import repro
>>> h = repro.hypergraph_from_edge_dict({
...     1: ["a", "b", "c"],
...     2: ["b", "c", "d"],
...     3: ["a", "b", "c", "d", "e"],
...     4: ["e", "f"],
... })
>>> lg = repro.s_line_graph(h, s=2)
>>> sorted(lg.edge_set())
[(0, 1), (0, 2), (1, 2)]
"""

from repro.hypergraph import (
    Hypergraph,
    hypergraph_from_edge_dict,
    hypergraph_from_edge_lists,
    hypergraph_from_incidence_pairs,
    hypergraph_from_incidence_matrix,
    hypergraph_from_bipartite,
    compute_stats,
)
from repro.core import (
    SLineGraph,
    SLineGraphEnsemble,
    SLinePipeline,
    PipelineResult,
    s_line_graph,
    s_line_graph_ensemble,
    s_clique_graph,
    s_clique_graph_ensemble,
    two_section,
    run_variant,
    parse_variant,
    ALL_VARIANTS,
    ALGORITHMS,
)
from repro.engine import OverlapIndex, QueryEngine, SweepResult
from repro.store import IndexStore, PersistentQueryEngine, ShardedIndex
from repro.service import (
    AdmissionQueue,
    CompactionPolicy,
    QueryService,
    ReadReplica,
    StoreLock,
)
from repro.parallel import ParallelConfig
from repro.smetrics import (
    s_connected_components,
    s_betweenness_centrality,
    s_closeness_centrality,
    s_distance,
    s_diameter,
    s_pagerank,
    s_normalized_algebraic_connectivity,
    connectivity_profile,
)
from repro.generators import load_dataset, available_datasets

__version__ = "1.0.0"

__all__ = [
    "Hypergraph",
    "hypergraph_from_edge_dict",
    "hypergraph_from_edge_lists",
    "hypergraph_from_incidence_pairs",
    "hypergraph_from_incidence_matrix",
    "hypergraph_from_bipartite",
    "compute_stats",
    "SLineGraph",
    "SLineGraphEnsemble",
    "SLinePipeline",
    "PipelineResult",
    "s_line_graph",
    "s_line_graph_ensemble",
    "s_clique_graph",
    "s_clique_graph_ensemble",
    "two_section",
    "run_variant",
    "parse_variant",
    "ALL_VARIANTS",
    "ALGORITHMS",
    "OverlapIndex",
    "QueryEngine",
    "SweepResult",
    "IndexStore",
    "PersistentQueryEngine",
    "ShardedIndex",
    "AdmissionQueue",
    "CompactionPolicy",
    "QueryService",
    "ReadReplica",
    "StoreLock",
    "ParallelConfig",
    "s_connected_components",
    "s_betweenness_centrality",
    "s_closeness_centrality",
    "s_distance",
    "s_diameter",
    "s_pagerank",
    "s_normalized_algebraic_connectivity",
    "connectivity_profile",
    "load_dataset",
    "available_datasets",
    "__version__",
]
