"""Per-worker ("thread-local") accumulators.

The paper stores per-thread edge lists ``L_t(H)`` and per-hyperedge overlap
hashmaps in thread-local storage and studies two allocation policies
(Section III-F): a hashmap allocated dynamically inside each outer-loop
iteration (better for most datasets) versus a pre-allocated per-thread map
that is reset between iterations (better for dense-overlap inputs such as
Web).  Both policies are provided here so the benchmark harness can compare
them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

import numpy as np


class WorkerLocalStorage:
    """A factory-backed per-worker value store.

    Mirrors oneTBB's ``enumerable_thread_specific``: the first access by a
    worker creates its value via ``factory``; later accesses return the same
    object.
    """

    def __init__(self, factory: Callable[[], Any]) -> None:
        self._factory = factory
        self._values: Dict[int, Any] = {}

    def get(self, worker_id: int) -> Any:
        """Return (creating if needed) the value owned by ``worker_id``."""
        if worker_id not in self._values:
            self._values[worker_id] = self._factory()
        return self._values[worker_id]

    def values(self) -> Iterable[Any]:
        """All per-worker values created so far (merge step)."""
        return self._values.values()

    def __len__(self) -> int:
        return len(self._values)


class DynamicCounter:
    """Dynamically allocated overlap counter: a fresh dict per outer iteration.

    This is the per-iteration hashmap policy; :meth:`fresh` returns a new
    empty mapping each time.
    """

    def fresh(self) -> Dict[int, int]:
        """A new empty ``{neighbour_edge: overlap_count}`` mapping."""
        return {}

    def reset(self, counter: Dict[int, int]) -> None:
        """No-op — the counter is discarded after each iteration."""
        # Dynamic policy: nothing to reset; the dict is garbage collected.


class PreallocatedCounter:
    """Pre-allocated overlap counter reset between iterations.

    Backed by a dense ``int64`` array of length ``num_edges`` plus a list of
    touched positions, so resetting costs O(touched) rather than O(m).
    This reproduces the pre-allocated thread-local-storage policy the paper
    found beneficial for dense-overlap datasets.
    """

    def __init__(self, num_edges: int) -> None:
        self._counts = np.zeros(num_edges, dtype=np.int64)
        self._touched: list[int] = []

    def fresh(self) -> "PreallocatedCounter":
        """Return self (the buffer is reused across iterations)."""
        return self

    def increment(self, edge: int) -> None:
        """Increase the overlap count of ``edge`` by one."""
        if self._counts[edge] == 0:
            self._touched.append(edge)
        self._counts[edge] += 1

    def items(self):
        """Yield ``(edge, count)`` for every touched edge."""
        for edge in self._touched:
            yield edge, int(self._counts[edge])

    def reset(self, counter: Optional["PreallocatedCounter"] = None) -> None:
        """Zero only the touched entries, preparing for the next iteration."""
        for edge in self._touched:
            self._counts[edge] = 0
        self._touched.clear()

    def __len__(self) -> int:
        return len(self._touched)
