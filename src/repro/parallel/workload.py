"""Per-worker workload counters (reproduces the paper's Figure 10).

Figure 10 of the paper plots, for the LiveJournal input, the number of
hyperedges visited in the innermost loop of Algorithm 2 by each of 32
threads under six partitioning/relabelling combinations.  The quantity is a
pure count independent of the execution substrate, so we collect it from the
algorithm kernels and report it per logical worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class WorkerCounters:
    """Work performed by a single logical worker."""

    worker_id: int
    edges_processed: int = 0
    wedges_visited: int = 0
    line_edges_emitted: int = 0
    set_intersections: int = 0

    def merge(self, other: "WorkerCounters") -> "WorkerCounters":
        """Accumulate another counter set (same worker) into this one."""
        self.edges_processed += other.edges_processed
        self.wedges_visited += other.wedges_visited
        self.line_edges_emitted += other.line_edges_emitted
        self.set_intersections += other.set_intersections
        return self


@dataclass
class WorkloadStats:
    """Aggregated per-worker workload characterisation."""

    workers: List[WorkerCounters] = field(default_factory=list)

    @property
    def num_workers(self) -> int:
        """Number of logical workers observed."""
        return len(self.workers)

    def visits_per_worker(self) -> np.ndarray:
        """Innermost-loop visit counts per worker (the Figure 10 quantity)."""
        return np.array([w.wedges_visited for w in self.workers], dtype=np.int64)

    def total_wedges(self) -> int:
        """Total wedges visited across all workers."""
        return int(self.visits_per_worker().sum())

    def total_set_intersections(self) -> int:
        """Total explicit set intersections (0 for the hashmap algorithms)."""
        return int(sum(w.set_intersections for w in self.workers))

    def imbalance(self) -> float:
        """Load-imbalance factor: max-work / mean-work (1.0 = perfectly balanced)."""
        visits = self.visits_per_worker()
        if visits.size == 0 or visits.sum() == 0:
            return 1.0
        mean = visits.mean()
        return float(visits.max() / mean) if mean > 0 else 1.0

    def as_dict(self) -> Dict[str, object]:
        """Summary dictionary used by the benchmark reporting layer."""
        return {
            "num_workers": self.num_workers,
            "total_wedges": self.total_wedges(),
            "total_set_intersections": self.total_set_intersections(),
            "imbalance": self.imbalance(),
            "visits_per_worker": self.visits_per_worker().tolist(),
        }

    @classmethod
    def from_counters(cls, counters: Sequence[WorkerCounters]) -> "WorkloadStats":
        """Build from a sequence of per-worker counters (sorted by worker ID)."""
        return cls(workers=sorted(counters, key=lambda c: c.worker_id))
