"""Blocked and cyclic partitioning of an index range.

``blocked_range``: worker ``t`` receives a contiguous chunk of hyperedge IDs
(oneTBB's built-in ``blocked_range``).  ``cyclic_range``: worker ``t``
receives IDs ``t, t + P, t + 2P, …`` (the paper's customised cyclic range),
which interleaves high-degree hyperedges across workers and therefore
balances skew-degree workloads better when IDs correlate with degree.
"""

from __future__ import annotations

from typing import List, Literal, Optional, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_positive_int

PartitionStrategy = Literal["blocked", "cyclic"]


def blocked_partitions(
    num_items: int, num_parts: int, grainsize: Optional[int] = None
) -> List[np.ndarray]:
    """Split ``range(num_items)`` into ``num_parts`` contiguous blocks.

    Parameters
    ----------
    num_items:
        Size of the index range.
    num_parts:
        Number of partitions (workers).  Empty partitions are returned when
        ``num_parts > num_items`` so callers can rely on the list length.
    grainsize:
        Optional upper bound on the size of each block.  When given, blocks
        larger than ``grainsize`` are split further and the resulting list
        may be longer than ``num_parts`` — mirroring oneTBB grain-size
        control, where the scheduler hands out sub-blocks to idle workers.

    Returns
    -------
    list of int64 arrays, the concatenation of which is ``0..num_items-1``.
    """
    num_parts = check_positive_int(num_parts, "num_parts")
    if num_items < 0:
        raise ValidationError("num_items must be non-negative")
    if num_items == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(num_parts)]
    bounds = np.linspace(0, num_items, num_parts + 1).astype(np.int64)
    blocks = [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64) for i in range(num_parts)
    ]
    if grainsize is not None:
        grainsize = check_positive_int(grainsize, "grainsize")
        refined: List[np.ndarray] = []
        for block in blocks:
            if block.size <= grainsize:
                refined.append(block)
            else:
                for start in range(0, block.size, grainsize):
                    refined.append(block[start : start + grainsize])
        blocks = refined
    return blocks


def cyclic_partitions(num_items: int, num_parts: int) -> List[np.ndarray]:
    """Split ``range(num_items)`` into ``num_parts`` strided (cyclic) partitions.

    Worker ``t`` receives items ``t, t + P, t + 2P, …`` where ``P`` is
    ``num_parts``.
    """
    num_parts = check_positive_int(num_parts, "num_parts")
    if num_items < 0:
        raise ValidationError("num_items must be non-negative")
    return [
        np.arange(t, num_items, num_parts, dtype=np.int64) for t in range(num_parts)
    ]


def partition_items(
    items: Sequence[int] | np.ndarray,
    num_parts: int,
    strategy: PartitionStrategy = "blocked",
    grainsize: Optional[int] = None,
) -> List[np.ndarray]:
    """Partition an arbitrary item array by position using the chosen strategy."""
    items = np.asarray(items, dtype=np.int64)
    if strategy == "blocked":
        parts = blocked_partitions(items.size, num_parts, grainsize=grainsize)
    elif strategy == "cyclic":
        parts = cyclic_partitions(items.size, num_parts)
    else:
        raise ValidationError(f"unknown partition strategy: {strategy!r}")
    return [items[p] for p in parts]
