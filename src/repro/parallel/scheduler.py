"""Chunked dynamic scheduling model (grain-size / granularity control).

oneTBB's work-stealing scheduler hands out *chunks* of the iteration range to
idle threads; the paper (Section III-F) studies the chunk ("grain") size and
observes that chunk sizes up to 256 behave similarly while larger chunks hurt
because a few heavy chunks straggle.  This module provides a deterministic
model of that behaviour:

* :func:`dynamic_chunk_schedule` simulates a greedy dynamic scheduler —
  chunks are handed to the worker that becomes idle first, using a per-item
  cost function (e.g. wedge counts) as the execution-time proxy;
* :class:`ScheduleResult` reports per-worker makespans and the critical path,
  which the grain-size ablation benchmark sweeps.

The model is used for workload studies only; actual execution uses
:mod:`repro.parallel.executor`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_positive_int


@dataclass
class ScheduleResult:
    """Outcome of a simulated chunked-dynamic schedule."""

    num_workers: int
    grainsize: int
    #: Total simulated busy time per worker.
    worker_loads: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Chunk index → worker that executed it.
    chunk_assignment: List[int] = field(default_factory=list)
    #: Number of chunks handed out.
    num_chunks: int = 0

    @property
    def makespan(self) -> float:
        """Finish time of the slowest worker (the schedule's critical path)."""
        return float(self.worker_loads.max()) if self.worker_loads.size else 0.0

    @property
    def total_work(self) -> float:
        """Sum of all chunk costs."""
        return float(self.worker_loads.sum())

    def imbalance(self) -> float:
        """Makespan divided by the ideal (perfectly balanced) makespan."""
        if self.total_work == 0:
            return 1.0
        ideal = self.total_work / self.num_workers
        return self.makespan / ideal if ideal > 0 else 1.0

    def efficiency(self) -> float:
        """Parallel efficiency of the schedule (1.0 = perfect)."""
        imbalance = self.imbalance()
        return 1.0 / imbalance if imbalance > 0 else 1.0


def dynamic_chunk_schedule(
    item_costs: Sequence[float] | np.ndarray,
    num_workers: int,
    grainsize: int,
    per_chunk_overhead: float = 0.0,
) -> ScheduleResult:
    """Greedy simulation of a dynamic (work-stealing-style) chunked schedule.

    The item range is split into consecutive chunks of ``grainsize`` items;
    chunks are dispatched in order to whichever worker becomes idle first
    (a min-heap of worker finish times), each costing the sum of its items'
    costs plus ``per_chunk_overhead`` (scheduling/stealing overhead — the
    term that penalises tiny grain sizes).

    Parameters
    ----------
    item_costs:
        Per-item execution cost (e.g. wedge counts per hyperedge).
    num_workers:
        Number of simulated workers.
    grainsize:
        Items per chunk.
    per_chunk_overhead:
        Fixed cost added to every chunk.
    """
    costs = np.asarray(item_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValidationError("item_costs must be one-dimensional")
    if np.any(costs < 0):
        raise ValidationError("item costs must be non-negative")
    num_workers = check_positive_int(num_workers, "num_workers")
    grainsize = check_positive_int(grainsize, "grainsize")

    loads = np.zeros(num_workers, dtype=np.float64)
    assignment: List[int] = []
    # Min-heap of (finish_time, worker_id); ties broken by worker id.
    heap = [(0.0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    num_chunks = 0
    for start in range(0, costs.size, grainsize):
        chunk_cost = float(costs[start : start + grainsize].sum()) + per_chunk_overhead
        finish, worker = heapq.heappop(heap)
        loads[worker] += chunk_cost
        heapq.heappush(heap, (finish + chunk_cost, worker))
        assignment.append(worker)
        num_chunks += 1
    return ScheduleResult(
        num_workers=num_workers,
        grainsize=grainsize,
        worker_loads=loads,
        chunk_assignment=assignment,
        num_chunks=num_chunks,
    )


def grainsize_sweep(
    item_costs: Sequence[float] | np.ndarray,
    num_workers: int,
    grainsizes: Sequence[int],
    per_chunk_overhead: float = 0.0,
) -> dict[int, ScheduleResult]:
    """Run :func:`dynamic_chunk_schedule` for each grain size (ablation helper)."""
    return {
        int(g): dynamic_chunk_schedule(
            item_costs, num_workers, int(g), per_chunk_overhead=per_chunk_overhead
        )
        for g in grainsizes
    }


def wedge_costs(h, s: int = 1) -> np.ndarray:
    """Per-hyperedge wedge counts — the natural cost model for the outer loop.

    The cost of processing hyperedge ``e_i`` in Algorithm 2 is the number of
    wedges it enumerates: the sum of the degrees of its member vertices.
    Hyperedges pruned by ``|e| < s`` cost zero.
    """
    degrees = h.vertex_degrees()
    sizes = h.edge_sizes()
    costs = np.zeros(h.num_edges, dtype=np.float64)
    for e in range(h.num_edges):
        if sizes[e] < s:
            continue
        members = h.edge_members(e)
        if members.size:
            costs[e] = float(degrees[members].sum())
    return costs
