"""Execution of a kernel over index partitions: serial, threads or processes.

The abstraction mirrors the paper's use of oneTBB ``parallel_for(range,
body)``: a *kernel* is invoked once per partition with the partition's item
array and a worker ID, produces a partial result (e.g. a per-thread edge
list plus work counters), and the partial results are returned in partition
order for the caller to merge.

Backends
--------
``serial``
    Run partitions one after another in the calling thread.  Used as the
    correctness reference and for deterministic workload characterisation.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  Faithful to the paper's
    shared-memory threading structure; note that CPython's GIL serialises
    pure-Python kernels, so thread scaling is only observed for kernels that
    release the GIL (NumPy-vectorised inner loops).
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  Sidesteps the GIL at the
    cost of pickling the kernel arguments; kernels must be module-level
    callables.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Literal, Optional, Sequence

import numpy as np

from repro.parallel.partition import PartitionStrategy, partition_items
from repro.utils.validation import ValidationError, check_positive_int

Backend = Literal["serial", "thread", "process"]

#: Kernel signature: (items_in_partition, worker_id) -> partial result.
Kernel = Callable[[np.ndarray, int], Any]


def available_backends() -> List[str]:
    """The execution backends supported on this platform."""
    return ["serial", "thread", "process"]


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of a partitioned parallel run.

    Attributes
    ----------
    num_workers:
        Number of logical workers (partitions).
    strategy:
        Partitioning strategy: ``"blocked"`` or ``"cyclic"``.
    backend:
        Execution backend: ``"serial"``, ``"thread"`` or ``"process"``.
    grainsize:
        Optional cap on blocked-partition size (oneTBB grain size); ignored
        for cyclic partitioning.
    """

    num_workers: int = 1
    strategy: PartitionStrategy = "blocked"
    backend: Backend = "serial"
    grainsize: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_workers, "num_workers")
        if self.strategy not in ("blocked", "cyclic"):
            raise ValidationError(f"unknown partition strategy: {self.strategy!r}")
        if self.backend not in ("serial", "thread", "process"):
            raise ValidationError(f"unknown backend: {self.backend!r}")
        if self.grainsize is not None:
            check_positive_int(self.grainsize, "grainsize")

    def partitions(self, items: Sequence[int] | np.ndarray) -> List[np.ndarray]:
        """Partition ``items`` according to this configuration."""
        return partition_items(
            items, self.num_workers, strategy=self.strategy, grainsize=self.grainsize
        )


def run_partitioned(
    kernel: Kernel,
    items: Sequence[int] | np.ndarray,
    config: ParallelConfig = ParallelConfig(),
) -> List[Any]:
    """Run ``kernel`` over each partition of ``items`` and collect the results.

    The result list is ordered by partition (worker) index regardless of the
    backend, so merges are deterministic.

    Parameters
    ----------
    kernel:
        Callable ``(partition_items, worker_id) -> result``.  For the
        ``process`` backend the callable and its results must be picklable.
    items:
        The item IDs to distribute (typically hyperedge IDs).
    config:
        Partitioning strategy, worker count and backend.
    """
    parts = config.partitions(items)
    if config.backend == "serial" or config.num_workers == 1:
        return [kernel(part, worker_id) for worker_id, part in enumerate(parts)]
    if config.backend == "thread":
        with ThreadPoolExecutor(max_workers=config.num_workers) as pool:
            futures = [
                pool.submit(kernel, part, worker_id)
                for worker_id, part in enumerate(parts)
            ]
            return [f.result() for f in futures]
    if config.backend == "process":
        with ProcessPoolExecutor(max_workers=config.num_workers) as pool:
            futures = [
                pool.submit(kernel, part, worker_id)
                for worker_id, part in enumerate(parts)
            ]
            return [f.result() for f in futures]
    raise ValidationError(f"unknown backend: {config.backend!r}")  # pragma: no cover
