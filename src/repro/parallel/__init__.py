"""Parallel-execution substrate.

The paper parallelises the outermost hyperedge loop of its algorithms with
oneTBB's ``parallel_for`` over *blocked* or *cyclic* ranges, accumulating
edges in per-thread containers that are merged at the end, and studies the
effect of partitioning strategy and grain size on load balance (Figures 7,
8, 10).

This subpackage provides the same abstractions for Python:

* :mod:`repro.parallel.partition` — blocked and cyclic index partitions with
  grain-size control;
* :mod:`repro.parallel.executor`  — serial, thread-pool and process-pool
  execution of a kernel over partitions with per-worker result merging;
* :mod:`repro.parallel.tls`       — per-worker ("thread-local") accumulators,
  both dynamically allocated and pre-allocated variants;
* :mod:`repro.parallel.workload`  — per-worker work counters used to
  reproduce the paper's workload-characterisation figure.
"""

from repro.parallel.partition import (
    blocked_partitions,
    cyclic_partitions,
    partition_items,
    PartitionStrategy,
)
from repro.parallel.executor import ParallelConfig, run_partitioned, available_backends
from repro.parallel.tls import WorkerLocalStorage, PreallocatedCounter, DynamicCounter
from repro.parallel.workload import WorkloadStats, WorkerCounters
from repro.parallel.scheduler import (
    ScheduleResult,
    dynamic_chunk_schedule,
    grainsize_sweep,
    wedge_costs,
)

__all__ = [
    "ScheduleResult",
    "dynamic_chunk_schedule",
    "grainsize_sweep",
    "wedge_costs",
    "blocked_partitions",
    "cyclic_partitions",
    "partition_items",
    "PartitionStrategy",
    "ParallelConfig",
    "run_partitioned",
    "available_backends",
    "WorkerLocalStorage",
    "PreallocatedCounter",
    "DynamicCounter",
    "WorkloadStats",
    "WorkerCounters",
]
