"""Shared plumbing for the s-measure functions.

Every s-measure follows the same recipe: build the s-line graph of the
hypergraph (or of its dual, for vertex-centric "s-clique" measures), squeeze
the IDs, run a graph algorithm, and report the result keyed by original
hyperedge IDs.  :func:`line_graph_and_mapping` factors out the common part.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dispatch import s_line_graph
from repro.core.slinegraph import SLineGraph
from repro.graph.graph import Graph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.preprocessing import SqueezeResult
from repro.parallel.executor import ParallelConfig
from repro.utils.validation import ValidationError


def line_graph_and_mapping(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
) -> Tuple[Graph, SqueezeResult, SLineGraph]:
    """Build (or reuse) the s-line graph of ``h`` and its squeezed CSR graph.

    Parameters
    ----------
    line_graph:
        A pre-computed :class:`SLineGraph` (e.g. from an ensemble run) to
        reuse instead of recomputing.
    include_isolated:
        Keep hyperedges of ``E_s`` with no incident line-graph edges as
        isolated vertices of the squeezed graph.

    Returns
    -------
    (graph, mapping, line_graph):
        The squeezed CSR graph, the squeezed→original ID mapping and the
        (un-squeezed) s-line graph.
    """
    if line_graph is None:
        line_graph = s_line_graph(h, s, algorithm=algorithm, config=config)
    squeezed, mapping = line_graph.squeeze(include_isolated=include_isolated)
    graph = squeezed.to_graph(squeezed=False)
    return graph, mapping, line_graph


def values_to_hyperedge_dict(
    values: np.ndarray, mapping: SqueezeResult
) -> Dict[int, float]:
    """Re-key an array over squeezed IDs by the original hyperedge IDs."""
    return {
        int(mapping.new_to_old[i]): float(v) for i, v in enumerate(np.asarray(values))
    }


def metric_via_engine(
    engine,
    h: Optional[Hypergraph],
    s: int,
    metric: str,
    non_default: bool = False,
) -> Dict[int, float]:
    """Serve an s-measure from a :class:`~repro.engine.QueryEngine`.

    The engine path replaces "build the line graph, squeeze, run the
    metric" with a cached lookup — repeated calls cost a dictionary probe
    instead of a rebuild.  Two guard rails keep it equivalent to the direct
    path: the engine must describe the *same* hypergraph (fingerprints are
    compared when ``h`` is supplied), and the caller must not have asked
    for non-default measure parameters (``non_default=True``), because the
    engine caches every metric under its :data:`METRIC_FUNCTIONS` defaults.
    """
    if non_default:
        raise ValidationError(
            f"engine-served {metric} supports only the default measure "
            "parameters (the engine caches results computed with them); "
            "drop engine= to use non-default parameters"
        )
    if h is not None and engine.fingerprint() != h.fingerprint():
        raise ValidationError(
            f"engine serves a different hypergraph than the one supplied "
            f"(fingerprints {engine.fingerprint()[:12]}… vs "
            f"{h.fingerprint()[:12]}…)"
        )
    return engine.metric_by_hyperedge(s, metric)
