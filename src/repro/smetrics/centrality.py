"""s-centrality measures of hyperedges.

The s-betweenness centrality of a hyperedge ``e`` (Section II-B of the
paper) counts the fraction of shortest s-walks between other hyperedge
pairs that pass through ``e`` — i.e. the betweenness centrality of ``e`` in
the s-line graph.  The same reduction gives s-closeness, s-harmonic,
s-eccentricity and s-PageRank.

All functions return ``{original hyperedge ID: score}`` restricted to the
hyperedges that participate in the s-line graph.

Engine-served centralities
--------------------------
Every measure with a :data:`~repro.core.pipeline.METRIC_FUNCTIONS`
counterpart accepts ``engine=`` — a :class:`~repro.engine.QueryEngine`
(or a store-backed one) whose overlap index and LRU cache serve the
result: the first call per ``(s, metric)`` builds the line graph from a
binary-search threshold view, repeated calls are dictionary lookups, and
nothing is recomputed across different ``s``.  The engine caches results
computed with the default measure parameters, so combining ``engine=``
with non-default parameters (``normalized=False``, a custom ``damping``…)
raises instead of silently serving a mismatched cache entry.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.slinegraph import SLineGraph
from repro.graph.betweenness import betweenness_centrality
from repro.graph.distance import closeness_centrality, eccentricity, harmonic_centrality
from repro.graph.pagerank import pagerank
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.smetrics.base import (
    line_graph_and_mapping,
    metric_via_engine,
    values_to_hyperedge_dict,
)


def s_betweenness_centrality(
    h: Hypergraph,
    s: int,
    normalized: bool = True,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    engine=None,
) -> Dict[int, float]:
    """s-betweenness centrality of every participating hyperedge.

    Examples
    --------
    >>> from repro.hypergraph import hypergraph_from_edge_lists
    >>> h = hypergraph_from_edge_lists([[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]])
    >>> scores = s_betweenness_centrality(h, s=1)
    >>> max(scores, key=scores.get)   # hyperedge 2 bridges {0,1} and {3}
    2
    """
    if engine is not None:
        return metric_via_engine(
            engine, h, s, "betweenness",
            non_default=not normalized or line_graph is not None or include_isolated,
        )
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    return values_to_hyperedge_dict(
        betweenness_centrality(graph, normalized=normalized), mapping
    )


def s_closeness_centrality(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    engine=None,
) -> Dict[int, float]:
    """s-closeness centrality (Wasserman–Faust corrected) per participating
    hyperedge."""
    if engine is not None:
        return metric_via_engine(
            engine, h, s, "closeness",
            non_default=line_graph is not None or include_isolated,
        )
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    return values_to_hyperedge_dict(closeness_centrality(graph), mapping)


def s_harmonic_centrality(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
) -> Dict[int, float]:
    """s-harmonic centrality of every participating hyperedge."""
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    return values_to_hyperedge_dict(harmonic_centrality(graph), mapping)


def s_eccentricity(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    engine=None,
) -> Dict[int, float]:
    """s-eccentricity of every participating hyperedge (within its component)."""
    if engine is not None:
        return metric_via_engine(
            engine, h, s, "eccentricity",
            non_default=line_graph is not None or include_isolated,
        )
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    return values_to_hyperedge_dict(eccentricity(graph), mapping)


def s_pagerank(
    h: Hypergraph,
    s: int,
    damping: float = 0.85,
    weighted: bool = False,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    engine=None,
) -> Dict[int, float]:
    """s-PageRank of every participating hyperedge.

    Used on the *dual* hypergraph this gives the s-clique-graph PageRank of
    the original vertices — the paper's Table II disease-ranking experiment.
    """
    if engine is not None:
        return metric_via_engine(
            engine, h, s, "pagerank",
            non_default=damping != 0.85
            or weighted
            or line_graph is not None
            or include_isolated,
        )
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    return values_to_hyperedge_dict(
        pagerank(graph, damping=damping, weighted=weighted), mapping
    )
