"""s-walks and s-paths (Section II-B of the paper).

An *s-walk* is a sequence of hyperedges in which consecutive hyperedges
share at least ``s`` vertices; an *s-path* is an s-walk without repeated
hyperedges.  All s-measures in the paper are defined through s-walks; these
helpers make the notion first-class: validating walks, extracting a shortest
s-path between two hyperedges, and enumerating the hyperedges reachable by
s-walks from a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.slinegraph import SLineGraph
from repro.graph.bfs import bfs_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.smetrics.base import line_graph_and_mapping
from repro.utils.validation import ValidationError, check_s_value


def is_s_walk(h: Hypergraph, edge_sequence: Sequence[int], s: int) -> bool:
    """True when consecutive hyperedges of ``edge_sequence`` are s-incident.

    A single hyperedge (or an empty sequence) is trivially an s-walk provided
    the hyperedges exist; hyperedge IDs outside the hypergraph raise.
    """
    s = check_s_value(s)
    sequence = [int(e) for e in edge_sequence]
    for e in sequence:
        if e < 0 or e >= h.num_edges:
            raise ValidationError(f"hyperedge {e} does not exist")
    for a, b in zip(sequence, sequence[1:]):
        if h.inc(a, b) < s:
            return False
    return True


def is_s_path(h: Hypergraph, edge_sequence: Sequence[int], s: int) -> bool:
    """True when ``edge_sequence`` is an s-walk with no repeated hyperedges."""
    sequence = [int(e) for e in edge_sequence]
    if len(set(sequence)) != len(sequence):
        return False
    return is_s_walk(h, sequence, s)


def shortest_s_path(
    h: Hypergraph,
    source: int,
    target: int,
    s: int,
    line_graph: Optional[SLineGraph] = None,
    config: Optional[ParallelConfig] = None,
) -> Optional[List[int]]:
    """A shortest s-path between two hyperedges, as a list of hyperedge IDs.

    Returns ``None`` when the two hyperedges are not s-connected; returns
    ``[source]`` when ``source == target``.  Both endpoints must be members
    of ``E_s`` (size at least ``s``).
    """
    s = check_s_value(s)
    if h.edge_size(source) < s or h.edge_size(target) < s:
        raise ValidationError(
            f"hyperedges {source} and {target} must both have at least s={s} vertices"
        )
    if source == target:
        return [int(source)]
    graph, mapping, _ = line_graph_and_mapping(
        h, s, line_graph=line_graph, config=config, include_isolated=True
    )
    try:
        src = mapping.to_squeezed(int(source))
        dst = mapping.to_squeezed(int(target))
    except KeyError:
        return None
    dist, pred = bfs_tree(graph, src)
    if dist[dst] < 0:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(int(pred[path[-1]]))
    path.reverse()
    return [int(mapping.new_to_old[v]) for v in path]


def s_reachable_set(
    h: Hypergraph,
    source: int,
    s: int,
    line_graph: Optional[SLineGraph] = None,
    config: Optional[ParallelConfig] = None,
) -> List[int]:
    """All hyperedges reachable from ``source`` by an s-walk (including itself).

    ``source`` must be a member of ``E_s``.
    """
    s = check_s_value(s)
    if h.edge_size(source) < s:
        raise ValidationError(f"hyperedge {source} has fewer than s={s} vertices")
    graph, mapping, _ = line_graph_and_mapping(
        h, s, line_graph=line_graph, config=config, include_isolated=True
    )
    try:
        src = mapping.to_squeezed(int(source))
    except KeyError:
        return [int(source)]
    dist, _ = bfs_tree(graph, src)
    reachable = np.flatnonzero(dist >= 0)
    return sorted(int(mapping.new_to_old[v]) for v in reachable)
