"""s-connected components of a hypergraph.

A subset of hyperedges ``F ⊆ E_s`` is an s-connected component when every
pair of its members is joined by an s-walk and ``F`` is maximal — i.e. the
connected components of the s-line graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.slinegraph import SLineGraph
from repro.graph.connected_components import connected_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.smetrics.base import line_graph_and_mapping, metric_via_engine


def s_component_labels(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    engine=None,
) -> Dict[int, int]:
    """Component label of each hyperedge participating in the s-line graph.

    Hyperedges with ``|e| < s`` (not in ``E_s``) are never included;
    hyperedges in ``E_s`` with no s-incident partner appear only when
    ``include_isolated=True`` (each as its own singleton component).

    With ``engine=`` the labels come from the engine's cached
    ``connected_components`` metric (see
    :func:`repro.smetrics.base.metric_via_engine`).
    """
    if engine is not None:
        labels = metric_via_engine(
            engine, h, s, "connected_components",
            non_default=line_graph is not None or include_isolated,
        )
        return {edge_id: int(label) for edge_id, label in labels.items()}
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated,
    )
    labels = connected_components(graph)
    return {int(mapping.new_to_old[i]): int(c) for i, c in enumerate(labels)}


def s_connected_components(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
    include_isolated: bool = False,
    min_size: int = 1,
    engine=None,
) -> List[List[int]]:
    """The s-connected components as lists of original hyperedge IDs.

    Components are sorted by decreasing size (ties by smallest member ID)
    and components smaller than ``min_size`` are dropped — the paper's IMDB
    case study, for example, reports only non-singleton 100-connected
    components.
    """
    labels = s_component_labels(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=include_isolated, engine=engine,
    )
    groups: Dict[int, List[int]] = {}
    for edge_id, component in labels.items():
        groups.setdefault(component, []).append(edge_id)
    components = [sorted(members) for members in groups.values() if len(members) >= min_size]
    components.sort(key=lambda c: (-len(c), c[0] if c else 0))
    return components


def num_s_connected_components(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    include_isolated: bool = False,
    engine=None,
) -> int:
    """Number of s-connected components (singleton components excluded by default)."""
    return len(
        s_connected_components(
            h, s, algorithm=algorithm, config=config,
            include_isolated=include_isolated,
            min_size=1 if include_isolated else 2,
            engine=engine,
        )
    )
