"""s-distance and s-diameter of a hypergraph.

The s-distance between two hyperedges is the length of the shortest s-walk
between them, i.e. the hop distance between the corresponding vertices of
the s-line graph; the s-diameter is the largest finite s-distance.
"""

from __future__ import annotations

from typing import Optional

from repro.core.slinegraph import SLineGraph
from repro.graph.bfs import bfs_distances
from repro.graph.distance import diameter as graph_diameter
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.executor import ParallelConfig
from repro.smetrics.base import line_graph_and_mapping
from repro.utils.validation import ValidationError

#: Returned when two hyperedges are not s-connected.
INF_DISTANCE = -1


def s_distance(
    h: Hypergraph,
    e: int,
    f: int,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
) -> int:
    """Shortest s-walk length between hyperedges ``e`` and ``f`` (−1 if none).

    Both hyperedges must belong to ``E_s`` (size ``>= s``); otherwise a
    :class:`ValidationError` is raised, because the distance is undefined.
    """
    if h.edge_size(e) < s or h.edge_size(f) < s:
        raise ValidationError(
            f"hyperedges {e} and {f} must both have at least s={s} vertices"
        )
    if e == f:
        return 0
    graph, mapping, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph,
        include_isolated=True,
    )
    try:
        src = mapping.to_squeezed(e)
        dst = mapping.to_squeezed(f)
    except KeyError:
        return INF_DISTANCE
    dist = bfs_distances(graph, src)
    return int(dist[dst])


def s_diameter(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
) -> int:
    """Largest finite s-distance over all hyperedge pairs (0 for an empty graph)."""
    graph, _, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph
    )
    if graph.num_vertices == 0:
        return 0
    return graph_diameter(graph)
