"""Spectral s-measures: (normalized) algebraic connectivity of s-line graphs.

The paper's Figure 6 plots the normalized algebraic connectivity — the
second-smallest eigenvalue of the normalized Laplacian — of the s-line
graphs of the condMat author–paper network for ``s = 1..16``, computed on
the largest connected component of each s-line graph.  A dip followed by a
sharp rise reveals that authors sharing many papers form densely connected
cores.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dispatch import s_line_graph_ensemble
from repro.core.slinegraph import SLineGraph
from repro.graph.connected_components import connected_components, component_sizes
from repro.hypergraph.hypergraph import Hypergraph
from repro.linalg.laplacian import (
    algebraic_connectivity,
    normalized_algebraic_connectivity,
)
from repro.parallel.executor import ParallelConfig
from repro.smetrics.base import line_graph_and_mapping


def _largest_component_adjacency(graph):
    """Adjacency matrix of the largest connected component of a CSR graph."""
    if graph.num_vertices == 0:
        return None
    labels = connected_components(graph)
    sizes = component_sizes(labels)
    biggest = int(np.argmax(sizes))
    members = np.flatnonzero(labels == biggest)
    if members.size < 2:
        return None
    sub, _ = graph.subgraph(members)
    return sub.adjacency_matrix(weighted=False)


def s_normalized_algebraic_connectivity(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
) -> float:
    """Normalized algebraic connectivity of the largest s-connected component.

    Returns 0.0 when the s-line graph has no component with at least two
    vertices (e.g. ``s`` larger than every pairwise overlap).
    """
    graph, _, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph
    )
    adjacency = _largest_component_adjacency(graph)
    if adjacency is None:
        return 0.0
    return normalized_algebraic_connectivity(adjacency)


def s_algebraic_connectivity(
    h: Hypergraph,
    s: int,
    algorithm: str = "hashmap",
    config: Optional[ParallelConfig] = None,
    line_graph: Optional[SLineGraph] = None,
) -> float:
    """Combinatorial algebraic connectivity of the largest s-connected component."""
    graph, _, _ = line_graph_and_mapping(
        h, s, algorithm=algorithm, config=config, line_graph=line_graph
    )
    adjacency = _largest_component_adjacency(graph)
    if adjacency is None:
        return 0.0
    return algebraic_connectivity(adjacency)


def connectivity_profile(
    h: Hypergraph,
    s_values: Sequence[int],
    normalized: bool = True,
    config: Optional[ParallelConfig] = None,
) -> Dict[int, float]:
    """Algebraic connectivity of the s-line graphs for every ``s`` (Figure 6).

    The s-line graphs are built with one ensemble pass (Algorithm 3) and the
    connectivity of the largest component is computed per ``s``.
    """
    ensemble = s_line_graph_ensemble(h, s_values, config=config)
    out: Dict[int, float] = {}
    for s, line_graph in ensemble.items():
        if normalized:
            out[s] = s_normalized_algebraic_connectivity(h, s, line_graph=line_graph)
        else:
            out[s] = s_algebraic_connectivity(h, s, line_graph=line_graph)
    return out
