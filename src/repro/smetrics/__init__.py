"""s-measures of hypergraphs, computed through their s-line graphs.

Aksoy et al. define hypergraph analogues of classical graph measures in
terms of s-walks; all of them reduce to ordinary graph measures on the
s-line graph (Section II-B of the paper).  This subpackage provides the
user-facing functions that take a hypergraph and an ``s`` value, build the
s-line graph internally and report the measure keyed by the original
hyperedge IDs.
"""

from repro.smetrics.connected import (
    s_connected_components,
    s_component_labels,
    num_s_connected_components,
)
from repro.smetrics.centrality import (
    s_betweenness_centrality,
    s_closeness_centrality,
    s_harmonic_centrality,
    s_eccentricity,
    s_pagerank,
)
from repro.smetrics.distance import s_distance, s_diameter
from repro.smetrics.spectral import (
    s_normalized_algebraic_connectivity,
    s_algebraic_connectivity,
    connectivity_profile,
)
from repro.smetrics.walks import (
    is_s_walk,
    is_s_path,
    shortest_s_path,
    s_reachable_set,
)

__all__ = [
    "is_s_walk",
    "is_s_path",
    "shortest_s_path",
    "s_reachable_set",
    "s_connected_components",
    "s_component_labels",
    "num_s_connected_components",
    "s_betweenness_centrality",
    "s_closeness_centrality",
    "s_harmonic_centrality",
    "s_eccentricity",
    "s_pagerank",
    "s_distance",
    "s_diameter",
    "s_normalized_algebraic_connectivity",
    "s_algebraic_connectivity",
    "connectivity_profile",
]
