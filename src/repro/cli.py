"""Command-line interface for the s-line-graph framework.

Sub-commands mirror the stages of the paper's framework so the library can
be driven from the shell on hyperedge-list / bipartite-edge-list files or on
the built-in surrogate datasets:

``stats``        print Table IV-style characteristics of a hypergraph;
``slinegraph``   compute an s-line graph and write its edge list;
``components``   report the s-connected components;
``centrality``   report the top hyperedges by an s-centrality measure;
``datasets``     list the built-in surrogate datasets;
``variants``     run the Table III variants and print their speedups;
``query``        serve one s/metric query from the overlap-index engine;
``sweep``        batched multi-s sweep from one overlap-index build;
``index``        manage persistent overlap-index stores:
                 ``index build`` / ``index info`` / ``index compact`` /
                 ``index query`` (warm-serve from an mmap'd snapshot);
``serve``        long-running request server over a store — the
                 concurrent-service driver: one ``serve`` process is the
                 single writer (async batched admission, background
                 compaction), any number of ``serve --read-only``
                 processes are hot-reloading read replicas.  By default
                 requests arrive as JSONL on stdin; with ``--listen
                 HOST:PORT`` they arrive over TCP (length-prefixed JSON
                 frames — see :mod:`repro.service.transport`);
``connect``      drive ad-hoc queries against a ``serve --listen``
                 server: one-shot metric queries with ``--s``, or a JSONL
                 request loop proxied over the socket;
``replicate``    mirror a remote store over the socket protocol alone (no
                 shared filesystem): bootstrap/refresh a local store
                 directory from any serving peer, and with ``--serve``
                 keep it current while serving it as a read replica —
                 one command stands up a remote read server.

Examples
--------
::

    python -m repro datasets
    python -m repro stats --dataset livejournal --scale 0.2
    python -m repro slinegraph --dataset email-euall --s 4 --output lg.txt
    python -m repro components --input hyperedges.txt --format hyperedges --s 3
    python -m repro variants --dataset web --s 8 --workers 4
    python -m repro query --dataset email-euall --s 3 --metric pagerank --top 5
    python -m repro sweep --dataset email-euall --s-max 8 --metrics connected_components
    python -m repro index build --dataset email-euall --path idx/ --shards 8
    python -m repro index query --path idx/ --s 3 --metric pagerank --sharded
    python -m repro index compact --path idx/
    echo '{"op": "metric", "s": 3, "metric": "pagerank"}' \
        | python -m repro serve --path idx/ --read-only
    python -m repro serve --path idx/ --listen 127.0.0.1:7474
    python -m repro connect --address 127.0.0.1:7474 --s 3 --metric pagerank
    python -m repro replicate --from 127.0.0.1:7474 --store mirror/ \
        --serve 127.0.0.1:7475
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.registry import ALL_VARIANTS, run_variant
from repro.core.dispatch import ALGORITHMS, s_line_graph
from repro.core.pipeline import METRIC_FUNCTIONS
from repro.engine.engine import QueryEngine
from repro.generators.datasets import available_datasets, load_dataset
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.properties import compute_stats
from repro.io.edgelist import read_bipartite_edgelist, read_hyperedge_list
from repro.smetrics.centrality import (
    s_betweenness_centrality,
    s_closeness_centrality,
    s_pagerank,
)
from repro.smetrics.connected import s_connected_components

CENTRALITY_FUNCTIONS = {
    "betweenness": s_betweenness_centrality,
    "closeness": s_closeness_centrality,
    "pagerank": s_pagerank,
}


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("input")
    group.add_argument("--input", help="path to a hypergraph file")
    group.add_argument(
        "--format",
        choices=["hyperedges", "bipartite"],
        default="hyperedges",
        help="file format of --input (one hyperedge per line, or 'edge vertex' pairs)",
    )
    group.add_argument(
        "--dataset",
        choices=available_datasets(),
        help="use a built-in surrogate dataset instead of --input",
    )
    group.add_argument("--scale", type=float, default=0.3, help="surrogate dataset scale")
    group.add_argument("--seed", type=int, default=0, help="surrogate dataset seed")


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("tracing")
    group.add_argument(
        "--trace-sample-rate",
        type=float,
        default=None,
        metavar="P",
        help="trace this fraction of requests (0..1); traces are kept in "
        "a bounded in-memory ring served by 'repro trace'",
    )
    group.add_argument(
        "--trace-slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="always keep traces of requests slower than this many ms, "
        "regardless of the sample rate",
    )


def _load_hypergraph(args: argparse.Namespace) -> Hypergraph:
    if args.dataset and args.input:
        raise SystemExit("specify either --dataset or --input, not both")
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.input:
        if args.format == "bipartite":
            return read_bipartite_edgelist(args.input)
        return read_hyperedge_list(args.input)
    raise SystemExit("an input is required: pass --dataset <name> or --input <file>")


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in available_datasets():
        print(name)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.address:
        if args.dataset or args.input:
            raise SystemExit(
                "--address prints a remote server's stats; it cannot be "
                "combined with --dataset/--input"
            )
        return _remote_stats(args)
    if args.raw:
        raise SystemExit("--raw needs --address (it prints remote Prometheus text)")
    h = _load_hypergraph(args)
    stats = compute_stats(h)
    label = args.dataset or args.input or "hypergraph"
    print(stats.as_table_row(str(label)))
    return 0


def _remote_stats(args: argparse.Namespace) -> int:
    """One-shot ``stats``/``metrics`` round trip against a serving peer."""
    from repro.service.transport import ServiceClient, TransportError

    host, port = _parse_address(args.address)
    try:
        client = ServiceClient(
            host, port, timeout=args.timeout, connect_retries=args.connect_retries
        ).connect()
    except TransportError as exc:
        raise SystemExit(f"connect failed: {exc}") from None
    try:
        if args.raw:
            sys.stdout.write(client.metrics_text())
            return 0
        stats = client.stats()
        rows = [
            ("mode", "replica" if stats.get("read_only") else "writer"),
            ("generation", stats.get("generation")),
            ("fingerprint", stats.get("fingerprint")),
        ]
        token = stats.get("state_token")
        if token is not None:
            rows.append(("state_token", f"gen {token[0]}, {token[1]} WAL bytes"))
        engine = stats.get("engine") or {}
        for key in (
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_entries",
            "incremental_adds",
            "incremental_removes",
        ):
            if key in engine:
                rows.append((f"engine.{key}", engine[key]))
        admission = stats.get("admission") or {}
        for key in sorted(admission):
            rows.append((f"admission.{key}", admission[key]))
        for key in ("replica_reloads", "compactions", "slow_query_ms"):
            if key in stats:
                rows.append((key, stats[key]))
        slow = stats.get("slow_queries")
        if slow is not None:
            rows.append(("slow_queries", len(slow)))
        tracing = stats.get("tracing") or {}
        if tracing.get("enabled"):
            for key in ("sample_rate", "slow_ms", "requests", "sampled", "kept",
                        "kept_slow", "buffered"):
                if tracing.get(key) is not None:
                    rows.append((f"tracing.{key}", tracing[key]))
        metrics = stats.get("metrics") or {}
        rows.append(("metrics registered", len(metrics)))
        width = max(len(str(k)) for k, _ in rows)
        for key, value in rows:
            print(f"{key:<{width}}  {value}")
        if slow:
            print("\nslowest recent queries:")
            for entry in sorted(
                slow, key=lambda e: -float(e.get("duration_ms", 0))
            )[:5]:
                op = entry.get("op", "?")
                detail = "".join(
                    f" {k}={entry[k]}"
                    for k in ("s", "metric", "generation", "trace_id")
                    # trace_id is "" for unsampled requests — omit it.
                    if entry.get(k) not in (None, "")
                )
                print(f"  {entry.get('duration_ms', 0):>9.3f} ms  {op}{detail}")
        return 0
    except TransportError as exc:
        raise SystemExit(f"transport error: {exc}") from None
    finally:
        client.close()


def _cmd_slinegraph(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    graph = s_line_graph(h, args.s, algorithm=args.algorithm)
    lines = [
        f"{int(i)} {int(j)} {int(w)}"
        for (i, j), w in zip(graph.edges, graph.weights)
    ]
    body = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(f"# s={args.s} line graph: {graph.num_edges} edges\n")
            handle.write(body + ("\n" if body else ""))
        print(f"wrote {graph.num_edges} edges to {args.output}")
    else:
        print(body)
    return 0


def _cmd_components(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    components = s_connected_components(h, args.s, min_size=args.min_size)
    print(f"{len(components)} s-connected components (s={args.s}, min size {args.min_size})")
    for component in components[: args.limit]:
        names = [str(h.edge_name(e)) for e in component]
        print(f"  size={len(component)}: {names}")
    return 0


def _cmd_centrality(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    scores = CENTRALITY_FUNCTIONS[args.measure](h, args.s)
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[: args.top]
    print(f"top {len(ranked)} hyperedges by s-{args.measure} (s={args.s})")
    for edge_id, score in ranked:
        print(f"  {h.edge_name(edge_id)}\t{score:.6f}")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    runtimes = {}
    for notation in ALL_VARIANTS:
        result = run_variant(h, args.s, notation, num_workers=args.workers)
        runtimes[notation] = result.total_seconds
    baseline = runtimes["1CN"]
    print(f"speedup relative to 1CN (s={args.s}, {args.workers} workers)")
    for notation in sorted(runtimes, key=runtimes.get):
        print(
            f"  {notation}: {baseline / runtimes[notation]:.2f}x  "
            f"({runtimes[notation]:.4f}s)"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    engine = QueryEngine(h, algorithm=args.algorithm)
    graph = engine.line_graph(args.s)
    print(
        f"L_{args.s}: {graph.num_edges} edges over {graph.num_active_vertices} "
        f"active hyperedges (index: {engine.index.num_pairs} weighted pairs, "
        f"max s = {engine.max_s()})"
    )
    ranked = sorted(
        engine.metric_by_hyperedge(args.s, args.metric).items(),
        key=lambda kv: (-kv[1], kv[0]),
    )[: args.top]
    print(f"top {len(ranked)} hyperedges by {args.metric} (s={args.s})")
    for edge_id, score in ranked:
        print(f"  {h.edge_name(edge_id)}\t{score:.6f}")
    return 0


def _metric_summary(name: str, values: np.ndarray):
    """One table cell per (s, metric): component count, or the max value."""
    if name in ("connected_components", "lpcc"):
        return int(values.max()) + 1 if values.size else 0
    return float(values.max()) if values.size else 0.0


def _cmd_sweep(args: argparse.Namespace) -> int:
    h = _load_hypergraph(args)
    engine = QueryEngine(h, algorithm=args.algorithm)
    metrics = [m for m in (args.metrics or "").split(",") if m]
    result = engine.sweep(range(args.s_min, args.s_max + 1), metrics=metrics)
    headers = ["s", "active", "edges"] + [
        "components" if m in ("connected_components", "lpcc") else f"max {m}"
        for m in metrics
    ]
    rows = []
    for s in result.s_values:
        row = [s, result.active_counts[s], result.edge_counts[s]]
        row.extend(_metric_summary(m, result.metrics[s][m]) for m in metrics)
        rows.append(row)
    print(
        f"sweep s={args.s_min}..{args.s_max} from one overlap index "
        f"({engine.index.num_pairs} pairs, {result.elapsed_seconds:.4f}s)"
    )
    print(format_table(headers, rows))
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.store import IndexStore

    h = _load_hypergraph(args)
    source = args.dataset or args.input or "hypergraph"
    start = time.perf_counter()
    store = IndexStore.build(
        h,
        args.path,
        algorithm=args.algorithm,
        num_shards=args.shards,
        provenance={"source": str(source)},
    )
    elapsed = time.perf_counter() - start
    m = store.manifest
    print(
        f"built snapshot at {store.path} in {elapsed:.4f}s: "
        f"{m.num_pairs} pairs over {m.num_hyperedges} hyperedges, "
        f"{len(m.shards)} shards, max s = {m.max_weight}"
    )
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    from repro.store import IndexStore

    info = IndexStore.open(args.path).info()
    width = max(len(k) for k in info)
    for key, value in info.items():
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_index_compact(args: argparse.Namespace) -> int:
    from repro.store import IndexStore

    store = IndexStore.open(args.path)
    folded = store.num_wal_records()
    start = time.perf_counter()
    manifest = store.compact(num_shards=args.shards)
    print(
        f"compacted {folded} WAL records into generation "
        f"{manifest.generation} ({manifest.num_pairs} pairs, "
        f"{len(manifest.shards)} shards) in {time.perf_counter() - start:.4f}s"
    )
    return 0


def _cmd_index_query(args: argparse.Namespace) -> int:
    from repro.store import PersistentQueryEngine

    start = time.perf_counter()
    engine = PersistentQueryEngine.open(args.path, sharded=args.sharded)
    opened = time.perf_counter() - start
    graph = engine.line_graph(args.s)
    print(
        f"L_{args.s}: {graph.num_edges} edges over {graph.num_active_vertices} "
        f"active hyperedges (store opened in {opened:.4f}s, "
        f"{'sharded/mmap' if args.sharded else 'materialised'}, "
        f"{engine.index.num_pairs} pairs, max s = {engine.max_s()})"
    )
    ranked = sorted(
        engine.metric_by_hyperedge(args.s, args.metric).items(),
        key=lambda kv: (-kv[1], kv[0]),
    )[: args.top]
    print(f"top {len(ranked)} hyperedges by {args.metric} (s={args.s})")
    h = engine.hypergraph
    for edge_id, score in ranked:
        print(f"  {h.edge_name(edge_id)}\t{score:.6f}")
    return 0


#: Request ops that only read — safe to fan out over worker threads.
_SERVE_QUERY_OPS = frozenset(
    {"metric", "components", "sweep", "stats", "metrics", "trace"}
)


def _run_jsonl_loop(stream, interactive, execute_one, execute_batch, batch_chunk=None):
    """The JSONL request-loop shared by ``serve`` and ``connect``.

    One request object per input line, one response object per output
    line, order preserved.  Runs of consecutive query requests are
    buffered and handed to ``execute_batch`` (optionally capped at
    ``batch_chunk`` per call); anything else — mutations, bad lines —
    drains the buffer first so sequential semantics hold.  In
    ``interactive`` mode every line is answered immediately.  A
    ``{"op": "stop"}`` line (or EOF) ends the loop; returns the number of
    requests served.
    """
    served = 0
    pending: list = []

    def emit(response) -> None:
        print(json.dumps(response), flush=True)

    def drain() -> None:
        nonlocal served
        while pending:
            chunk = list(pending if batch_chunk is None else pending[:batch_chunk])
            del pending[: len(chunk)]
            for response in execute_batch(chunk):
                emit(response)
            served += len(chunk)

    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            drain()
            emit({"ok": False, "error": f"bad JSON: {exc}"})
            continue
        if not isinstance(request, dict):
            drain()
            emit({"ok": False, "error": "request must be an object"})
            continue
        if request.get("op") == "stop":
            break
        if request.get("op") in _SERVE_QUERY_OPS:
            pending.append(request)
            if interactive or (batch_chunk is not None and len(pending) >= batch_chunk):
                drain()
            continue
        drain()
        emit(execute_one(request))
        served += 1
    drain()
    return served


def _parse_address(text: str) -> tuple:
    """Split ``HOST:PORT`` (the only address syntax the CLI accepts)."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise SystemExit(f"expected HOST:PORT, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"port in {text!r} is not an integer") from None


def _serve_socket(service, args: argparse.Namespace) -> int:
    """Front the service with a :class:`SocketServer` until SIGINT/SIGTERM."""
    import signal
    import threading

    from repro.service.transport import (
        PROTOCOL_VERSION,
        SUPPORTED_PROTOCOLS,
        SocketServer,
    )

    host, port = _parse_address(args.listen)
    stop = threading.Event()

    def handle_signal(signum, frame):
        stop.set()

    protocol_max = getattr(args, "protocol", None)
    server = SocketServer(
        service,
        host=host,
        port=port,
        max_connections=args.max_connections,
        protocol_max=protocol_max,
    ).start()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, handle_signal)
    offered = [
        v
        for v in SUPPORTED_PROTOCOLS
        if protocol_max is None or v <= int(protocol_max)
    ]
    print(
        json.dumps(
            {
                "ok": True,
                "op": "listening",
                "host": server.host,
                "port": server.port,
                "protocol": PROTOCOL_VERSION,
                "protocols": offered,
                "read_only": args.read_only,
                "generation": service.generation,
            }
        ),
        flush=True,
    )
    try:
        while not stop.wait(0.2):
            pass
    finally:
        server.close()
        service.close()
    print(
        json.dumps(
            {
                "ok": True,
                "op": "stopped",
                "served": server.stats.requests_served,
                "connections": server.stats.connections_accepted,
            }
        ),
        flush=True,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-running request server over one store.

    Default mode is a JSONL loop: one request object per input line, one
    response object per output line (see :meth:`QueryService.serve`).
    Runs of consecutive query requests are served as one batch across
    ``--workers`` threads; mutating requests (and anything else) act as
    batch boundaries so sequential semantics are preserved.  A
    ``{"op": "stop"}`` line (or EOF) ends the loop.

    With ``--listen HOST:PORT`` the same service is fronted by a socket
    server speaking the wire protocol of ``docs/PROTOCOL.md`` instead
    (JSON v1 plus the negotiated binary v2 data plane; ``--protocol 1``
    pins it to JSON-only during mixed-version rollouts); remote clients
    (``repro connect`` or :class:`ServiceClient`) drive it until
    SIGINT/SIGTERM.  Either way the writer process holds the store's
    single-writer lock; start any number of ``--read-only`` processes
    alongside it for concurrent serving.
    """
    from repro.service import CompactionPolicy, QueryService

    if args.read_only and (args.compact_after is not None or args.max_batch is not None):
        raise SystemExit(
            "--compact-after/--max-batch configure the writer; they have no "
            "effect with --read-only"
        )
    if args.listen and args.requests:
        raise SystemExit(
            "--requests drives the JSONL loop; with --listen, requests "
            "arrive from socket clients instead"
        )
    policy = None
    if args.compact_after is not None:
        policy = CompactionPolicy(max_wal_records=args.compact_after, max_wal_bytes=None)
    _apply_trace_flags(args)
    _apply_chaos_flag(args)
    service = QueryService(
        args.path,
        read_only=args.read_only,
        sharded=not args.materialize,
        num_workers=args.workers,
        max_batch=args.max_batch if args.max_batch is not None else 64,
        compaction=policy,
        slow_query_ms=args.slow_query_ms,
    )
    metrics_server = _start_metrics_server(args, readiness=service.readiness)
    try:
        if args.listen:
            return _serve_socket(service, args)
        stream = (  # noqa: SIM115 - sys.stdin branch forbids `with`; closed below
            open(args.requests, "r", encoding="utf-8") if args.requests else sys.stdin
        )
        try:
            print(
                json.dumps(
                    {"ok": True, "op": "ready", "read_only": args.read_only,
                     "generation": service.generation}
                ),
                flush=True,
            )
            served = _run_jsonl_loop(
                stream,
                interactive=args.requests is None,
                execute_one=service.execute,
                execute_batch=service.serve,
            )
        finally:
            service.close()
            if args.requests:
                stream.close()
        print(json.dumps({"ok": True, "op": "stopped", "served": served}), flush=True)
        return 0
    finally:
        if metrics_server is not None:
            metrics_server.close()


def _apply_trace_flags(args: argparse.Namespace) -> None:
    """Install the process tracer from ``--trace-sample-rate``/``--trace-slow-ms``.

    Must run before services are constructed — components bind the
    process tracer once at construction time.  With neither flag set the
    default (disabled) tracer stays in place and tracing costs nothing.
    """
    rate = getattr(args, "trace_sample_rate", None)
    slow_ms = getattr(args, "trace_slow_ms", None)
    if rate is None and slow_ms is None:
        return
    from repro.obs import Tracer, set_tracer

    set_tracer(Tracer(sample_rate=rate or 0.0, slow_ms=slow_ms))


def _apply_chaos_flag(args: argparse.Namespace) -> None:
    """Enable remote failpoint control (the ``chaos`` wire op) on request.

    ``--chaos`` sets ``REPRO_CHAOS=1`` in this process's environment so
    :func:`repro.chaos.failpoints.remote_control_enabled` answers true —
    and so any subprocess this server spawns inherits the setting.  Off
    by default: a production server must not be chaos-injectable over
    the wire by accident.
    """
    if getattr(args, "chaos", False):
        from repro.chaos.failpoints import CONTROL_ENV_VAR

        os.environ[CONTROL_ENV_VAR] = "1"


def _start_metrics_server(args: argparse.Namespace, readiness=None):
    """Start the HTTP ``/metrics`` + ``/healthz`` + ``/readyz`` listener
    when ``--metrics-port`` asks; ``readiness`` backs ``GET /readyz``."""
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from repro.obs import MetricsHTTPServer, register_process_metrics

    register_process_metrics()
    server = MetricsHTTPServer(port=port, readiness=readiness).start()
    print(
        json.dumps(
            {
                "ok": True,
                "op": "metrics-listening",
                "host": server.address[0],
                "port": server.address[1],
                "url": server.url,
            }
        ),
        flush=True,
    )
    return server


def _cmd_connect(args: argparse.Namespace) -> int:
    """Drive ad-hoc queries against a ``serve --listen`` server.

    With ``--s`` this is a one-shot remote metric query (mirroring
    ``index query``, served over the wire).  Without it, request objects
    are read as JSONL (stdin or ``--requests``) and proxied over the
    socket one response line per request — runs of consecutive query
    requests travel as a single ``batch`` frame, so a prepared request
    file costs one round trip per run instead of one per line.

    The connection negotiates the highest common protocol version
    (``--protocol 1`` pins JSON-only v1).  Proxied JSONL requests stay
    plain JSON in both directions regardless: the proxy never asks for
    ``columns``/``raw`` responses, whose numpy/bytes payloads have no
    JSONL rendering — replication payloads such as ``repl_fetch`` arrive
    base64-encoded exactly as on a v1 connection.  The negotiated version
    is visible in ``stats()["transport"]`` on the server side.
    """
    from repro.service.transport import (
        RemoteServiceError,
        ServiceClient,
        TransportError,
    )

    host, port = _parse_address(args.address)
    try:
        client = ServiceClient(
            host,
            port,
            timeout=args.timeout,
            connect_retries=args.connect_retries,
            protocol_max=args.protocol,
            compression=not args.no_compression,
        ).connect()
    except TransportError as exc:
        raise SystemExit(f"connect failed: {exc}") from None
    try:
        if args.s is not None:
            values = client.metric(args.s, args.metric)
            info = client.server_info
            print(
                f"{len(values)} hyperedges in E_{args.s} served by "
                f"{host}:{port} ({'replica' if info.get('read_only') else 'writer'}, "
                f"generation {client.generation()})"
            )
            ranked = sorted(values.items(), key=lambda kv: (-kv[1], kv[0]))[: args.top]
            print(f"top {len(ranked)} hyperedges by {args.metric} (s={args.s})")
            for edge_id, score in ranked:
                print(f"  {edge_id}\t{score:.6f}")
            return 0

        stream = (  # noqa: SIM115 - sys.stdin branch forbids `with`; closed below
            open(args.requests, "r", encoding="utf-8") if args.requests else sys.stdin
        )

        def execute_batch(chunk):
            """One batch frame per chunk; envelope failures (e.g. a batch
            response over the frame cap) fall back to per-request round
            trips, so one bad batch degrades instead of aborting the run —
            the same behavior a 1-request chunk already has."""
            if len(chunk) == 1:
                return [client.call(chunk[0])]
            try:
                return client.batch(chunk)
            except RemoteServiceError:
                return [client.call(request) for request in chunk]

        try:
            _run_jsonl_loop(
                stream,
                interactive=args.requests is None,
                execute_one=client.call,
                execute_batch=execute_batch,
                # Bounds frame size and memory on large request files.
                batch_chunk=256,
            )
        finally:
            if args.requests:
                stream.close()
        return 0
    except TransportError as exc:
        raise SystemExit(f"transport error: {exc}") from None
    finally:
        client.close()


def _cmd_trace(args: argparse.Namespace) -> int:
    """Fetch and render finished traces from a serving peer.

    One idempotent ``trace`` round trip; each trace renders as a span
    tree with per-span start offsets and durations (see
    :func:`repro.obs.render_trace`).  ``--trace-id`` narrows to one trace
    — e.g. an id copied from the slow-query log ``repro stats --address``
    prints.  Exit code 1 when the buffer holds no matching trace.
    """
    from repro.obs import render_trace
    from repro.service.transport import ServiceClient, TransportError

    host, port = _parse_address(args.address)
    try:
        client = ServiceClient(
            host, port, timeout=args.timeout, connect_retries=args.connect_retries
        ).connect()
    except TransportError as exc:
        raise SystemExit(f"connect failed: {exc}") from None
    try:
        traces = client.traces(trace_id=args.trace_id, limit=args.limit)
        if not traces:
            suffix = f" with id {args.trace_id}" if args.trace_id else ""
            print(
                f"no finished traces{suffix} on {host}:{port} "
                "(is tracing enabled? see serve --trace-sample-rate)"
            )
            return 1
        for index, trace in enumerate(traces):
            if index:
                print()
            print(render_trace(trace))
        return 0
    except TransportError as exc:
        raise SystemExit(f"transport error: {exc}") from None
    finally:
        client.close()


def _cmd_replicate(args: argparse.Namespace) -> int:
    """Mirror a remote store over the socket protocol (no shared filesystem).

    Connects to any serving peer (``serve --listen`` writer or replica),
    pulls the snapshot + WAL into ``--store`` (full fetch the first time,
    checksum-driven delta afterwards), and either exits after the sync
    (bootstrap/backup mode) or — with ``--serve HOST:PORT`` — serves the
    mirror as a hot-reloading remote-fed read replica: queries re-check
    the peer's change token within ``--poll-interval`` and pull deltas,
    and a background thread does the same while idle.  The mirror
    directory's writer lock is held for the duration, so a local writer
    (or second ``replicate``) cannot corrupt it.

    On a protocol v2 peer the delta syncs use the byte-offset WAL cursor
    and raw binary file chunks (``--protocol 1`` pins the JSON/base64 v1
    path; ``--no-compression`` keeps v2 framing but skips the codec).
    """
    import threading

    from repro.service import QueryService, StoreLock
    from repro.service.transport import ServiceClient, TransportError
    from repro.store import StoreMirror
    from repro.store.format import StoreError

    _apply_chaos_flag(args)
    host, port = _parse_address(args.source)
    try:
        client = ServiceClient(
            host,
            port,
            timeout=args.timeout,
            connect_retries=args.connect_retries,
            protocol_max=args.protocol,
            compression=not args.no_compression,
        ).connect()
    except TransportError as exc:
        raise SystemExit(f"connect failed: {exc}") from None
    try:
        mirror = StoreMirror(client, args.store)
        lock = StoreLock(args.store, owner="repro-replicate").acquire(blocking=False)
    except (StoreError, OSError) as exc:
        # OSError: --store points at a file / an unwritable directory.
        client.close()
        raise SystemExit(str(exc)) from None
    try:
        try:
            report = mirror.sync()
        except (TransportError, StoreError) as exc:
            raise SystemExit(f"sync failed: {exc}") from None
        print(
            json.dumps(
                {
                    "ok": True,
                    "op": "synced",
                    "store": mirror.path,
                    "generation": report.generation,
                    "full_sync": report.full_sync,
                    "fetched_files": report.fetched_files,
                    "reused_files": report.reused_files,
                    "fetched_bytes": report.fetched_bytes,
                    "wal_records": report.wal_records,
                }
            ),
            flush=True,
        )
        if not args.serve:
            return 0

        # Serving mode: hand the mirror over to a remote-fed service
        # (QueryService over a RemoteReadReplica) so every query's path
        # includes the peer staleness check — traced as a
        # ``replica.sync_check`` span under the server's request span.
        # The replica re-locks the directory as its writer and opens its
        # own client, so drop the bootstrap lock first; its startup sync
        # is a checksum-driven no-op against the mirror just written.
        lock.release()
        _apply_trace_flags(args)
        try:
            service = QueryService(
                args.store,
                read_only=True,
                remote_source=(host, port),
                num_workers=args.workers,
                replica_poll_interval=args.poll_interval,
                remote_protocol_max=args.protocol,
                remote_compression=not args.no_compression,
            )
        except (TransportError, StoreError, OSError) as exc:
            raise SystemExit(f"replica start failed: {exc}") from None
        stop = threading.Event()

        def follow() -> None:
            """Keep the mirror fresh while no queries arrive.

            Queries trigger their own staleness checks through the
            replica's poll interval; this thread covers quiet periods so
            the lag gauges and the ``/readyz`` probe track the peer even
            on an idle replica.  Peer outages leave the local mirror
            serving its last good state; a failed poll backs off so an
            outage costs one connect budget per backoff window, not a
            continuous retry storm against the dead address."""
            backoff = 0.0
            while not stop.wait(max(args.poll_interval, backoff, 0.05)):
                try:
                    service.replica.sync()
                    backoff = 0.0
                except (TransportError, StoreError, OSError):
                    backoff = max(1.0, args.poll_interval)

        syncer = threading.Thread(target=follow, name="repro-replicate-sync", daemon=True)
        syncer.start()
        args.listen = args.serve
        args.read_only = True
        metrics_server = _start_metrics_server(
            args,
            readiness=lambda: service.readiness(max_generation_lag=args.ready_max_lag),
        )
        try:
            return _serve_socket(service, args)
        finally:
            stop.set()
            syncer.join(timeout=10)
            if metrics_server is not None:
                metrics_server.close()
    finally:
        lock.release()
        client.close()


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos/fault-injection scenario suite.

    Each scenario launches real ``serve``/``replicate`` subprocesses,
    injects faults through the failpoint subsystem and scores the
    orthogonal correctness axes; with ``--results-dir`` the per-axis
    ``AXES_*.json`` artifacts (consumed by ``benchmarks/check_axes.py``)
    are written/merged there.  One JSON line per scenario on stdout, a
    summary line last; exit status 1 if any scenario failed.
    """
    from repro.chaos.scenarios import SCENARIOS, run_scenarios

    if args.list:
        for name in SCENARIOS:
            print(json.dumps({"op": "scenario", "name": name}))
        return 0
    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown}; known: {', '.join(SCENARIOS)}"
        )
    results = run_scenarios(names, quick=args.quick, results_dir=args.results_dir)
    failed = [r.name for r in results if not r.passed]
    print(
        json.dumps(
            {
                "ok": not failed,
                "op": "chaos",
                "scenarios": [r.name for r in results],
                "failed": failed,
            }
        ),
        flush=True,
    )
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="High-order (s-)line graphs of non-uniform hypergraphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the built-in surrogate datasets")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser(
        "stats",
        help="print Table IV-style hypergraph characteristics, or — with "
        "--address — a remote server's serving stats and metrics",
    )
    _add_input_arguments(p)
    p.add_argument(
        "--address",
        metavar="HOST:PORT",
        default=None,
        help="print a 'serve --listen' server's stats instead of dataset "
        "characteristics",
    )
    p.add_argument(
        "--raw",
        action="store_true",
        help="with --address: print the raw Prometheus text exposition "
        "instead of the summary table",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="per-operation socket timeout"
    )
    p.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        help="connection attempts before giving up (busy/refused servers)",
    )
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("slinegraph", help="compute an s-line graph edge list")
    _add_input_arguments(p)
    p.add_argument("--s", type=int, required=True, help="overlap threshold")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="hashmap")
    p.add_argument("--output", help="write the edge list to this file instead of stdout")
    p.set_defaults(func=_cmd_slinegraph)

    p = sub.add_parser("components", help="report s-connected components")
    _add_input_arguments(p)
    p.add_argument("--s", type=int, required=True)
    p.add_argument("--min-size", type=int, default=2, help="smallest component to report")
    p.add_argument("--limit", type=int, default=20, help="print at most this many components")
    p.set_defaults(func=_cmd_components)

    p = sub.add_parser("centrality", help="report top hyperedges by an s-centrality measure")
    _add_input_arguments(p)
    p.add_argument("--s", type=int, required=True)
    p.add_argument("--measure", choices=sorted(CENTRALITY_FUNCTIONS), default="betweenness")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_centrality)

    p = sub.add_parser("variants", help="run the Table III algorithm variants")
    _add_input_arguments(p)
    p.add_argument("--s", type=int, default=8)
    p.add_argument("--workers", type=int, default=4)
    p.set_defaults(func=_cmd_variants)

    p = sub.add_parser("query", help="serve one s/metric query from the overlap-index engine")
    _add_input_arguments(p)
    p.add_argument("--s", type=int, required=True, help="overlap threshold")
    p.add_argument(
        "--metric", choices=sorted(METRIC_FUNCTIONS), default="connected_components"
    )
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="hashmap")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("sweep", help="batched multi-s sweep from one overlap-index build")
    _add_input_arguments(p)
    p.add_argument("--s-min", type=int, default=1)
    p.add_argument("--s-max", type=int, required=True)
    p.add_argument(
        "--metrics",
        default="connected_components",
        help="comma-separated Stage-5 metrics (empty string for none)",
    )
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="hashmap")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("index", help="manage persistent overlap-index stores")
    isub = p.add_subparsers(dest="index_command", required=True)

    ip = isub.add_parser("build", help="build and persist a sharded index snapshot")
    _add_input_arguments(ip)
    ip.add_argument("--path", required=True, help="store directory to create")
    ip.add_argument("--shards", type=int, default=4, help="number of row-block shards")
    ip.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="hashmap")
    ip.set_defaults(func=_cmd_index_build)

    ip = isub.add_parser("info", help="print a store's manifest and WAL state")
    ip.add_argument("--path", required=True, help="store directory")
    ip.set_defaults(func=_cmd_index_info)

    ip = isub.add_parser("compact", help="fold the WAL into a fresh snapshot")
    ip.add_argument("--path", required=True, help="store directory")
    ip.add_argument("--shards", type=int, default=None, help="reshard during compaction")
    ip.set_defaults(func=_cmd_index_compact)

    ip = isub.add_parser("query", help="warm-serve one s/metric query from a store")
    ip.add_argument("--path", required=True, help="store directory")
    ip.add_argument("--s", type=int, required=True, help="overlap threshold")
    ip.add_argument(
        "--metric", choices=sorted(METRIC_FUNCTIONS), default="connected_components"
    )
    ip.add_argument("--top", type=int, default=10)
    ip.add_argument(
        "--sharded",
        action="store_true",
        help="stream from mmap'd shards instead of materialising the index",
    )
    ip.set_defaults(func=_cmd_index_query)

    p = sub.add_parser(
        "serve",
        help="long-running query/update server over a store — JSONL on "
        "stdin, or TCP with --listen (single writer + any number of "
        "--read-only replicas)",
    )
    p.add_argument("--path", required=True, help="store directory")
    p.add_argument(
        "--read-only",
        action="store_true",
        help="serve as a hot-reloading read replica (no writer lock taken)",
    )
    p.add_argument(
        "--requests", help="JSONL request file (default: read stdin)"
    )
    p.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="serve the length-prefixed JSON protocol on this TCP address "
        "(port 0 picks an ephemeral port, printed on the 'listening' line)",
    )
    p.add_argument(
        "--max-connections",
        type=int,
        default=32,
        help="with --listen: concurrent connections before new ones get "
        "a 'busy' error (backpressure)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="thread fan-out for runs of consecutive query requests",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="admission-queue group-commit size (writer mode; default 64)",
    )
    p.add_argument(
        "--compact-after",
        type=int,
        default=None,
        help="background-compact once the WAL holds this many records",
    )
    p.add_argument(
        "--materialize",
        action="store_true",
        help="serve from a materialised index instead of mmap'd shards",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve Prometheus text on http://127.0.0.1:N/metrics "
        "(0 picks an ephemeral port, printed on the 'metrics-listening' line)",
    )
    p.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="record queries slower than this many ms in the stats "
        "payload's slow-query log",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="allow remote failpoint control via the 'chaos' wire op "
        "(testing only; equivalent to REPRO_CHAOS=1)",
    )
    p.add_argument(
        "--protocol",
        type=int,
        default=None,
        metavar="N",
        help="with --listen: highest protocol version to negotiate "
        "(1 pins the JSON-only v1 data plane; default: all supported — "
        "see docs/PROTOCOL.md)",
    )
    _add_trace_arguments(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "connect",
        help="drive ad-hoc queries against a 'serve --listen' server",
    )
    p.add_argument(
        "--address", required=True, metavar="HOST:PORT", help="server address"
    )
    p.add_argument(
        "--s", type=int, default=None, help="one-shot query: overlap threshold"
    )
    p.add_argument(
        "--metric", choices=sorted(METRIC_FUNCTIONS), default="connected_components"
    )
    p.add_argument("--top", type=int, default=10)
    p.add_argument(
        "--requests",
        help="JSONL request file to proxy over the socket (default: stdin)",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="per-operation socket timeout"
    )
    p.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        help="connection attempts before giving up (busy/refused servers)",
    )
    p.add_argument(
        "--protocol",
        type=int,
        default=None,
        metavar="N",
        help="highest protocol version to offer (1 pins the JSON-only v1 "
        "data plane; default: all supported)",
    )
    p.add_argument(
        "--no-compression",
        action="store_true",
        help="do not offer payload compression during the handshake",
    )
    p.set_defaults(func=_cmd_connect)

    p = sub.add_parser(
        "replicate",
        help="mirror a remote store over the socket protocol — bootstrap a "
        "local copy, or keep serving it as a read replica with --serve",
    )
    p.add_argument(
        "--from",
        dest="source",
        required=True,
        metavar="HOST:PORT",
        help="serving peer to replicate from (writer or replica server)",
    )
    p.add_argument(
        "--store",
        required=True,
        help="local mirror directory (created if missing; locked while syncing)",
    )
    p.add_argument(
        "--serve",
        metavar="HOST:PORT",
        default=None,
        help="after the first sync, serve the mirror on this address and "
        "keep pulling deltas (port 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between change-token polls of the peer (with --serve)",
    )
    p.add_argument(
        "--max-connections",
        type=int,
        default=32,
        help="with --serve: concurrent connections before 'busy' backpressure",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="with --serve: thread fan-out for batched query requests",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="per-operation socket timeout"
    )
    p.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        help="connection attempts before giving up (busy/refused peers)",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="with --serve: expose Prometheus text (incl. replica lag), "
        "/healthz and /readyz on http://127.0.0.1:N",
    )
    p.add_argument(
        "--ready-max-lag",
        type=int,
        default=1,
        metavar="N",
        help="with --serve and --metrics-port: /readyz reports 503 once "
        "the replica runs more than N generations behind the peer",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="allow remote failpoint control via the 'chaos' wire op "
        "(testing only; equivalent to REPRO_CHAOS=1)",
    )
    p.add_argument(
        "--protocol",
        type=int,
        default=None,
        metavar="N",
        help="highest protocol version to offer the peer — applies to the "
        "bootstrap sync, the serving follower, and (with --serve) the "
        "local listener (1 pins JSON-only v1)",
    )
    p.add_argument(
        "--no-compression",
        action="store_true",
        help="do not offer payload compression for replication transfers",
    )
    _add_trace_arguments(p)
    p.set_defaults(func=_cmd_replicate)

    p = sub.add_parser(
        "chaos",
        help="run the chaos/fault-injection scenario suite against live "
        "serve/replicate subprocesses and score the correctness axes",
    )
    p.add_argument(
        "--scenario",
        default="all",
        metavar="NAME",
        help="scenario to run (see --list), or 'all' (default)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and fewer cycles (the CI tier-2 setting)",
    )
    p.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="write/merge per-axis AXES_*.json artifacts here "
        "(gated by benchmarks/check_axes.py)",
    )
    p.add_argument(
        "--list", action="store_true", help="list scenario names and exit"
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "trace",
        help="fetch and render request traces from a 'serve --listen' "
        "server (enable with serve/replicate --trace-sample-rate)",
    )
    p.add_argument(
        "--address", required=True, metavar="HOST:PORT", help="server address"
    )
    p.add_argument(
        "--trace-id",
        default=None,
        help="render only this trace (e.g. from the stats slow-query log)",
    )
    p.add_argument(
        "--limit", type=int, default=5, help="newest traces to fetch (default 5)"
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="per-operation socket timeout"
    )
    p.add_argument(
        "--connect-retries",
        type=int,
        default=40,
        help="connection attempts before giving up (busy/refused servers)",
    )
    p.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
