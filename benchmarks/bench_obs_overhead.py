"""Observability overhead: the metrics layer must be ~free on the hot path.

Every tier binds its instruments at construction time against the
per-process default registry (:mod:`repro.obs`), so the *same* serving
code runs in two configurations:

* **baseline** — constructed under a :class:`NullRegistry`, whose shared
  no-op children make every ``inc``/``observe`` a constant-time pass;
* **instrumented** — constructed under a real :class:`MetricsRegistry`,
  paying the per-child lock + float add on every counter bump and the
  bisect + bucket increment on every histogram observation.

Each round first pushes a durable ``submit_add`` batch through the
admission queue (WAL counters, wait/batch-size histograms, queue-depth
gauge) *untimed* — fsync latency is orders of magnitude noisier than any
counter bump, so timing it would only measure the disk — then times the
CPU-bound query path the adds just invalidated: engine recomputes, LRU
counters, per-query accounting.  The two services run their rounds
interleaved on identical store copies to cancel machine drift, and the
headline is min-of-rounds.  The ratio ``t_baseline / t_instrumented``
must stay **>= 0.95** — instrumentation may cost at most ~5%.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.benchmarks import quick_mode
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.obs import MetricsRegistry, NullRegistry, use_registry
from repro.service import QueryService
from repro.store import IndexStore
from repro.utils.rng import make_rng

BENCH_QUICK = quick_mode()
#: Rounds are ~ms each, so quick mode keeps all of them: the median needs
#: enough paired samples to shrug off a scheduler-noise round on CI.
ROUNDS = 9
QUERIES = 120 if BENCH_QUICK else 240
ADDS = 16 if BENCH_QUICK else 48
#: Instrumented may be at most ~5% slower than the NullRegistry baseline.
MIN_SPEEDUP = 0.95

NUM_VERTICES = 60
NUM_EDGES = 50
QUERY_METRICS = ("connected_components", "lpcc", "pagerank")


def _build_store(path):
    rng = make_rng(7)
    edges = [
        sorted(set(rng.choice(NUM_VERTICES, size=2 + i % 5, replace=False).tolist()))
        for i in range(NUM_EDGES)
    ]
    h = hypergraph_from_edge_lists(edges, num_vertices=NUM_VERTICES)
    IndexStore.build(h, path, num_shards=4)
    return path


def _mutate(svc, round_index):
    """Durable adds: exercises WAL/admission instruments, invalidates caches."""
    base = round_index * ADDS
    for i in range(ADDS):
        members = sorted({(base + i) % NUM_VERTICES, (base + i + 7) % NUM_VERTICES})
        svc.submit_add(members if len(members) > 1 else [0, 1])
    svc.flush()


def _timed_queries(svc):
    """Serve QUERIES requests through the dispatch entry point.

    The mix mirrors serving reality: the round's mutations invalidated
    the cache, so each distinct ``(s, metric)`` pair recomputes once and
    the rest are LRU hits — overhead is measured against real work, not
    against a bare cache-lookup loop.
    """
    requests = [
        {
            "op": "metric",
            "s": 1 + i % 4,
            "metric": QUERY_METRICS[i % len(QUERY_METRICS)],
        }
        for i in range(QUERIES)
    ]
    gc_was_enabled = gc.isenabled()
    gc.disable()  # a collection pause mid-region would swamp the signal
    try:
        start = time.perf_counter()
        for request in requests:
            svc.execute(request)
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def test_metrics_overhead_is_bounded(tmp_path, report):
    """Full instrumentation costs < ~5% on the serving hot path."""
    with use_registry(NullRegistry()):
        svc_null = QueryService(str(_build_store(tmp_path / "null")))
    with use_registry(MetricsRegistry()):
        svc_obs = QueryService(str(_build_store(tmp_path / "obs")))
    try:
        rounds = []
        for round_index in range(ROUNDS + 1):
            _mutate(svc_null, round_index)
            _mutate(svc_obs, round_index)
            # Alternate which service is timed first: whoever runs second
            # inherits warm caches/branch predictors from the shared code.
            first, second = (
                (svc_null, svc_obs) if round_index % 2 == 0 else (svc_obs, svc_null)
            )
            times = {first: _timed_queries(first), second: _timed_queries(second)}
            if round_index == 0:
                continue  # warmup: first queries pay one-time setup
            rounds.append((times[svc_null], times[svc_obs]))
    finally:
        svc_null.close()
        svc_obs.close()

    # Paired per-round ratios, medianed: one round hit by scheduler/disk
    # noise cannot drag the headline the way a min-vs-min comparison can.
    speedup = statistics.median(t_null / t_obs for t_null, t_obs in rounds)
    baseline = statistics.median(t for t, _ in rounds)
    instrumented = statistics.median(t for _, t in rounds)
    overhead_pct = (1.0 / speedup - 1.0) * 100.0
    report(
        f"Observability overhead ({QUERIES} queries/round over a freshly "
        f"mutated store, best of {ROUNDS} interleaved rounds)\n"
        f"NullRegistry baseline: {QUERIES / baseline:10.0f} queries/s\n"
        f"fully instrumented:    {QUERIES / instrumented:10.0f} queries/s\n"
        f"overhead: {overhead_pct:+.1f}%  (ratio {speedup:.3f}x, "
        f"floor {MIN_SPEEDUP:.2f}x)",
        name="obs_overhead",
        data={
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "overhead_pct": overhead_pct,
            "baseline_seconds": baseline,
            "instrumented_seconds": instrumented,
        },
    )
    assert speedup >= MIN_SPEEDUP
