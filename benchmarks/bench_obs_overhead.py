"""Observability overhead: the metrics layer must be ~free on the hot path.

Every tier binds its instruments at construction time against the
per-process default registry (:mod:`repro.obs`), so the *same* serving
code runs in two configurations:

* **baseline** — constructed under a :class:`NullRegistry`, whose shared
  no-op children make every ``inc``/``observe`` a constant-time pass;
* **instrumented** — constructed under a real :class:`MetricsRegistry`,
  paying the per-child lock + float add on every counter bump and the
  bisect + bucket increment on every histogram observation.

Each round first pushes a durable ``submit_add`` batch through the
admission queue (WAL counters, wait/batch-size histograms, queue-depth
gauge) *untimed* — fsync latency is orders of magnitude noisier than any
counter bump, so timing it would only measure the disk — then times the
CPU-bound query path the adds just invalidated: engine recomputes, LRU
counters, per-query accounting.  The two services run their rounds
interleaved on identical store copies to cancel machine drift, and the
headline is min-of-rounds.  The ratio ``t_baseline / t_instrumented``
must stay **>= 0.95** — instrumentation may cost at most ~5%.

Tracing is its own axis (``test_tracing_overhead_is_bounded``): the same
serving loop runs with the tracer disabled (the production default —
this configuration must stay inside the metrics floor above, which the
first test already enforces since the default tracer is disabled) and
with every request traced at rate 1.0 (worst case: a span tree allocated
and ringed per request) plus rate 0.01 (a realistic production sample),
each request wrapped in the same ``start_request`` root the socket
server opens.  The rate-1.0 ratio gates at **>= 0.80**.

The instrumented path also carries the chaos failpoint predicate now:
``QueryService.execute`` calls ``fire("service.execute")`` on every
request, which with no point armed is one module-global boolean read.
That disabled-failpoint cost rides inside the same 0.95 metrics floor —
no separate gate, and the floor is unchanged — so a regression that
makes "failpoints compiled in but idle" expensive fails CI here.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.benchmarks import quick_mode
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.obs import MetricsRegistry, NullRegistry, Tracer, use_registry, use_tracer
from repro.service import QueryService
from repro.store import IndexStore
from repro.utils.rng import make_rng

BENCH_QUICK = quick_mode()
#: Rounds are ~ms each, so quick mode keeps all of them: the median needs
#: enough paired samples to shrug off a scheduler-noise round on CI.
ROUNDS = 9
QUERIES = 120 if BENCH_QUICK else 240
ADDS = 16 if BENCH_QUICK else 48
#: Instrumented may be at most ~5% slower than the NullRegistry baseline.
MIN_SPEEDUP = 0.95
#: Tracing every request may cost at most ~25% on the same hot path
#: (spans are allocated per tier per request at rate 1.0 — the worst
#: case no deployment runs; rate 0.01 is reported alongside).
MIN_TRACE_SPEEDUP = 0.80

NUM_VERTICES = 60
NUM_EDGES = 50
QUERY_METRICS = ("connected_components", "lpcc", "pagerank")


def _build_store(path):
    rng = make_rng(7)
    edges = [
        sorted(set(rng.choice(NUM_VERTICES, size=2 + i % 5, replace=False).tolist()))
        for i in range(NUM_EDGES)
    ]
    h = hypergraph_from_edge_lists(edges, num_vertices=NUM_VERTICES)
    IndexStore.build(h, path, num_shards=4)
    return path


def _mutate(svc, round_index):
    """Durable adds: exercises WAL/admission instruments, invalidates caches."""
    base = round_index * ADDS
    for i in range(ADDS):
        members = sorted({(base + i) % NUM_VERTICES, (base + i + 7) % NUM_VERTICES})
        svc.submit_add(members if len(members) > 1 else [0, 1])
    svc.flush()


def _timed_queries(svc, tracer=None):
    """Serve QUERIES requests through the dispatch entry point.

    The mix mirrors serving reality: the round's mutations invalidated
    the cache, so each distinct ``(s, metric)`` pair recomputes once and
    the rest are LRU hits — overhead is measured against real work, not
    against a bare cache-lookup loop.  With ``tracer``, each request runs
    under the ``server.<op>`` root span the socket server would open —
    without a root, tracing never engages on the query path.
    """
    requests = [
        {
            "op": "metric",
            "s": 1 + i % 4,
            "metric": QUERY_METRICS[i % len(QUERY_METRICS)],
        }
        for i in range(QUERIES)
    ]
    gc_was_enabled = gc.isenabled()
    gc.disable()  # a collection pause mid-region would swamp the signal
    try:
        start = time.perf_counter()
        if tracer is None:
            for request in requests:
                svc.execute(request)
        else:
            for request in requests:
                with tracer.start_request("server.metric", attributes={"op": "metric"}):
                    svc.execute(request)
        return time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()


def test_metrics_overhead_is_bounded(tmp_path, report):
    """Full instrumentation costs < ~5% on the serving hot path."""
    with use_registry(NullRegistry()):
        svc_null = QueryService(str(_build_store(tmp_path / "null")))
    with use_registry(MetricsRegistry()):
        svc_obs = QueryService(str(_build_store(tmp_path / "obs")))
    try:
        rounds = []
        for round_index in range(ROUNDS + 1):
            _mutate(svc_null, round_index)
            _mutate(svc_obs, round_index)
            # Alternate which service is timed first: whoever runs second
            # inherits warm caches/branch predictors from the shared code.
            first, second = (
                (svc_null, svc_obs) if round_index % 2 == 0 else (svc_obs, svc_null)
            )
            times = {first: _timed_queries(first), second: _timed_queries(second)}
            if round_index == 0:
                continue  # warmup: first queries pay one-time setup
            rounds.append((times[svc_null], times[svc_obs]))
    finally:
        svc_null.close()
        svc_obs.close()

    # Paired per-round ratios, medianed: one round hit by scheduler/disk
    # noise cannot drag the headline the way a min-vs-min comparison can.
    speedup = statistics.median(t_null / t_obs for t_null, t_obs in rounds)
    baseline = statistics.median(t for t, _ in rounds)
    instrumented = statistics.median(t for _, t in rounds)
    overhead_pct = (1.0 / speedup - 1.0) * 100.0
    report(
        f"Observability overhead ({QUERIES} queries/round over a freshly "
        f"mutated store, best of {ROUNDS} interleaved rounds)\n"
        f"NullRegistry baseline: {QUERIES / baseline:10.0f} queries/s\n"
        f"fully instrumented:    {QUERIES / instrumented:10.0f} queries/s\n"
        f"overhead: {overhead_pct:+.1f}%  (ratio {speedup:.3f}x, "
        f"floor {MIN_SPEEDUP:.2f}x)",
        name="obs_overhead",
        data={
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "overhead_pct": overhead_pct,
            "baseline_seconds": baseline,
            "instrumented_seconds": instrumented,
        },
    )
    assert speedup >= MIN_SPEEDUP


def test_tracing_overhead_is_bounded(tmp_path, report):
    """Tracing every request costs < ~25%; a 1% sample rides along free.

    Three identical services, full metrics instrumentation on all of
    them, differing only in tracer: disabled (the untraced production
    default), ``sample_rate=1.0`` (every request allocates and rings a
    span tree — the worst case) and ``sample_rate=0.01`` (realistic).
    The timed loop opens the same root span the socket server does, so
    the disabled configuration pays exactly the per-request predicate
    the tentpole promises is ~free.
    """
    configs = {
        "off": Tracer(),  # disabled: sample_rate 0, no slow threshold
        "sampled": Tracer(sample_rate=0.01),
        "full": Tracer(sample_rate=1.0),
    }
    services = {}
    for name, tracer in configs.items():
        with use_registry(MetricsRegistry()), use_tracer(tracer):
            services[name] = QueryService(str(_build_store(tmp_path / name)))
    try:
        rounds = []
        order = list(configs)
        for round_index in range(ROUNDS + 1):
            for name in order:
                _mutate(services[name], round_index)
            # Rotate the timing order so no configuration always runs
            # last with warm caches/branch predictors.
            rotated = order[round_index % 3:] + order[: round_index % 3]
            times = {
                name: _timed_queries(services[name], tracer=configs[name])
                for name in rotated
            }
            if round_index == 0:
                continue  # warmup: first queries pay one-time setup
            rounds.append(times)
    finally:
        for svc in services.values():
            svc.close()

    full_ratio = statistics.median(r["off"] / r["full"] for r in rounds)
    sampled_ratio = statistics.median(r["off"] / r["sampled"] for r in rounds)
    baseline = statistics.median(r["off"] for r in rounds)
    traced = statistics.median(r["full"] for r in rounds)
    overhead_pct = (1.0 / full_ratio - 1.0) * 100.0
    report(
        f"Tracing overhead ({QUERIES} traced queries/round, best of "
        f"{ROUNDS} rotated rounds)\n"
        f"tracer disabled:      {QUERIES / baseline:10.0f} queries/s\n"
        f"sampled at 1.0:       {QUERIES / traced:10.0f} queries/s "
        f"({overhead_pct:+.1f}%, ratio {full_ratio:.3f}x, "
        f"floor {MIN_TRACE_SPEEDUP:.2f}x)\n"
        f"sampled at 0.01:      ratio {sampled_ratio:.3f}x (informational)",
        name="trace_overhead",
        data={
            "speedup": full_ratio,
            "floor": MIN_TRACE_SPEEDUP,
            "overhead_pct": overhead_pct,
            "sampled_001_speedup": sampled_ratio,
            "baseline_seconds": baseline,
            "traced_seconds": traced,
        },
    )
    assert full_ratio >= MIN_TRACE_SPEEDUP
