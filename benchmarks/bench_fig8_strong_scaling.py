"""Figure 8 — strong scaling of Algorithm 2 (1..32 threads, s = 8).

The paper doubles the thread count at fixed input size for LiveJournal,
com-Orkut, activeDNS and Web and observes improvement up to 16 threads, with
cyclic distribution (2CA) scaling best on skew-degree inputs.

A faithful wall-clock reproduction of thread scaling is impossible in pure
Python (the GIL serialises the dict-based kernels — the repro band for this
paper explicitly flags this), so this benchmark reports two complementary
views, as documented in EXPERIMENTS.md:

* a *work model*: the maximum per-worker wedge count, which is what an
  ideally-scheduled execution's critical path is proportional to — this is
  substrate-independent and must shrink as workers double;
* measured wall-clock with the ``thread`` backend for the NumPy-vectorised
  kernel (which releases the GIL inside the gather/unique calls) and with
  the ``process`` backend for the dict kernel.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.vectorized import s_line_graph_vectorized
from repro.parallel.executor import ParallelConfig

S_VALUE = 8
WORKER_COUNTS = [1, 2, 4, 8]
DATASET_NAMES = ["livejournal", "com-orkut"]


def critical_path_wedges(h, workers, strategy="cyclic"):
    """Max per-worker wedge visits — the work-model critical path."""
    result = s_line_graph_hashmap(
        h, S_VALUE, config=ParallelConfig(num_workers=workers, strategy=strategy)
    )
    return int(result.workload.visits_per_worker().max())


def test_fig8_strong_scaling_work_model(datasets, benchmark, report):
    def collect():
        out = {}
        for name in DATASET_NAMES:
            h = datasets(name)
            out[name] = {p: critical_path_wedges(h, p) for p in WORKER_COUNTS}
        return out

    model = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ["workers"] + [f"{name} max wedges/worker" for name in DATASET_NAMES]
    rows = [
        [p] + [model[name][p] for name in DATASET_NAMES] for p in WORKER_COUNTS
    ]
    report(
        "Figure 8 reproduction (work model): critical-path wedge count vs workers\n"
        + format_table(headers, rows),
        name="fig8_strong_scaling_work_model",
    )

    for name in DATASET_NAMES:
        series = [model[name][p] for p in WORKER_COUNTS]
        # The critical path shrinks monotonically as workers double ...
        assert all(b <= a for a, b in zip(series, series[1:])), name
        # ... and achieves at least half of ideal scaling at 8 workers.
        assert series[0] / series[-1] >= WORKER_COUNTS[-1] / 2, name


def test_fig8_strong_scaling_wallclock(datasets, benchmark, report):
    h = datasets("livejournal")

    def sweep():
        rows = []
        for workers in WORKER_COUNTS:
            config = ParallelConfig(num_workers=workers, strategy="cyclic", backend="thread")
            start = time.perf_counter()
            s_line_graph_vectorized(h, S_VALUE, config=config)
            rows.append((workers, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Figure 8 reproduction (wall-clock, vectorised kernel, thread backend)\n"
        + format_table(["workers", "seconds"], [[p, round(t, 4)] for p, t in rows]),
        name="fig8_strong_scaling_wallclock",
    )
    # This measurement is informational (EXPERIMENTS.md documents that CPython
    # cannot reproduce the paper's thread scaling); the only assertion is that
    # adding threads does not blow the runtime up by an order of magnitude on
    # a sub-100ms kernel, i.e. the thread backend is not pathological.
    assert rows[-1][1] < 10.0 * max(rows[0][1], 1e-3)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_hashmap_by_worker_count(datasets, benchmark, workers):
    """Per-worker-count wall clock of the hashmap kernel (serial partition sweep)."""
    h = datasets("livejournal")
    config = ParallelConfig(num_workers=workers, strategy="cyclic", backend="thread")
    benchmark.pedantic(
        lambda: s_line_graph_hashmap(h, S_VALUE, config=config), rounds=2, iterations=1
    )
