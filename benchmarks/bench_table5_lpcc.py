"""Table V — label-propagation connected components: clique expansion (s=1) vs. s=8.

The paper's Table V reports end-to-end LPCC times with Algorithm 2 (2CA) for
s = 1 and s = 8 on four large datasets; with s = 1 two of them (com-Orkut,
Web) run out of memory on a 128 GB machine, while s = 8 completes everywhere
and is several times faster.  We reproduce the structure with a memory model:
the estimated footprint of the s = 1 line graph is compared against a
scaled-down budget, and datasets that exceed it are reported as OOM exactly
like the paper's table.
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.core.pipeline import SLinePipeline
from repro.utils.timing import Timer

DATASET_NAMES = ["friendster", "livejournal", "com-orkut", "web"]
#: Bytes per s-line-graph edge in the squeezed CSR representation
#: (two int64 endpoints stored twice + weight).
BYTES_PER_EDGE = 40


def memory_budget_bytes(scale: float) -> int:
    """Scaled-down stand-in for the paper's 128 GB node.

    The surrogates shrink roughly linearly in |E| with ``scale`` while their
    clique expansions shrink roughly quadratically, so a quadratic budget
    keeps the qualitative outcome (dense s = 1 expansions exceed the budget,
    every s = 8 line graph fits) stable across bench scales.
    """
    return int(8_000_000 * scale * scale)


def run_lpcc(h, s):
    pipeline = SLinePipeline(
        algorithm="vectorized", relabel="ascending", metrics=("lpcc",),
        config=None,
    )
    timer = Timer().start()
    result = pipeline.run(h, s)
    elapsed = timer.stop()
    footprint = result.num_line_graph_edges * BYTES_PER_EDGE
    return elapsed, footprint, result


def test_table5_lpcc_s1_vs_s8(datasets, bench_scale, benchmark, report):
    budget = memory_budget_bytes(bench_scale)

    def collect():
        rows = {}
        for name in DATASET_NAMES:
            h = datasets(name)
            rows[name] = {s: run_lpcc(h, s) for s in (1, 8)}
        return rows

    outcomes = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ["s", *DATASET_NAMES]
    rows = []
    oom = {}
    for s in (1, 8):
        row = [f"s={s}"]
        for name in DATASET_NAMES:
            elapsed, footprint, _ = outcomes[name][s]
            if footprint > budget:
                row.append("OOM")
                oom[(name, s)] = True
            else:
                row.append(f"{elapsed:.2f}s")
                oom[(name, s)] = False
        rows.append(row)
    table = format_table(headers, rows)
    report(
        "Table V reproduction (LPCC end-to-end; OOM = exceeds the scaled memory budget)\n"
        + table,
        name="table5_lpcc",
    )

    # Shape checks: s = 8 always fits and is cheaper than (or comparable to) s = 1;
    # the densest clique expansions blow the budget, as in the paper.
    for name in DATASET_NAMES:
        assert not oom[(name, 8)], name
        _, footprint1, _ = outcomes[name][1]
        _, footprint8, _ = outcomes[name][8]
        assert footprint8 < footprint1, name
    assert any(oom[(name, 1)] for name in DATASET_NAMES)


def test_bench_lpcc_s8_livejournal(datasets, benchmark):
    h = datasets("livejournal")
    benchmark.pedantic(lambda: run_lpcc(h, 8), rounds=2, iterations=1)
