"""Table II — PageRank ranking of diseases in s-clique graphs (s = 1, 10, 100).

The paper links diseases sharing associated genes (clique expansion and
higher-order s-clique graphs of the disGeNet hypergraph) and shows the top-5
diseases by PageRank keep nearly identical ordinal ranks and score
percentiles across the three graphs, even though the s = 100 graph has ~231×
fewer edges than the clique expansion (2.7M → 12K edges).
"""

from __future__ import annotations

import pytest

from repro.apps.diseases import rank_diseases
from repro.benchmarks.reporting import format_table
from repro.generators.datasets import TOP_DISEASES, disgenet_surrogate

S_VALUES = (1, 10, 100)
TOP_K = 5


@pytest.fixture(scope="module")
def disgenet(bench_seed):
    return disgenet_surrogate(seed=bench_seed)


def test_table2_disease_ranking(disgenet, benchmark, report):
    result = benchmark.pedantic(
        lambda: rank_diseases(disgenet, s_values=S_VALUES, top_k=TOP_K),
        rounds=1, iterations=1,
    )
    headers = ["Disease"] + [f"s={s} rank (pct)" for s in S_VALUES]
    rows = []
    reference = [name for name, _, _ in result.top_ranked[1]]
    for name in reference:
        row = [name]
        for s in S_VALUES:
            rank = result.full_rankings[s].get(name)
            pct = next((p for n, _, p in result.top_ranked[s] if n == name), None)
            if rank is None:
                row.append("absent")
            elif pct is not None:
                row.append(f"{rank} ({pct:.1f}%)")
            else:
                row.append(str(rank))
        rows.append(row)
    rows.append(["(graph edges)"] + [str(result.edge_counts[s]) for s in S_VALUES])
    table = format_table(headers, rows)
    report("Table II reproduction\n" + table, name="table2_diseases")

    # Shape checks: same top diseases, drastically smaller graphs.
    assert set(reference) == set(TOP_DISEASES)
    assert result.overlap_of_top_k(1, 10, TOP_K) >= 0.8
    assert result.overlap_of_top_k(1, 100, TOP_K) >= 0.8
    assert result.edge_counts[1] > result.edge_counts[10] > result.edge_counts[100] > 0
    assert result.edge_counts[1] / result.edge_counts[100] > 50


def test_bench_sclique_pagerank_s100(disgenet, benchmark):
    """Cost of ranking on the sparse s = 100 clique graph alone."""
    benchmark(lambda: rank_diseases(disgenet, s_values=(100,), top_k=TOP_K))
