"""Figure 6 / Section V-B — normalized algebraic connectivity of condMat s-line graphs.

The paper computes an ensemble of s-line graphs (s = 1..16) of the condMat
author–paper hypergraph and plots the normalized algebraic connectivity:
the values decrease through s = 12 (sparse collaboration) and rise sharply
at s = 13 (authors with 13+ joint papers form dense collectives).

The multi-s sweep is served by the overlap-index engine
(:class:`repro.engine.QueryEngine`): the weighted overlap structure is
computed once and every s-line graph is a threshold view of it, instead of
one full recomputation per s.
"""

from __future__ import annotations

import time

import pytest

from repro.apps.authors import coauthorship_connectivity
from repro.benchmarks.reporting import format_series
from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine
from repro.generators.datasets import condmat_surrogate

S_RANGE = range(1, 17)


@pytest.fixture(scope="module")
def condmat(bench_seed):
    return condmat_surrogate(seed=bench_seed)


def test_fig6_normalized_algebraic_connectivity(condmat, benchmark, report):
    engine = QueryEngine(condmat)
    result = benchmark.pedantic(
        lambda: coauthorship_connectivity(engine=engine, s_values=S_RANGE),
        rounds=1, iterations=1,
    )
    series = {s: round(result.connectivity[s], 4) for s in result.s_values}
    report(
        "Figure 6 reproduction: normalized algebraic connectivity vs s\n"
        + format_series(series, x_label="s", y_label="norm. algebraic connectivity"),
        name="fig6_connectivity",
    )

    # Decreasing through the mid-range, sharp rise at s = 13, non-trivial to s = 16.
    for s in range(5, 13):
        assert result.connectivity[s] <= result.connectivity[s - 1] + 1e-9
    assert result.rises_at() == 13
    assert result.connectivity[13] > 5 * result.connectivity[12]
    assert result.max_nontrivial_s() == 16


def test_fig6_engine_speedup_per_s(condmat, report):
    """Per-s cost of the engine sweep vs. one pipeline run per s."""
    pipeline = SLinePipeline(metrics=())
    baseline = {}
    for s in S_RANGE:
        start = time.perf_counter()
        pipeline.run(condmat, s)
        baseline[s] = time.perf_counter() - start

    engine = QueryEngine(condmat)
    engine_times = {}
    for s in S_RANGE:
        start = time.perf_counter()
        engine.line_graph(s)
        engine_times[s] = time.perf_counter() - start
    build_seconds = sum(engine_times.values())

    series = {s: round(baseline[s] / max(engine_times[s], 1e-9), 1) for s in S_RANGE}
    total_speedup = sum(baseline.values()) / max(build_seconds, 1e-9)
    report(
        "Figure 6 sweep, per-s speedup of the engine over the per-s pipeline\n"
        + format_series(series, x_label="s", y_label="speedup (x)")
        + f"\ntotal: {sum(baseline.values()):.4f}s vs {build_seconds:.4f}s "
        + f"({total_speedup:.1f}x; engine column includes the one-off index build at s=1)",
        name="fig6_engine_speedup",
    )
    # Every s after the index build amortises to a threshold view.
    for s in range(2, 17):
        assert engine_times[s] < baseline[s]
    assert total_speedup > 1.0


def test_bench_connectivity_ensemble(condmat, benchmark):
    benchmark.pedantic(
        lambda: coauthorship_connectivity(condmat, s_values=range(1, 17)),
        rounds=2, iterations=1,
    )
