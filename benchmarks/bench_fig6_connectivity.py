"""Figure 6 / Section V-B — normalized algebraic connectivity of condMat s-line graphs.

The paper computes an ensemble of s-line graphs (s = 1..16) of the condMat
author–paper hypergraph and plots the normalized algebraic connectivity:
the values decrease through s = 12 (sparse collaboration) and rise sharply
at s = 13 (authors with 13+ joint papers form dense collectives).
"""

from __future__ import annotations

import pytest

from repro.apps.authors import coauthorship_connectivity
from repro.benchmarks.reporting import format_series
from repro.generators.datasets import condmat_surrogate

S_RANGE = range(1, 17)


@pytest.fixture(scope="module")
def condmat(bench_seed):
    return condmat_surrogate(seed=bench_seed)


def test_fig6_normalized_algebraic_connectivity(condmat, benchmark, report):
    result = benchmark.pedantic(
        lambda: coauthorship_connectivity(condmat, s_values=S_RANGE),
        rounds=1, iterations=1,
    )
    series = {s: round(result.connectivity[s], 4) for s in result.s_values}
    report(
        "Figure 6 reproduction: normalized algebraic connectivity vs s\n"
        + format_series(series, x_label="s", y_label="norm. algebraic connectivity"),
        name="fig6_connectivity",
    )

    # Decreasing through the mid-range, sharp rise at s = 13, non-trivial to s = 16.
    for s in range(5, 13):
        assert result.connectivity[s] <= result.connectivity[s - 1] + 1e-9
    assert result.rises_at() == 13
    assert result.connectivity[13] > 5 * result.connectivity[12]
    assert result.max_nontrivial_s() == 16


def test_bench_connectivity_ensemble(condmat, benchmark):
    benchmark.pedantic(
        lambda: coauthorship_connectivity(condmat, s_values=range(1, 17)),
        rounds=2, iterations=1,
    )
