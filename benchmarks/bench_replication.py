"""Snapshot replication — delta sync vs full re-fetch over the socket.

The replication subsystem's contract: a mirror that is *almost* current
should pay for what changed, not for the whole store.  After a
small-WAL compaction every shard file is *renamed* (generation prefix)
but few change *content* — the delta sync must satisfy the unchanged
ones from the local previous generation (checksum match, hard link)
and only pull the changed shards plus the manifest over the wire.

This benchmark serves a store over a real :class:`SocketServer` (the
fetch path pays JSON + base64 + TCP exactly as production does), applies
a remove-only update + compaction, and times

* **delta** — an existing mirror syncing the new generation;
* **full** — a fresh mirror bootstrapping the same generation from zero.

The delta path must be at least 5x faster end to end (3x in quick mode),
and both mirrors must be byte-identical to the source.

A second headline gates the protocol v2 **byte-offset WAL cursor**
(``docs/PROTOCOL.md``): between compactions a mirror polls the writer's
growing log.  The legacy ``repl_wal`` op replays the *whole* log
server-side on every poll (and re-frames every shipped record
mirror-side); the cursor op reads only the validated raw suffix after
``(generation, byte offset)`` and the mirror appends it verbatim.  With
a busy WAL the cursor poll must be **>= 3x** faster (the
``replication_cursor`` headline, gated by ``check_perf_floors.py``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.benchmarks import quick_mode
from repro.service import QueryService, ServiceClient, SocketServer
from repro.store import StoreMirror
from repro.store.store import IndexStore
from repro.utils.rng import make_rng

NUM_SHARDS = 48

BENCH_QUICK = quick_mode()
BENCH_SCALE = 2.0 if BENCH_QUICK else 4.0
MIN_SPEEDUP = 3.0 if BENCH_QUICK else 5.0
ROUNDS = 2 if BENCH_QUICK else 3

#: Cursor-poll headline: size of the standing WAL the legacy path replays
#: on every poll, appends per poll, and number of timed polls.
CURSOR_WAL_RECORDS = 800 if BENCH_QUICK else 1500
CURSOR_APPENDS_PER_POLL = 5
CURSOR_POLLS = 4 if BENCH_QUICK else 6
MIN_CURSOR_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def bench_hypergraph(datasets):
    return datasets("email-euall", scale=BENCH_SCALE)


def _store_files(path):
    skip = {"replication.json", "writer.lock"}
    out = {}
    for root, _, files in os.walk(str(path)):
        for name in files:
            if name in skip or name.endswith((".sync", ".staged")):
                continue
            full = os.path.join(root, name)
            rel = os.path.relpath(full, str(path)).replace(os.sep, "/")
            with open(full, "rb") as handle:
                out[rel] = handle.read()
    return out


def test_delta_sync_speedup_over_full_refetch(bench_hypergraph, tmp_path, report):
    """Delta sync after a small-WAL compaction must be >= 5x faster than a
    full re-fetch of the same generation (3x in quick mode)."""
    store_path = str(tmp_path / "src")
    IndexStore.build(bench_hypergraph, store_path, num_shards=NUM_SHARDS)

    delta_seconds = float("inf")
    full_seconds = float("inf")
    delta_report = None
    full_report = None
    with QueryService(store_path, max_batch=16) as writer:
        with SocketServer(writer, port=0) as server:
            with ServiceClient(server.host, server.port) as client:
                mirror = StoreMirror(client, str(tmp_path / "mirror"))
                mirror.sync()  # warm bootstrap (not timed)

                for round_id in range(ROUNDS):
                    # A small WAL (remove-only keeps the row partition
                    # stable), folded into a fresh generation.
                    writer.submit_remove(round_id).result()
                    writer.compact()
                    # Warm the source's per-generation checksum cache
                    # (computed once per generation, shared by the whole
                    # mirror fleet) so neither timed path pays it.
                    client.repl_manifest()

                    start = time.perf_counter()
                    delta_report = mirror.sync()
                    delta_seconds = min(delta_seconds, time.perf_counter() - start)

                    fresh_path = str(tmp_path / f"full-{round_id}")
                    fresh = StoreMirror(client, fresh_path)
                    start = time.perf_counter()
                    full_report = fresh.sync()
                    full_seconds = min(full_seconds, time.perf_counter() - start)

                    source_files = _store_files(store_path)
                    assert _store_files(mirror.path) == source_files
                    assert _store_files(fresh_path) == source_files

    # The delta genuinely reused local content instead of re-fetching.
    assert delta_report.reused_files > 0
    assert delta_report.fetched_bytes < full_report.fetched_bytes

    speedup = full_seconds / delta_seconds
    report(
        f"Snapshot replication (email-euall surrogate x{BENCH_SCALE}, "
        f"{NUM_SHARDS} shards, remove-only WAL + compaction, loopback TCP)\n"
        f"full re-fetch:  {full_seconds:.4f}s "
        f"({full_report.fetched_files} files, {full_report.fetched_bytes} bytes)\n"
        f"delta sync:     {delta_seconds:.4f}s "
        f"({delta_report.fetched_files} fetched, {delta_report.reused_files} reused, "
        f"{delta_report.fetched_bytes} bytes)\n"
        f"speedup:        {speedup:.1f}x (floor {MIN_SPEEDUP:.1f}x)",
        name="replication",
        data={
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "full_seconds": full_seconds,
            "delta_seconds": delta_seconds,
            "delta_fetched_bytes": delta_report.fetched_bytes,
            "full_fetched_bytes": full_report.fetched_bytes,
        },
    )
    assert speedup >= MIN_SPEEDUP


def test_cursor_poll_speedup_over_log_replay(datasets, tmp_path, report):
    """Byte-offset cursor polls of a busy WAL must be >= 3x faster than
    the legacy full-log replay path serving the same deltas."""
    hypergraph = datasets("email-euall", scale=0.5)
    store_path = str(tmp_path / "src")
    IndexStore.build(hypergraph, store_path, num_shards=4)

    rng = make_rng(11)
    num_vertices = hypergraph.num_vertices

    cursor_seconds = 0.0
    legacy_seconds = 0.0
    with QueryService(store_path, max_batch=64) as writer:

        def grow(count):
            futures = [
                writer.submit_add(
                    sorted(set(int(v) for v in rng.choice(num_vertices, size=4)))
                )
                for _ in range(count)
            ]
            for future in futures:
                future.result()

        grow(CURSOR_WAL_RECORDS)  # the standing log every legacy poll replays
        with SocketServer(writer, port=0) as server:
            address = (server.host, server.port)
            with ServiceClient(*address) as v2_client, ServiceClient(
                *address, protocol_max=1
            ) as v1_client:
                assert v2_client.protocol == 2
                assert v1_client.protocol == 1
                cursor_mirror = StoreMirror(v2_client, str(tmp_path / "cursor"))
                legacy_mirror = StoreMirror(v1_client, str(tmp_path / "legacy"))
                cursor_mirror.sync()  # bootstrap (not timed)
                legacy_mirror.sync()

                for _ in range(CURSOR_POLLS):
                    grow(CURSOR_APPENDS_PER_POLL)
                    start = time.perf_counter()
                    cursor_mirror.sync()
                    cursor_seconds += time.perf_counter() - start
                    start = time.perf_counter()
                    legacy_mirror.sync()
                    legacy_seconds += time.perf_counter() - start

                source_files = _store_files(store_path)
                assert _store_files(cursor_mirror.path) == source_files
                assert _store_files(legacy_mirror.path) == source_files

    total_records = CURSOR_WAL_RECORDS + CURSOR_POLLS * CURSOR_APPENDS_PER_POLL
    speedup = legacy_seconds / cursor_seconds
    report(
        f"WAL tail polls ({total_records}-record log, "
        f"{CURSOR_APPENDS_PER_POLL} appends per poll, {CURSOR_POLLS} polls, "
        f"loopback TCP)\n"
        f"legacy full-log replay: {legacy_seconds:.4f}s\n"
        f"byte-offset cursor:     {cursor_seconds:.4f}s\n"
        f"speedup:                {speedup:.1f}x (floor {MIN_CURSOR_SPEEDUP:.1f}x)",
        name="replication_cursor",
        data={
            "speedup": speedup,
            "floor": MIN_CURSOR_SPEEDUP,
            "legacy_seconds": legacy_seconds,
            "cursor_seconds": cursor_seconds,
            "wal_records": total_records,
        },
    )
    assert speedup >= MIN_CURSOR_SPEEDUP
