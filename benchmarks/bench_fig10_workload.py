"""Figure 10 — wedge visits per worker for the Algorithm 2 variants (LiveJournal).

The paper instruments the innermost loop of Algorithm 2 and plots the number
of hyperedges visited by each of 32 threads under blocked/cyclic × no/
ascending/descending-relabel partitioning, observing that (a) without
relabelling, cyclic distribution balances the skewed input better than
blocked, and (b) relabel-by-degree plus the upper-triangular traversal skews
the blocked distribution heavily.  The visit counts are substrate-independent
(pure counting), so this reproduction is exact in structure.
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.registry import run_variant

S_VALUE = 8
NUM_WORKERS = 32
VARIANTS = ["2BN", "2CN", "2BA", "2CA", "2BD", "2CD"]


def test_fig10_workload_distribution(datasets, benchmark, report):
    h = datasets("livejournal")

    def collect():
        out = {}
        for notation in VARIANTS:
            result = run_variant(h, S_VALUE, notation, num_workers=NUM_WORKERS)
            out[notation] = result.workload
        return out

    workloads = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for notation in VARIANTS:
        visits = workloads[notation].visits_per_worker()
        rows.append(
            [
                notation,
                int(visits.sum()),
                int(visits.max()),
                round(workloads[notation].imbalance(), 2),
            ]
        )
    table = format_table(
        ["variant", "total wedge visits", "max per worker", "imbalance (max/mean)"], rows
    )
    per_worker = format_table(
        ["variant"] + [f"w{i}" for i in range(NUM_WORKERS)],
        [[n] + workloads[n].visits_per_worker().tolist() for n in VARIANTS],
    )
    report(
        "Figure 10 reproduction: per-worker wedge visits (LiveJournal surrogate)\n"
        + table + "\n\n" + per_worker,
        name="fig10_workload",
    )

    # Total work is identical across partitionings of the same relabelling.
    assert workloads["2BN"].total_wedges() == workloads["2CN"].total_wedges()
    assert workloads["2BA"].total_wedges() == workloads["2CA"].total_wedges()
    # Without relabelling, cyclic is at least as balanced as blocked (paper claim).
    assert workloads["2CN"].imbalance() <= workloads["2BN"].imbalance() * 1.10
    # Cyclic stays well balanced even after relabel-by-degree.
    assert workloads["2CA"].imbalance() <= workloads["2BA"].imbalance()
    assert workloads["2CD"].imbalance() <= workloads["2BD"].imbalance()


def test_bench_workload_collection(datasets, benchmark):
    h = datasets("livejournal")
    benchmark.pedantic(
        lambda: run_variant(h, S_VALUE, "2CA", num_workers=NUM_WORKERS),
        rounds=2, iterations=1,
    )
