#!/usr/bin/env python
"""CI gate: fail when a headline performance ratio drops below its floor.

Reads the machine-readable ``benchmarks/results/BENCH_*.json`` artefacts
written by the ``report`` fixture (each at least ``{"name", "speedup",
"floor"}``) and exits non-zero if a *required* headline ratio is below its
floor or its artefact is missing — so a perf-smoke run that silently
skipped a benchmark fails just like a regressed one.  Non-required
artefacts (e.g. the loopback transport bench, which is noisy on loaded CI
runners) are printed with their floor status but never fail the gate.

Usage:  python benchmarks/check_perf_floors.py [--require name ...]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper-headline ratios the perf-smoke job must always gate on:
#: engine sweep vs per-s pipeline, warm store open vs cold rebuild, WAL
#: group commit vs per-record fsync, replication delta sync vs full
#: re-fetch, and the observability layer's cost on the serving hot path
#: — split into two axes with separate floors: metrics instrumentation
#: vs NullRegistry (within ~5% — floor 0.95x; the default disabled
#: tracer rides inside this one) and request tracing at sample rate 1.0
#: vs tracer disabled (within ~25% — floor 0.80x; the worst case, since
#: every request allocates and rings a span tree).
#: (The replication ratio is loopback but byte-dominated — the delta
#: moves a small fraction of the store — so it is stable enough to gate
#: on, unlike the latency-dominated transport *batch* bench.)
#: PR 9 adds the protocol v2 data-plane headlines (docs/PROTOCOL.md):
#: binary numpy columns vs the JSON plane on bulk metric/sweep responses
#: (``transport_binary``, floor 2x) and byte-offset WAL cursor polls vs
#: legacy full-log replay (``replication_cursor``, floor 3x) — both
#: byte/CPU-dominated ratios, stable enough to gate on.
DEFAULT_REQUIRED = (
    "engine_sweep",
    "store_reuse",
    "service_group_commit",
    "replication",
    "replication_cursor",
    "obs_overhead",
    "trace_overhead",
    "transport_binary",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--require",
        nargs="*",
        default=list(DEFAULT_REQUIRED),
        help="headline names that must be present (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    required = set(args.require)
    failures = []
    seen = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        name = data.get("name", path.stem)
        speedup = data.get("speedup")
        floor = data.get("floor")
        if speedup is None or floor is None:
            continue  # informational artefact without a gated ratio
        seen[name] = (float(speedup), float(floor))
        below = speedup < floor
        if name in required:
            status = "ok" if not below else "BELOW FLOOR"
        else:
            status = "ok (info)" if not below else "below floor (info only)"
        print(f"{name:30s} {speedup:8.2f}x  (floor {floor:.2f}x)  {status}")
        if below and name in required:
            failures.append(f"{name}: {speedup:.2f}x < floor {floor:.2f}x")

    for name in sorted(required):
        if name not in seen:
            failures.append(f"{name}: required headline artefact missing")

    if failures:
        print("\nperf floors violated:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(required)} required headline ratios at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
