"""Table I — per-stage cost of the s-line-graph framework (Algorithm 1 vs. ours).

The paper's Table I breaks the LiveJournal run (s = 8) into preprocessing,
s-overlap, squeeze and s-connected-components and reports a 26× end-to-end
speedup of the hashmap method over the prior heuristic algorithm, with zero
set intersections versus 8.66×10⁹.  This benchmark reproduces the same
breakdown on the LiveJournal surrogate; absolute times differ (Python vs.
C++), but the s-overlap stage must dominate, the hashmap method must win
end-to-end, and it must perform zero set intersections.
"""

from __future__ import annotations

import pytest

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.core.pipeline import SLinePipeline

S_VALUE = 8


@pytest.fixture(scope="module")
def livejournal(datasets):
    return datasets("livejournal")


def run_pipeline(h, algorithm):
    pipeline = SLinePipeline(
        algorithm=algorithm,
        relabel="ascending",
        metrics=("connected_components",),
    )
    return pipeline.run(h, S_VALUE)


def test_table1_stage_breakdown(livejournal, benchmark, report):
    """Regenerate the Table I rows (per-stage seconds + set-intersection counts)."""

    def run_both():
        return {
            "Algorithm in [29] (heuristic)": run_pipeline(livejournal, "heuristic"),
            "our method (hashmap)": run_pipeline(livejournal, "hashmap"),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    stages = ["preprocessing", "s_overlap", "squeeze", "connected_components"]
    rows = []
    for stage in stages:
        rows.append([stage] + [results[name].stage_times.get(stage) for name in results])
    rows.append(["total time"] + [results[name].stage_times.total for name in results])
    heuristic_total = results["Algorithm in [29] (heuristic)"].stage_times.total
    ours_total = results["our method (hashmap)"].stage_times.total
    rows.append(["speedup", 1.0, heuristic_total / ours_total])
    rows.append(
        ["#set intersections"]
        + [float(results[name].workload.total_set_intersections()) for name in results]
    )
    table = format_table(
        ["stage (LiveJournal surrogate, s=8)", "Algorithm in [29]", "our method"],
        rows,
    )
    report("Table I reproduction\n" + table, name="table1_pipeline")

    ours = results["our method (hashmap)"]
    theirs = results["Algorithm in [29] (heuristic)"]
    # Shape checks mirroring the paper's observations.
    assert ours.workload.total_set_intersections() == 0
    assert theirs.workload.total_set_intersections() > 0
    assert ours.stage_times.total < theirs.stage_times.total
    assert theirs.stage_times.get("s_overlap") >= 0.5 * theirs.stage_times.total
    assert ours.line_graph.edge_set() == theirs.line_graph.edge_set()


def test_bench_soverlap_heuristic(livejournal, benchmark):
    """Wall-clock of the dominant stage for Algorithm 1 (prior state of the art)."""
    benchmark(lambda: s_line_graph_heuristic(livejournal, S_VALUE))


def test_bench_soverlap_hashmap(livejournal, benchmark):
    """Wall-clock of the dominant stage for Algorithm 2 (the paper's contribution)."""
    benchmark(lambda: s_line_graph_hashmap(livejournal, S_VALUE))


def test_bench_full_pipeline_hashmap(livejournal, benchmark):
    """End-to-end framework cost with the hashmap algorithm."""
    benchmark.pedantic(lambda: run_pipeline(livejournal, "hashmap"), rounds=2, iterations=1)
