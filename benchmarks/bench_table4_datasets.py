"""Table IV — input characteristics of the (surrogate) datasets.

The paper's Table IV lists |V|, |E|, average degrees and maximum degrees of
the eight evaluation hypergraphs and notes that all of them have skewed
hyperedge degree distributions.  This benchmark regenerates the table for
the laptop-scale surrogates and asserts the skew property.
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.generators.datasets import DATASET_SPECS, available_datasets
from repro.hypergraph.properties import compute_stats


def test_table4_dataset_characteristics(datasets, benchmark, report):
    def collect():
        rows = {}
        for name in available_datasets():
            rows[name] = compute_stats(datasets(name))
        return rows

    stats = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ["type", "hypergraph", "|V|", "|E|", "d_v", "d_e", "Δ_v", "Δ_e"]
    rows = []
    for name in available_datasets():
        s = stats[name]
        spec = DATASET_SPECS[name]
        rows.append(
            [
                spec.category,
                name,
                s.num_vertices,
                s.num_edges,
                round(s.avg_vertex_degree, 1),
                round(s.avg_edge_size, 1),
                s.max_vertex_degree,
                s.max_edge_size,
            ]
        )
    table = format_table(headers, rows)
    report("Table IV reproduction (laptop-scale surrogates)\n" + table, name="table4_datasets")

    # Every surrogate keeps the skewed hyperedge size distribution the paper notes.
    for name, s in stats.items():
        assert s.max_edge_size >= 3 * s.avg_edge_size, name
        assert s.degree_skewness > 0.5, name


def test_bench_dataset_generation(datasets, benchmark):
    """Cost of generating the largest surrogate (activeDNS)."""
    from repro.generators.datasets import load_dataset

    benchmark.pedantic(
        lambda: load_dataset("activedns", scale=0.2, seed=1), rounds=2, iterations=1
    )
