"""Figure 9 — weak scaling of Algorithm 2 on the activeDNS dataset.

The paper doubles the activeDNS input (from 4 to 128 AVRO files) while
doubling the thread count and reports runtimes for s = 2, 4, 8, observing
that larger s values keep the runtime flatter (degree pruning removes more
work).  We reproduce the sweep with the activeDNS surrogate scaled
proportionally to the worker count and report both the work model (wedges on
the critical path) and wall clock.
"""

from __future__ import annotations

import time

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.generators.datasets import load_dataset
from repro.parallel.executor import ParallelConfig

S_VALUES = (2, 4, 8)
STEPS = [(1, 0.1), (2, 0.2), (4, 0.4), (8, 0.8)]  # (workers, dataset scale)


def test_fig9_weak_scaling(bench_seed, benchmark, report):
    def sweep():
        rows = []
        for workers, scale in STEPS:
            h = load_dataset("activedns", scale=scale, seed=bench_seed)
            per_s = {}
            for s in S_VALUES:
                config = ParallelConfig(num_workers=workers, strategy="blocked")
                start = time.perf_counter()
                result = s_line_graph_hashmap(h, s, config=config)
                elapsed = time.perf_counter() - start
                per_s[s] = (elapsed, int(result.workload.visits_per_worker().max()))
            rows.append((workers, scale, h.num_edges, per_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["workers", "scale", "|E|"] + [
        f"s={s} (sec / max wedges per worker)" for s in S_VALUES
    ]
    table_rows = []
    for workers, scale, num_edges, per_s in rows:
        table_rows.append(
            [workers, scale, num_edges]
            + [f"{per_s[s][0]:.3f}s / {per_s[s][1]}" for s in S_VALUES]
        )
    report(
        "Figure 9 reproduction: weak scaling on activeDNS surrogate\n"
        + format_table(headers, table_rows),
        name="fig9_weak_scaling",
    )

    # Larger s prunes more work at every step (the paper's observation that
    # performance improves with larger s values).
    for _, _, _, per_s in rows:
        work = [per_s[s][1] for s in S_VALUES]
        assert work == sorted(work, reverse=True)
    # Weak-scaling work model: the per-worker critical path grows far slower
    # than the total input (ideal would be flat; allow 4x drift over an 8x
    # input growth).
    first = rows[0][3][8][1]
    last = rows[-1][3][8][1]
    assert last <= 6 * max(first, 1)


def test_bench_activedns_s8(datasets, benchmark):
    h = datasets("activedns")
    benchmark.pedantic(lambda: s_line_graph_hashmap(h, 8), rounds=2, iterations=1)
