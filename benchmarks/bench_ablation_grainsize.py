"""Ablation — grain-size (chunk-size) control of the outer hyperedge loop.

Section III-F of the paper: oneTBB's grain size controls how many hyperedges
each scheduling quantum hands to a thread; the authors observe that chunk
sizes up to 256 perform similarly and larger chunks start to hurt because a
few heavy chunks straggle.  We reproduce the sweep with the deterministic
scheduling model of :mod:`repro.parallel.scheduler`, using the per-hyperedge
wedge counts of the LiveJournal surrogate as the cost model, plus a
wall-clock spot check of the executor's ``grainsize`` parameter.
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.parallel.executor import ParallelConfig
from repro.parallel.scheduler import grainsize_sweep, wedge_costs

S_VALUE = 8
NUM_WORKERS = 8
GRAINSIZES = [1, 16, 64, 256, 1024, 4096]
#: Fixed per-chunk scheduling overhead, in "wedge" units, for the model.
CHUNK_OVERHEAD = 20.0


def test_ablation_grainsize_schedule_model(datasets, benchmark, report):
    h = datasets("livejournal")
    costs = wedge_costs(h, s=S_VALUE)

    def sweep():
        return grainsize_sweep(
            costs, NUM_WORKERS, GRAINSIZES, per_chunk_overhead=CHUNK_OVERHEAD
        )

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            g,
            results[g].num_chunks,
            round(results[g].makespan, 1),
            round(results[g].imbalance(), 3),
            round(results[g].efficiency(), 3),
        ]
        for g in GRAINSIZES
    ]
    report(
        "Grain-size ablation (scheduling model, LiveJournal surrogate, 8 workers)\n"
        + format_table(["grainsize", "chunks", "makespan", "imbalance", "efficiency"], rows),
        name="ablation_grainsize",
    )

    # Grain sizes that still give every worker several chunks behave similarly
    # (the paper's "chunk size up to 256 achieves similar performance" — 256
    # is tiny relative to the real datasets' millions of hyperedges; on the
    # surrogate the equivalent condition is >= 2 chunks per worker) ...
    fine = [
        results[g].makespan
        for g in GRAINSIZES
        if results[g].num_chunks >= 4 * NUM_WORKERS
    ]
    assert len(fine) >= 2
    assert max(fine) <= 1.3 * min(fine)
    # ... while grains so large that workers idle (fewer chunks than workers)
    # straggle badly, which is the paper's "larger chunk sizes hurt" regime.
    assert results[GRAINSIZES[-1]].makespan > 1.5 * min(fine)
    assert results[GRAINSIZES[-1]].efficiency() < 0.5


def test_bench_executor_grainsize_wallclock(datasets, benchmark):
    """Spot-check that the executor accepts grain-size control without overhead blowup."""
    h = datasets("livejournal")
    config = ParallelConfig(num_workers=4, strategy="blocked", grainsize=64)
    benchmark.pedantic(
        lambda: s_line_graph_hashmap(h, S_VALUE, config=config), rounds=2, iterations=1
    )
