"""Engine sweep vs. per-s pipeline — the compute-once/serve-any-s payoff.

Every s-line graph is a threshold view of one weighted overlap structure
(Section II-B), so a multi-s study should pay the counting cost once.  This
benchmark runs an s = 1..8 sweep on a generated Table IV surrogate twice:

* baseline — eight independent :class:`~repro.core.SLinePipeline` runs,
  each repeating preprocessing, s-overlap counting, squeezing and metrics;
* engine — one :class:`~repro.engine.QueryEngine.sweep` call, which builds
  the overlap index once and serves each s as a binary-search slice.

The engine must be at least 3x faster end to end (it is typically much
more); a second sweep over the same range must then be served entirely from
the LRU cache.  Both paths are cross-checked edge-for-edge first.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks import quick_mode
from repro.benchmarks.reporting import format_table
from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine

S_RANGE = range(1, 9)
METRICS = ("connected_components",)

#: Quick mode (REPRO_BENCH_QUICK=1, the CI perf-smoke job): smaller
#: surrogate and a laxer floor — fixed overheads weigh more at small scale.
BENCH_QUICK = quick_mode()
BENCH_SCALE = 0.6 if BENCH_QUICK else 1.2
MIN_SPEEDUP = 2.5 if BENCH_QUICK else 3.0
ROUNDS = 2 if BENCH_QUICK else 3


@pytest.fixture(scope="module")
def bench_hypergraph(datasets):
    # Above bench scale so the per-s wedge walks dominate fixed overheads.
    return datasets("email-euall", scale=BENCH_SCALE)


def _run_pipeline_baseline(h):
    pipeline = SLinePipeline(metrics=METRICS)
    return {s: pipeline.run(h, s) for s in S_RANGE}


def test_engine_sweep_matches_pipeline(bench_hypergraph):
    """The sweep serves exactly what the per-s pipeline computes."""
    engine = QueryEngine(bench_hypergraph)
    sweep = engine.sweep(S_RANGE, metrics=METRICS)
    baseline = _run_pipeline_baseline(bench_hypergraph)
    for s in S_RANGE:
        assert sweep.line_graphs[s] == baseline[s].line_graph
        assert sweep.num_components(s) == baseline[s].num_components()


def test_engine_sweep_speedup(bench_hypergraph, report):
    """One index build + 8 threshold views >= 3x faster than 8 pipeline runs.

    Both paths are timed best-of-three (each engine rep builds a fresh
    index) so a stray GC pause or cold cache cannot decide the comparison.
    """
    rounds = ROUNDS
    baseline_seconds = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        baseline = _run_pipeline_baseline(bench_hypergraph)
        baseline_seconds = min(baseline_seconds, time.perf_counter() - start)

    engine_seconds = float("inf")
    for _ in range(rounds):
        engine = QueryEngine(bench_hypergraph)
        start = time.perf_counter()
        sweep = engine.sweep(S_RANGE, metrics=METRICS)
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    start = time.perf_counter()
    engine.sweep(S_RANGE, metrics=METRICS)
    cached_seconds = time.perf_counter() - start

    speedup = baseline_seconds / engine_seconds
    rows = [
        [s, sweep.edge_counts[s], sweep.num_components(s)] for s in sweep.s_values
    ]
    report(
        f"Engine sweep (s = 1..8, email-euall surrogate x{BENCH_SCALE})\n"
        + format_table(["s", "edges", "components"], rows)
        + f"\nper-s pipeline: {baseline_seconds:.4f}s   "
        + f"engine sweep: {engine_seconds:.4f}s ({speedup:.1f}x)   "
        + f"cached re-sweep: {cached_seconds:.4f}s",
        name="engine_sweep",
        data={
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "baseline_seconds": baseline_seconds,
            "engine_seconds": engine_seconds,
            "cached_seconds": cached_seconds,
        },
    )

    for s in S_RANGE:
        assert sweep.edge_counts[s] == baseline[s].num_line_graph_edges
    assert speedup >= MIN_SPEEDUP
    assert cached_seconds < engine_seconds
    assert engine.stats().index_builds == 1


def test_bench_engine_sweep(bench_hypergraph, benchmark):
    """Timed variant for the pytest-benchmark harness (fresh engine per round)."""
    benchmark.pedantic(
        lambda: QueryEngine(bench_hypergraph).sweep(S_RANGE, metrics=METRICS),
        rounds=2,
        iterations=1,
    )


def test_bench_engine_cached_queries(bench_hypergraph, benchmark):
    """Steady-state query traffic: every request is an LRU cache hit."""
    engine = QueryEngine(bench_hypergraph)
    engine.sweep(S_RANGE, metrics=METRICS)  # warm
    misses_after_warm = engine.stats().cache_misses

    def serve():
        for s in S_RANGE:
            engine.line_graph(s)
            engine.metric(s, "connected_components")

    benchmark.pedantic(serve, rounds=5, iterations=1)
    assert engine.stats().cache_misses == misses_after_warm
