"""Ablation — dynamic versus pre-allocated overlap counters (thread-local storage).

Section III-F of the paper: the per-hyperedge overlap hashmap can either be
allocated dynamically inside every outer-loop iteration (best for most
datasets) or pre-allocated per thread and reset between iterations (best for
dense-overlap inputs such as Web, where allocation/deallocation of large
maps dominates).  Both policies are implemented by
:func:`repro.core.algorithms.hashmap.s_line_graph_hashmap`; this ablation
verifies they agree and times them on a sparse-overlap input (LiveJournal
surrogate) and a dense-overlap input (Web surrogate).
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap

S_VALUE = 8
DATASETS = ["livejournal", "web"]
POLICIES = ["dynamic", "preallocated"]


def test_ablation_counter_policy(datasets, benchmark, report):
    def sweep():
        out = {}
        for name in DATASETS:
            h = datasets(name)
            per_policy = {}
            for policy in POLICIES:
                start = time.perf_counter()
                result = s_line_graph_hashmap(h, S_VALUE, counter_policy=policy)
                per_policy[policy] = (time.perf_counter() - start, result.graph)
            out[name] = per_policy
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        rows.append(
            [name]
            + [round(results[name][policy][0] * 1e3, 2) for policy in POLICIES]
        )
    report(
        f"Counter-policy ablation (s={S_VALUE}): "
        "per-iteration dict vs pre-allocated buffer (ms)\n"
        + format_table(["dataset"] + POLICIES, rows),
        name="ablation_counter_policy",
    )

    for name in DATASETS:
        dynamic_graph = results[name]["dynamic"][1]
        prealloc_graph = results[name]["preallocated"][1]
        # The policies are an implementation detail: results must be identical.
        assert dynamic_graph == prealloc_graph, name
        # Neither policy should be catastrophically slower than the other
        # (the paper reports modest, dataset-dependent differences).
        dyn_t = results[name]["dynamic"][0]
        pre_t = results[name]["preallocated"][0]
        assert max(dyn_t, pre_t) < 5.0 * min(dyn_t, pre_t), name


@pytest.mark.parametrize("policy", POLICIES)
def test_bench_counter_policy_web(datasets, benchmark, policy):
    h = datasets("web")
    benchmark.pedantic(
        lambda: s_line_graph_hashmap(h, S_VALUE, counter_policy=policy),
        rounds=2, iterations=1,
    )
