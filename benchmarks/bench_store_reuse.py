"""Persistent store reuse — cold rebuild vs warm mmap open vs WAL replay.

The store subsystem's contract: the wedge-enumeration pass that builds the
overlap index is paid once, persisted, and every later process opens the
snapshot instead of recomputing.  This benchmark times three ways to reach
"serving an s = 1..8 sweep":

* **cold** — build the :class:`OverlapIndex` from the hypergraph, sweep;
* **warm** — open the store, mmap the shards (:class:`ShardedIndex`), sweep;
* **replay** — same, with a write-ahead log of incremental updates to fold
  in first (the recovery path after a crash or between compactions).

The warm path must be at least 5x faster end to end than the cold path, and
an out-of-core :class:`ShardedIndex` whose shards are each far smaller than
the whole index must serve sweeps identical to the in-memory oracle.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks import quick_mode
from repro.benchmarks.reporting import format_table
from repro.engine.engine import QueryEngine
from repro.engine.index import OverlapIndex
from repro.store import IndexStore
from repro.utils.rng import make_rng

S_RANGE = range(1, 9)
NUM_SHARDS = 8

#: Quick mode (REPRO_BENCH_QUICK=1, the CI perf-smoke job): smaller
#: surrogate and a laxer floor — the fixed cost of opening a store weighs
#: more against a cheaper cold rebuild.
BENCH_QUICK = quick_mode()
BENCH_SCALE = 0.8 if BENCH_QUICK else 2.0
MIN_SPEEDUP = 3.0 if BENCH_QUICK else 5.0
ROUNDS = 2 if BENCH_QUICK else 3


@pytest.fixture(scope="module")
def bench_hypergraph(datasets):
    # Large enough that the one-off counting pass dominates fixed overheads.
    return datasets("email-euall", scale=BENCH_SCALE)


@pytest.fixture(scope="module")
def store_dir(bench_hypergraph, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "idx"
    IndexStore.build(bench_hypergraph, path, num_shards=NUM_SHARDS)
    return path


def _cold_sweep(h):
    index = OverlapIndex.build(h)
    return index, {s: index.line_graph(s) for s in S_RANGE}


def _warm_sweep(path):
    store = IndexStore.open(path)
    sharded = store.sharded_index()
    return sharded, sharded.sweep(S_RANGE)


def test_sharded_sweep_identical_to_in_memory(bench_hypergraph, store_dir):
    """Out-of-core serving is exact: every L_s matches the oracle, s = 1..8.

    The shard cap (8 row blocks) keeps each shard well below the total
    index size, so the comparison genuinely exercises cross-shard stitching.
    """
    oracle = OverlapIndex.build(bench_hypergraph)
    store = IndexStore.open(store_dir)
    sharded = store.sharded_index(max_resident_shards=2)
    per_shard = max(i.num_pairs for i in store.manifest.shards)
    assert per_shard < oracle.num_pairs  # capped below total index size
    for s in S_RANGE:
        assert sharded.line_graph(s) == oracle.line_graph(s), s
    assert sharded.s_profile() == oracle.s_profile()


def test_store_reuse_speedup(bench_hypergraph, store_dir, report):
    """Warm mmap open + sweep must be >= 5x faster than cold rebuild + sweep.

    Both paths are timed best-of-three so a stray GC pause cannot decide
    the comparison; the WAL-replay path (open + fold 20 logged updates +
    sweep) is reported alongside.
    """
    cold_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _, cold_graphs = _cold_sweep(bench_hypergraph)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)

    warm_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        sharded, warm_graphs = _warm_sweep(store_dir)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    # WAL replay path: log 20 incremental updates, then recover + sweep.
    engine = QueryEngine.from_store(store_dir, hypergraph=bench_hypergraph)
    rng = make_rng(5)
    h = engine.hypergraph
    for _ in range(15):
        members = rng.choice(h.num_vertices, size=5, replace=False).tolist()
        engine.add_hyperedge(members)
    for _ in range(5):
        engine.remove_hyperedge(int(rng.integers(h.num_edges)))
    replay_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _, replay_graphs = _warm_sweep(store_dir)
        replay_seconds = min(replay_seconds, time.perf_counter() - start)
    # The replayed state equals a from-scratch engine over the updated graph.
    oracle = QueryEngine(engine.hypergraph)
    for s in S_RANGE:
        assert replay_graphs[s] == oracle.line_graph(s), s
    engine.store.compact()  # leave the shared store clean for other tests

    speedup = cold_seconds / warm_seconds
    rows = [[s, warm_graphs[s].num_edges] for s in S_RANGE]
    report(
        f"Store reuse (s = 1..8 sweep, email-euall surrogate x{BENCH_SCALE}, "
        f"{NUM_SHARDS} shards)\n"
        + format_table(["s", "edges"], rows)
        + f"\ncold rebuild + sweep:   {cold_seconds:.4f}s"
        + f"\nwarm mmap open + sweep: {warm_seconds:.4f}s ({speedup:.1f}x)"
        + f"\nWAL replay (20 ops) + sweep: {replay_seconds:.4f}s",
        name="store_reuse",
        data={
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "replay_seconds": replay_seconds,
        },
    )

    for s in S_RANGE:
        assert warm_graphs[s] == cold_graphs[s], s
    assert speedup >= MIN_SPEEDUP


def test_bench_warm_open_sweep(store_dir, benchmark):
    """Timed variant for the pytest-benchmark harness (fresh open per round)."""
    benchmark.pedantic(lambda: _warm_sweep(store_dir), rounds=5, iterations=1)


def test_bench_cold_build_sweep(bench_hypergraph, benchmark):
    """The baseline the snapshot amortises away."""
    benchmark.pedantic(
        lambda: _cold_sweep(bench_hypergraph), rounds=2, iterations=1
    )
