"""Shared fixtures for the experiment-reproduction benchmarks.

Every ``bench_*.py`` module regenerates one table or figure of the paper.
Datasets are laptop-scale surrogates (see ``repro.generators.datasets``);
the scale factor can be raised with the ``REPRO_BENCH_SCALE`` environment
variable for heavier runs.  Each benchmark prints the paper-style rows or
series through the ``report`` fixture, which also writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be filled in
directly from the artefacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.benchmarks import quick_mode
from repro.generators.datasets import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Default scale factor applied to the Table IV surrogates in benchmarks.
DEFAULT_SCALE = 0.3

#: Quick mode (REPRO_BENCH_QUICK=1): smaller datasets and fewer rounds, so
#: the CI perf-smoke job finishes in minutes.  Headline *floors* scale down
#: with it — each bench module derives both from :func:`quick_mode`.
BENCH_QUICK = quick_mode()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale factor (override with REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed used for every surrogate dataset in the benchmarks."""
    return int(os.environ.get("REPRO_BENCH_SEED", 0))


@pytest.fixture(scope="session")
def datasets(bench_scale, bench_seed):
    """Lazily-loaded cache of Table IV surrogate datasets at bench scale."""
    cache = {}

    def load(name: str, scale: float | None = None):
        key = (name, scale or bench_scale)
        if key not in cache:
            cache[key] = load_dataset(name, scale=key[1], seed=bench_seed)
        return cache[key]

    return load


@pytest.fixture
def report(capsys, request):
    """Print a paper-style table/series and persist it under benchmarks/results/.

    Pass ``data=`` (a JSON-serialisable mapping) to additionally write
    ``benchmarks/results/BENCH_<name>.json`` — the machine-readable
    artefact the CI perf-smoke job uploads and gates on.  Headline
    benchmarks put at least ``{"name", "speedup", "floor"}`` in it (see
    ``benchmarks/check_perf_floors.py``).
    """

    def _report(text: str, name: str | None = None, data: dict | None = None) -> None:
        label = name or request.node.name.replace("/", "_")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{label}.txt").write_text(text + "\n")
        if data is not None:
            payload = {"name": label, "quick": BENCH_QUICK, **data}
            (RESULTS_DIR / f"BENCH_{label}.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        with capsys.disabled():
            print(f"\n{text}")

    return _report
