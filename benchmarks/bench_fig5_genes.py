"""Figure 5 / Section V-A — s-line graphs of the virology genomics data.

The paper plots the s = 1, 3, 5 line graphs of the gene–condition hypergraph
and reports that the five-line graph isolates the six most important genes
(ISG15, IL6, ATF3, RSAD2, USP18, IFIT1), with IFIT1 and USP18 — which share
more than 100 experimental conditions — carrying the highest centrality.
"""

from __future__ import annotations

import pytest

from repro.apps.genes import identify_important_genes
from repro.benchmarks.reporting import format_table
from repro.generators.datasets import IMPORTANT_GENES, virology_surrogate

S_VALUES = (1, 3, 5)


@pytest.fixture(scope="module")
def virology(bench_seed):
    return virology_surrogate(seed=bench_seed)


def test_fig5_gene_importance(virology, benchmark, report):
    result = benchmark.pedantic(
        lambda: identify_important_genes(virology, s_values=S_VALUES, top_k=10),
        rounds=1, iterations=1,
    )
    rows = []
    for s in result.s_values:
        if result.top_genes[s]:
            top = ", ".join(result.top_gene_names(s, 6))
        else:
            top = "(not computed)"
        rows.append([s, result.line_graph_sizes[s], len(result.components[s]), top])
    table = format_table(
        ["s", "line-graph edges", "components (size>=2)", "top genes by s-betweenness"], rows
    )
    report("Figure 5 reproduction: virology gene importance\n" + table, name="fig5_genes")

    # The five-line graph identifies exactly the paper's six genes, IFIT1/USP18 on top.
    assert set(result.top_gene_names(5, 6)) == set(IMPORTANT_GENES)
    assert set(result.top_gene_names(5, 2)) == {"IFIT1", "USP18"}
    sizes = result.line_graph_sizes
    assert sizes[1] > sizes[3] > sizes[5] > 0
    names = virology.edge_names
    assert virology.inc(names.index("IFIT1"), names.index("USP18")) > 100


def test_bench_gene_analysis_s5(virology, benchmark):
    benchmark.pedantic(
        lambda: identify_important_genes(virology, s_values=(5,), top_k=6),
        rounds=2, iterations=1,
    )
