"""Figure 4 — number of edges in the s-clique graph versus s (log-log decay).

The paper plots the edge count of the s-clique graphs of disGeNet, condMat,
compBoard and lesMis against s and observes a rapid (roughly exponential)
sparsification as s grows.  We regenerate the four series on the surrogates
and assert the monotone, multiplicative decay.
"""

from __future__ import annotations

import pytest

from repro.benchmarks.reporting import format_table
from repro.core.dispatch import s_line_graph_ensemble
from repro.generators.datasets import (
    compboard_surrogate,
    condmat_surrogate,
    disgenet_surrogate,
    lesmis_surrogate,
)

S_SWEEP = [1, 2, 4, 8, 16]


@pytest.fixture(scope="module")
def figure4_datasets(bench_seed):
    return {
        "disGeNet": disgenet_surrogate(seed=bench_seed),
        "condMat": condmat_surrogate(seed=bench_seed),
        "compBoard": compboard_surrogate(seed=bench_seed),
        "lesMis": lesmis_surrogate(seed=bench_seed),
    }


def test_fig4_sclique_edge_decay(figure4_datasets, benchmark, report):
    def collect():
        series = {}
        for name, h in figure4_datasets.items():
            # The s-clique graph is the s-line graph of the dual hypergraph.
            ensemble = s_line_graph_ensemble(h.dual(), S_SWEEP)
            series[name] = ensemble.edge_counts()
        return series

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ["s"] + list(series)
    rows = [[s] + [series[name][s] for name in series] for s in S_SWEEP]
    report(
        "Figure 4 reproduction: edges in the s-clique graph\n"
        + format_table(headers, rows),
        name="fig4_density",
    )

    for name, counts in series.items():
        values = [counts[s] for s in S_SWEEP]
        # Monotone non-increasing in s ...
        assert values == sorted(values, reverse=True), name
        # ... and decaying by a large factor across the sweep (log-log drop-off).
        assert values[0] > 10 * max(values[-1], 1), name


def test_bench_sclique_ensemble_disgenet(figure4_datasets, benchmark):
    h = figure4_datasets["disGeNet"].dual()
    benchmark.pedantic(lambda: s_line_graph_ensemble(h, S_SWEEP), rounds=2, iterations=1)
