"""Ablation — Stage 2 toplex simplification.

Section IV of the paper marks toplex computation as an optional stage that
can shrink the hypergraph (and hence the s-overlap work) when many
hyperedges are contained in others.  This ablation measures, on two
surrogates, how many hyperedges the simplification removes and how much
s-overlap work (wedge visits) it saves, and checks that the s-line graph
restricted to toplexes is a subgraph of the full s-line graph.
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.hypergraph.toplexes import simplify

S_VALUE = 8
DATASETS = ["livejournal", "amazon-reviews"]


def test_ablation_toplex_simplification(datasets, benchmark, report):
    def sweep():
        out = {}
        for name in DATASETS:
            h = datasets(name)
            simplified = simplify(h)
            full = s_line_graph_hashmap(h, S_VALUE)
            reduced = s_line_graph_hashmap(simplified, S_VALUE)
            out[name] = (h, simplified, full, reduced)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name in DATASETS:
        h, simplified, full, reduced = results[name]
        rows.append(
            [
                name,
                h.num_edges,
                simplified.num_edges,
                full.workload.total_wedges(),
                reduced.workload.total_wedges(),
                full.graph.num_edges,
                reduced.graph.num_edges,
            ]
        )
    report(
        f"Toplex (Stage 2) ablation at s={S_VALUE}\n"
        + format_table(
            ["dataset", "|E|", "|E| toplexes", "wedges (full)", "wedges (toplex)",
             "line edges (full)", "line edges (toplex)"],
            rows,
        ),
        name="ablation_toplex",
    )

    for name in DATASETS:
        h, simplified, full, reduced = results[name]
        # Simplification never adds hyperedges and never increases the work.
        assert simplified.num_edges <= h.num_edges
        assert reduced.workload.total_wedges() <= full.workload.total_wedges()
        assert reduced.graph.num_edges <= full.graph.num_edges


def test_bench_toplex_computation(datasets, benchmark):
    h = datasets("amazon-reviews")
    benchmark.pedantic(lambda: simplify(h), rounds=2, iterations=1)
