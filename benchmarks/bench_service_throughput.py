"""Serving-layer throughput: batched admission and multi-reader scaling.

Two claims of the concurrent service subsystem:

* **Batched admission beats per-update fsync.**  Durability costs one
  fsync per acknowledged update on the naive path; the admission queue
  coalesces a batch into a single group commit
  (:meth:`repro.store.IndexStore.batch`).  At the durability layer —
  records made durable per second, the cost batching actually removes —
  the group commit must be **>= 5x** faster.  The end-to-end engine path
  (apply + fsync) is reported alongside: its gap is narrower on fast
  NVMe/page-cache disks where the O(|H|) apply dominates, and widens to
  the durability-layer gap as fsync latency grows (spinning disks,
  networked filesystems).
* **Reader processes scale.**  N read-replica processes on one shared
  store must serve close to N x the query throughput of a single reader
  (shared immutable mmaps, no writer, no locks) — asserted at a
  conservative >= 1.5x aggregate for 4 readers.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np

from repro.benchmarks import quick_mode
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.service import AdmissionQueue
from repro.store import IndexStore
from repro.store.persistent import PersistentQueryEngine
from repro.utils.rng import make_rng

#: Quick mode (REPRO_BENCH_QUICK=1, the CI perf-smoke job): fewer records
#: and queries; the floors hold because both paths shrink together.
BENCH_QUICK = quick_mode()
NUM_RECORDS = 150 if BENCH_QUICK else 300
MAX_BATCH = 64
MIN_GROUP_COMMIT_SPEEDUP = 4.0 if BENCH_QUICK else 5.0
NUM_READERS = 4
QUERIES_PER_READER = 20 if BENCH_QUICK else 40
MIN_READER_SCALING = 1.5

#: Small base hypergraph: admission throughput should be bounded by the
#: durability path, not by rebuilding a huge hypergraph per update.
BASE_EDGES = [[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]]


def base_hypergraph():
    return hypergraph_from_edge_lists(BASE_EDGES, num_vertices=40)


def update_stream(n, seed=1):
    rng = make_rng(seed)
    return [
        np.unique(rng.choice(40, size=4, replace=False)).tolist() for _ in range(n)
    ]


def test_group_commit_durability_speedup(tmp_path, report):
    """WAL layer: one fsync per batch vs one per record, same records."""
    pair_ids = np.array([0, 1], dtype=np.int64)
    weights = np.array([1, 1], dtype=np.int64)

    per_record_store = IndexStore.build(base_hypergraph(), tmp_path / "per")
    start = time.perf_counter()
    for i in range(NUM_RECORDS):
        per_record_store.append_add(4 + i, [0, 1, 2], pair_ids, weights)
    per_record = time.perf_counter() - start

    grouped_store = IndexStore.build(base_hypergraph(), tmp_path / "grp")
    start = time.perf_counter()
    done = 0
    while done < NUM_RECORDS:
        with grouped_store.batch():
            for _ in range(min(MAX_BATCH, NUM_RECORDS - done)):
                grouped_store.append_add(4 + done, [0, 1, 2], pair_ids, weights)
                done += 1
    grouped = time.perf_counter() - start

    # Both logs replay to the same record count — durability is identical.
    assert per_record_store.num_wal_records() == NUM_RECORDS
    assert IndexStore.open(grouped_store.path).num_wal_records() == NUM_RECORDS

    speedup = per_record / grouped
    report(
        f"WAL durability throughput ({NUM_RECORDS} records)\n"
        f"per-record fsync: {NUM_RECORDS / per_record:10.0f} records/s\n"
        f"group commit ({MAX_BATCH}/batch): {NUM_RECORDS / grouped:10.0f} records/s\n"
        f"speedup: {speedup:.1f}x",
        name="service_group_commit",
        data={
            "speedup": speedup,
            "floor": MIN_GROUP_COMMIT_SPEEDUP,
            "per_record_seconds": per_record,
            "grouped_seconds": grouped,
        },
    )
    assert speedup >= MIN_GROUP_COMMIT_SPEEDUP


def test_batched_admission_end_to_end(tmp_path, report):
    """Engine path: AdmissionQueue vs synchronous per-update durability."""
    sync_engine = PersistentQueryEngine.build(base_hypergraph(), tmp_path / "sync")
    stream = update_stream(NUM_RECORDS)
    start = time.perf_counter()
    for members in stream:
        sync_engine.add_hyperedge(members)
    per_update = time.perf_counter() - start

    batched_engine = PersistentQueryEngine.build(base_hypergraph(), tmp_path / "batch")
    queue = AdmissionQueue(batched_engine, max_batch=MAX_BATCH)
    stream = update_stream(NUM_RECORDS)
    start = time.perf_counter()
    for members in stream:
        queue.submit_add(members)
    queue.flush()
    batched = time.perf_counter() - start
    queue.close()

    # Identical final state either way.
    assert batched_engine.fingerprint() == sync_engine.fingerprint()
    stats = queue.stats()
    speedup = per_update / batched
    report(
        f"End-to-end admission ({NUM_RECORDS} updates, small base hypergraph)\n"
        f"per-update fsync: {NUM_RECORDS / per_update:10.0f} updates/s\n"
        f"batched admission: {NUM_RECORDS / batched:10.0f} updates/s "
        f"({stats.batches} group commits, largest {stats.largest_batch})\n"
        f"speedup: {speedup:.2f}x "
        "(grows with fsync latency; see module docstring)",
        name="service_admission_end_to_end",
        data={"speedup": speedup, "floor": 1.2},
    )
    assert stats.batches < NUM_RECORDS  # coalescing actually happened
    assert speedup >= 1.2


_READER_SCRIPT = """
import sys, time
from repro.service import ReadReplica

replica = ReadReplica(sys.argv[1], cache_size=1)  # cache_size=1: every query recomputes
queries = int(sys.argv[2])
max_s = max(replica.max_s(), 1)
print("READY", flush=True)
sys.stdin.readline()  # GO
start = time.perf_counter()
for i in range(queries):
    replica.metric(1 + i % max_s, "connected_components")
print(f"ELAPSED {time.perf_counter() - start}", flush=True)
"""


def _run_readers(store_path, num_readers, queries):
    """Start reader processes, release them together, return max elapsed."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _READER_SCRIPT, str(store_path), str(queries)],
            env=env,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        for _ in range(num_readers)
    ]
    for proc in procs:
        assert proc.stdout.readline().strip() == "READY"
    for proc in procs:  # all replicas open: release the herd together
        proc.stdin.write("GO\n")
        proc.stdin.flush()
    elapsed = []
    for proc in procs:
        line = proc.stdout.readline().strip()
        assert line.startswith("ELAPSED"), line
        elapsed.append(float(line.split()[1]))
        proc.wait(timeout=60)
    return max(elapsed)


def test_multi_reader_throughput_scaling(tmp_path, datasets, report):
    """N reader processes serve ~N x the queries/s of a single reader."""
    h = datasets("email-euall", scale=0.3)
    store_path = tmp_path / "idx"
    IndexStore.build(h, store_path, num_shards=4)

    single = _run_readers(store_path, 1, QUERIES_PER_READER)
    fleet = _run_readers(store_path, NUM_READERS, QUERIES_PER_READER)

    single_qps = QUERIES_PER_READER / single
    fleet_qps = NUM_READERS * QUERIES_PER_READER / fleet
    scaling = fleet_qps / single_qps
    cores = os.cpu_count() or 1
    report(
        f"Multi-reader query throughput (email-euall x0.3, "
        f"{QUERIES_PER_READER} queries/reader, cache bypassed, {cores} cores)\n"
        f"1 reader:  {single_qps:10.0f} queries/s\n"
        f"{NUM_READERS} readers: {fleet_qps:10.0f} queries/s aggregate\n"
        f"scaling: {scaling:.2f}x",
        name="service_reader_scaling",
    )
    if min(NUM_READERS, cores) >= 2:
        assert scaling >= MIN_READER_SCALING
    else:
        # A single-core host cannot scale process throughput; still assert
        # readers do not *contend* (no lock/IO serialisation penalty).
        assert scaling >= 0.5
