"""Figure 7 — speedup of the twelve algorithm variants relative to 1CN (s = 8).

The paper runs Algorithm 1 and Algorithm 2 under blocked/cyclic partitioning
and ascending/descending/no relabelling on five datasets and normalises the
runtimes to 1CN (Algorithm 1, cyclic, no relabelling).  The headline result:
the hashmap variants (2xx) beat every Algorithm 1 variant, reaching ≈5–31×
on Web and LiveJournal.  We regenerate the bar chart's data series on three
surrogates and assert the ordering (every 2xx variant beats 1CN; the best
hashmap variant achieves a substantial speedup).
"""

from __future__ import annotations

from repro.benchmarks.reporting import format_table
from repro.core.algorithms.registry import ALL_VARIANTS, run_variant

S_VALUE = 8
DATASET_NAMES = ["livejournal", "web", "friendster"]
NUM_WORKERS = 4


def measure_dataset(h):
    runtimes = {}
    for notation in ALL_VARIANTS:
        result = run_variant(h, S_VALUE, notation, num_workers=NUM_WORKERS)
        runtimes[notation] = result.total_seconds
    return runtimes


def test_fig7_variant_speedups(datasets, benchmark, report):
    def collect():
        return {name: measure_dataset(datasets(name)) for name in DATASET_NAMES}

    runtimes = benchmark.pedantic(collect, rounds=1, iterations=1)
    speedups = {
        name: {v: runtimes[name]["1CN"] / runtimes[name][v] for v in ALL_VARIANTS}
        for name in DATASET_NAMES
    }
    headers = ["variant"] + [f"{name} speedup vs 1CN" for name in DATASET_NAMES]
    rows = [
        [variant] + [round(speedups[name][variant], 2) for name in DATASET_NAMES]
        for variant in ALL_VARIANTS
    ]
    report(
        "Figure 7 reproduction: speedup relative to 1CN "
        f"(s={S_VALUE}, {NUM_WORKERS} workers)\n"
        + format_table(headers, rows),
        name="fig7_variants",
    )

    for name in DATASET_NAMES:
        hashmap_speedups = [speedups[name][v] for v in ALL_VARIANTS if v.startswith("2")]
        heuristic_speedups = [speedups[name][v] for v in ALL_VARIANTS if v.startswith("1")]
        # No Algorithm 2 variant is meaningfully slower than the 1CN baseline
        # (the paper's Friendster/Amazon panels show some 2xx variants near 1x)...
        assert min(hashmap_speedups) > 0.8, name
        # ...the best hashmap variant is several times faster...
        assert max(hashmap_speedups) > 2.0, name
        # ...and the best Algorithm 2 variant beats the best Algorithm 1 variant.
        assert max(hashmap_speedups) > max(heuristic_speedups), name
    # The skewed, larger inputs see the big wins (the paper reports 5-31x there).
    for name in ("livejournal", "web"):
        assert max(speedups[name][v] for v in ALL_VARIANTS if v.startswith("2")) > 4.0, name


def test_bench_best_variant_2ba_livejournal(datasets, benchmark):
    h = datasets("livejournal")
    benchmark.pedantic(
        lambda: run_variant(h, S_VALUE, "2BA", num_workers=NUM_WORKERS),
        rounds=2, iterations=1,
    )


def test_bench_baseline_variant_1cn_livejournal(datasets, benchmark):
    h = datasets("livejournal")
    benchmark.pedantic(
        lambda: run_variant(h, S_VALUE, "1CN", num_workers=NUM_WORKERS),
        rounds=1, iterations=1,
    )
