"""Socket transport throughput — batched frames vs per-request round trips.

The transport's claim: the wire does not give back what the serving layer
won (batched request serving over worker threads).  Two measurements over
one live :class:`~repro.service.SocketServer`:

* **Batching beats round-tripping.**  N query requests sent as one
  ``batch`` frame (one round trip, server-side thread fan-out) must beat
  the same N requests sent one frame at a time — each of those pays a
  send/receive syscall pair and a JSON envelope on both sides.  Floor:
  **>= 2x** on loopback; the gap widens with real network latency, since
  the per-request path pays one RTT per query and the batch path pays one
  RTT per N.
* **Durability acks over the wire.**  Updates submitted with
  ``wait=True`` acknowledge only after the admission queue's group
  commit; reported (no floor — fsync latency dominates and varies by
  disk) so regressions in the ack path show up in the artefact history.
* **Binary columns beat the JSON data plane.**  The same bulk
  metric/sweep workload driven through a protocol v2 client (struct-packed
  numpy columns, see ``docs/PROTOCOL.md``) vs a ``protocol_max=1`` client
  (JSON object payloads) against one server.  On payload-heavy responses
  the v1 path pays JSON encode/decode of thousands of key/value pairs on
  both sides; the v2 path splices raw ``int64``/``float64`` buffers.
  Floor: **>= 2x** (the ``transport_binary`` headline, gated by
  ``check_perf_floors.py`` — byte-dominated, so stable on loaded runners,
  unlike the latency-dominated batch ratio above).
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks import quick_mode
from repro.service import QueryService, ServiceClient, SocketServer
from repro.store import IndexStore
from repro.utils.rng import make_rng

BENCH_QUICK = quick_mode()
NUM_REQUESTS = 80 if BENCH_QUICK else 200
NUM_UPDATES = 40 if BENCH_QUICK else 100
MIN_BATCH_SPEEDUP = 1.5 if BENCH_QUICK else 2.0
ROUNDS = 3
S_CYCLE = (1, 2, 3, 4)

#: The binary-plane headline runs against a larger store: the ratio is
#: driven by per-response payload size (thousands of edge id/value pairs),
#: not by round-trip count, so the dataset must be big enough for
#: serialisation to dominate loopback RTT.
#: Not reduced in quick mode: the ratio needs the payload-bound regime,
#: and the build costs only ~a second at this scale.
BINARY_SCALE = 4.0
BINARY_REQUESTS = 20 if BENCH_QUICK else 40
MIN_BINARY_SPEEDUP = 2.0
BINARY_SWEEP_RANGE = range(1, 9)
#: Low s only: E_1/E_2 hold (nearly) every hyperedge, so each response
#: carries thousands of id/value pairs — the serialisation-bound regime
#: the headline gates.  Higher s thresholds shrink E_s to a few hundred
#: edges and dilute the ratio with round-trip latency.
BINARY_S_CYCLE = (1, 2)


@pytest.fixture(scope="module")
def served_store(datasets, tmp_path_factory):
    h = datasets("email-euall", scale=0.2)
    path = tmp_path_factory.mktemp("transport") / "idx"
    IndexStore.build(h, path, num_shards=4)
    service = QueryService(path, max_batch=32)
    server = SocketServer(service, port=0).start()
    yield server
    server.close()
    service.close()


def query_stream(n):
    return [{"op": "components", "s": S_CYCLE[i % len(S_CYCLE)]} for i in range(n)]


def test_batched_queries_beat_round_trips(served_store, report):
    """One batch frame >= 2x faster than N sequential round trips."""
    with ServiceClient(*served_store.address) as client:
        requests = query_stream(NUM_REQUESTS)
        client.batch(requests)  # warm engine caches on the server

        per_request = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            responses = [client.call(r) for r in requests]
            per_request = min(per_request, time.perf_counter() - start)

        batched = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            batch_responses = client.batch(requests)
            batched = min(batched, time.perf_counter() - start)

    # Same answers either way, in order.
    assert [r["count"] for r in responses] == [r["count"] for r in batch_responses]
    assert all(r["ok"] for r in batch_responses)

    speedup = per_request / batched
    report(
        f"Socket transport ({NUM_REQUESTS} component queries, loopback)\n"
        f"per-request round trips: {NUM_REQUESTS / per_request:10.0f} queries/s\n"
        f"one batch frame:         {NUM_REQUESTS / batched:10.0f} queries/s\n"
        f"speedup: {speedup:.1f}x (widens with network RTT)",
        name="transport_batch",
        data={"speedup": speedup, "floor": MIN_BATCH_SPEEDUP},
    )
    assert speedup >= MIN_BATCH_SPEEDUP


@pytest.fixture(scope="module")
def binary_served_store(datasets, tmp_path_factory):
    h = datasets("email-euall", scale=BINARY_SCALE)
    path = tmp_path_factory.mktemp("transport-binary") / "idx"
    IndexStore.build(h, path, num_shards=4)
    service = QueryService(path, max_batch=32)
    server = SocketServer(service, port=0).start()
    yield server
    server.close()
    service.close()


def test_binary_columns_beat_json_data_plane(binary_served_store, report):
    """Bulk metric/sweep over v2 binary columns >= 2x the v1 JSON plane."""

    def bulk(client):
        by_edge = None
        for i in range(BINARY_REQUESTS):
            by_edge = client.metric(
                BINARY_S_CYCLE[i % len(BINARY_S_CYCLE)], "connected_components"
            )
        sweep = client.sweep(BINARY_SWEEP_RANGE, metrics=("connected_components",))
        return by_edge, sweep

    address = binary_served_store.address
    with ServiceClient(*address) as v2_client, ServiceClient(
        *address, protocol_max=1
    ) as v1_client:
        assert v2_client.protocol == 2
        assert v1_client.protocol == 1
        v2_edge, v2_sweep = bulk(v2_client)  # warm server caches (not timed)
        v1_edge, v1_sweep = bulk(v1_client)

        binary_seconds = float("inf")
        json_seconds = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            bulk(v2_client)
            binary_seconds = min(binary_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            bulk(v1_client)
            json_seconds = min(json_seconds, time.perf_counter() - start)

    # Both planes serve the same answers for the same queries.
    assert v2_edge == v1_edge
    assert v2_sweep == v1_sweep

    num_edges = len(v2_edge)
    speedup = json_seconds / binary_seconds
    report(
        f"Binary data plane ({BINARY_REQUESTS} metric queries x {num_edges} "
        f"hyperedges + one sweep, loopback)\n"
        f"v1 JSON payloads:   {json_seconds:.4f}s\n"
        f"v2 binary columns:  {binary_seconds:.4f}s\n"
        f"speedup: {speedup:.1f}x (floor {MIN_BINARY_SPEEDUP:.1f}x)",
        name="transport_binary",
        data={
            "speedup": speedup,
            "floor": MIN_BINARY_SPEEDUP,
            "json_seconds": json_seconds,
            "binary_seconds": binary_seconds,
            "num_edges": num_edges,
        },
    )
    assert speedup >= MIN_BINARY_SPEEDUP


def test_durable_update_acks_over_the_wire(served_store, report):
    """Every acknowledged update is fsynced; throughput is reported."""
    service = served_store.service
    rng = make_rng(3)
    num_vertices = service.engine.hypergraph.num_vertices
    with ServiceClient(*served_store.address) as client:
        before = service.admission_stats().applied
        start = time.perf_counter()
        edge_ids = [
            client.add(sorted(set(int(v) for v in rng.choice(num_vertices, size=4))))
            for _ in range(NUM_UPDATES)
        ]
        elapsed = time.perf_counter() - start
        assert all(isinstance(e, int) for e in edge_ids)
        assert service.admission_stats().applied - before == NUM_UPDATES
    report(
        f"Durability-acked updates over TCP ({NUM_UPDATES} adds, wait=True)\n"
        f"acked throughput: {NUM_UPDATES / elapsed:10.0f} updates/s "
        "(each ack implies a group-commit fsync)",
        name="transport_acked_updates",
    )
