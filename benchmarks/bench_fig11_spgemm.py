"""Figure 11 — comparison with the SpGEMM-based approach across s values.

The paper compares SpGEMM+Filter and SpGEMM+Filter+Upper against Algorithm 1
(1CA) and Algorithm 2 (2BA) on email-EuAll and Friendster for growing s,
finding that the hashmap algorithm always wins and that the gap widens with
s (degree pruning removes ever more work while the SpGEMM cost is
s-independent because the full product must be materialised first).
"""

from __future__ import annotations

import pytest

from repro.benchmarks.harness import time_callable
from repro.benchmarks.reporting import format_table
from repro.core.algorithms.registry import run_variant
from repro.core.algorithms.spgemm import s_line_graph_spgemm, s_line_graph_spgemm_upper

S_SWEEP = {
    "email-euall": [2, 4, 8, 16, 32],
    "friendster": [2, 4, 8, 16, 32, 64],
}
NUM_WORKERS = 2
#: Best-of-N timing per point: these kernels run in single-digit milliseconds,
#: so a single sample is dominated by scheduler/GC noise.
REPEATS = 3


def _timed(fn):
    seconds, result = time_callable(fn, repeats=REPEATS)
    return seconds, result


def measure(h, s):
    """Time the four Figure 11 methods plus a compiled-SpGEMM reference point.

    The paper's SpGEMM library and its algorithms run on the same (C++)
    substrate; here the like-for-like comparison keeps every method in pure
    Python (``gustavson`` kernel), while the scipy product is reported as an
    extra reference column (see EXPERIMENTS.md).
    """
    spgemm_t, spgemm_r = _timed(lambda: s_line_graph_spgemm(h, s, kernel="gustavson"))
    scipy_t, scipy_r = _timed(lambda: s_line_graph_spgemm(h, s, kernel="scipy"))
    upper_t, upper_r = _timed(lambda: s_line_graph_spgemm_upper(h, s))
    h1ca_t, h1ca_r = _timed(lambda: run_variant(h, s, "1CA", num_workers=NUM_WORKERS))
    h2ba_t, h2ba_r = _timed(lambda: run_variant(h, s, "2BA", num_workers=NUM_WORKERS))
    # All methods must agree on the result.
    assert spgemm_r.graph.edge_set() == upper_r.graph.edge_set()
    assert spgemm_r.graph.edge_set() == scipy_r.graph.edge_set()
    assert spgemm_r.graph.edge_set() == h1ca_r.graph.edge_set()
    assert spgemm_r.graph.edge_set() == h2ba_r.graph.edge_set()
    return {
        "SpGEMM+Filter": spgemm_t,
        "SpGEMM+Filter+Upper": upper_t,
        "1CA": h1ca_t,
        "2BA": h2ba_t,
        "SpGEMM+Filter (scipy ref)": scipy_t,
    }


@pytest.mark.parametrize("dataset_name", sorted(S_SWEEP))
def test_fig11_spgemm_comparison(datasets, benchmark, report, dataset_name):
    h = datasets(dataset_name)
    s_values = S_SWEEP[dataset_name]

    def sweep():
        return {s: measure(h, s) for s in s_values}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    methods = [
        "SpGEMM+Filter",
        "SpGEMM+Filter+Upper",
        "1CA",
        "2BA",
        "SpGEMM+Filter (scipy ref)",
    ]
    rows = [
        [s] + [round(results[s][m] * 1e3, 2) for m in methods] for s in s_values
    ]
    report(
        f"Figure 11 reproduction ({dataset_name}): runtime (ms) vs s\n"
        + format_table(["s"] + methods, rows),
        name=f"fig11_spgemm_{dataset_name}",
    )

    # Shape checks (robust to per-point timing noise on millisecond kernels):
    # the hashmap variant (2BA) beats the full SpGEMM+Filter baseline over the
    # sweep and is never meaningfully slower at any single s; against
    # SpGEMM+Filter+Upper the paper (and our surrogate) sees a near-tie at the
    # smallest s on Friendster-like inputs, with the hashmap algorithm clearly
    # ahead at the largest s (degree pruning removes more work while the
    # SpGEMM cost stays s-independent).
    small, large = s_values[0], s_values[-1]
    total = {m: sum(results[s][m] for s in s_values) for m in
             ("SpGEMM+Filter", "SpGEMM+Filter+Upper", "2BA")}
    assert total["2BA"] < total["SpGEMM+Filter"]
    assert total["2BA"] < 1.2 * total["SpGEMM+Filter+Upper"]
    for s in s_values:
        assert results[s]["2BA"] < 1.6 * results[s]["SpGEMM+Filter"]
        assert results[s]["2BA"] < 1.6 * results[s]["SpGEMM+Filter+Upper"]
    assert results[large]["2BA"] < results[large]["SpGEMM+Filter+Upper"]
    gap_small = results[small]["SpGEMM+Filter+Upper"] / results[small]["2BA"]
    gap_large = results[large]["SpGEMM+Filter+Upper"] / results[large]["2BA"]
    assert gap_large >= gap_small * 0.8  # the gap does not shrink meaningfully with s


def test_bench_spgemm_filter_email(datasets, benchmark):
    h = datasets("email-euall")
    benchmark(lambda: s_line_graph_spgemm(h, 8))


def test_bench_hashmap_2ba_email(datasets, benchmark):
    h = datasets("email-euall")
    benchmark(lambda: run_variant(h, 8, "2BA", num_workers=NUM_WORKERS))
