#!/usr/bin/env python
"""CI gate: fail when an orthogonal correctness axis does not hold.

The chaos suite (``repro chaos --results-dir DIR``) writes one artefact
per axis — ``AXES_correctness.json``, ``AXES_durability.json``,
``AXES_freshness.json`` — each ``{"axis", "pass", "scenarios": {...}}``.
The fourth axis, **throughput**, is synthesised here from the existing
``BENCH_*.json`` headline artefacts (the perf-smoke floors): a chaos run
must not be the thing that measures steady-state speed, but the axis set
is only complete if the floors held too.

Each axis is gated *independently* (``--axis NAME``) so a CI pipeline
can report per-axis verdicts instead of one mushed-together boolean:

* ``correctness`` — served values diverged from the pipeline oracle
  zero times, and every observability invariant held (lag gauges moved,
  probes flipped, slow queries linked to traces);
* ``durability``  — zero acknowledged updates lost across crash,
  poison and restart scenarios;
* ``freshness``   — time-to-ready and p95 generation lag within SLO;
* ``throughput``  — every required ``BENCH_*`` ratio at or above floor
  (delegates to ``check_perf_floors.py``).

A missing artefact fails its axis: a chaos job that silently skipped a
scenario must fail exactly like one that found a violation.

Usage:  python benchmarks/check_axes.py [--axis NAME] [--results-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))  # benchmarks/ is not a package
import check_perf_floors  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

CHAOS_AXES = ("correctness", "durability", "freshness")
AXES = CHAOS_AXES + ("throughput",)


def check_chaos_axis(axis: str, results_dir: Path) -> list:
    """Failures for one chaos-produced axis artefact (empty = pass)."""
    path = results_dir / f"AXES_{axis}.json"
    if not path.is_file():
        return [f"{axis}: artefact {path} missing (chaos suite did not run?)"]
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{axis}: artefact {path} unreadable: {exc}"]
    scenarios = data.get("scenarios") or {}
    if not scenarios:
        return [f"{axis}: artefact {path} holds no scenario entries"]
    failures = []
    for name in sorted(scenarios):
        entry = scenarios[name]
        ok = bool(entry.get("pass"))
        detail = "; ".join(str(f) for f in entry.get("failures", [])[:3])
        print(f"{axis:12s} {name:28s} {'ok' if ok else 'FAIL'}"
              + (f"  ({detail})" if detail and not ok else ""))
        if not ok:
            failures.append(f"{axis}: scenario {name} failed"
                            + (f" ({detail})" if detail else ""))
    if not bool(data.get("pass")) and not failures:
        failures.append(f"{axis}: artefact marked failing")
    return failures


def check_throughput(results_dir: Path) -> list:
    """The throughput axis: delegate to the perf-floor gate, and record
    the verdict as an ``AXES_throughput.json`` artefact alongside the
    chaos-produced axes so one directory carries the full axis set."""
    rc = check_perf_floors.main([])
    payload = {
        "axis": "throughput",
        "pass": rc == 0,
        "source": "benchmarks/results/BENCH_*.json via check_perf_floors.py",
    }
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "AXES_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return [] if rc == 0 else ["throughput: a required BENCH floor was violated"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--axis",
        choices=AXES + ("all",),
        default="all",
        help="gate one axis independently (default: all)",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=RESULTS_DIR,
        help="directory holding AXES_*.json artefacts (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    axes = list(AXES) if args.axis == "all" else [args.axis]
    failures = []
    for axis in axes:
        if axis == "throughput":
            failures.extend(check_throughput(args.results_dir))
        else:
            failures.extend(check_chaos_axis(axis, args.results_dir))

    if failures:
        print("\ncorrectness axes violated:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(axes)} axis gate(s) hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
