"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable in offline environments whose setuptools
predates PEP 660 support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
