#!/usr/bin/env python
"""Executable documentation checks (the CI ``docs`` job).

Three guarantees about README.md and docs/*.md, so the prose cannot
silently rot away from the code:

1. **Quickstart blocks run.**  Fenced code blocks tagged ``python run``
   are executed — per document, in order, sharing one namespace (so a
   later block may use names an earlier one defined) — inside a
   temporary working directory, so relative store paths like ``idx/``
   land in a scratch store and leave the repo untouched.
2. **Every other Python block parses.**  Blocks tagged plain ``python``
   are ``compile()``-checked; a typo'd example fails CI even when the
   example is not runnable in isolation (network addresses, elided
   context).
3. **Intra-repo links resolve.**  Relative markdown link targets
   (anchors stripped) must exist on disk, relative to the document.
4. **Contract tables mirror the code.**  ``docs/PROTOCOL.md``'s
   error-code table is checked against the ``E_*`` registry in
   ``framing.py`` and ``docs/OPERATIONS.md``'s metrics catalogue against
   the names actually registered in ``src/`` — via the same extraction
   code ``tools/repro-lint`` uses (imported from ``repro_lint.contracts``,
   shared, not duplicated).

Exit status is non-zero when any check fails; failures are reported
with ``file:line`` so they are clickable in CI logs.

Usage::

    PYTHONPATH=src python tools/check_docs.py [files...]

With no arguments, checks README.md and every ``docs/*.md``.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from repro_lint import contracts  # noqa: E402

FENCE_RE = re.compile(r"^(`{3,})(.*)$")
# [text](target) — good enough for our own docs; skips images' ! on purpose
# (image targets are checked the same way).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def default_documents():
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return docs


def extract_blocks(text):
    """Yield ``(info_string, start_line, source)`` per fenced code block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i])
        if not match:
            i += 1
            continue
        fence, info = match.group(1), match.group(2).strip().lower()
        start = i + 2  # 1-indexed line of the block's first code line
        body = []
        i += 1
        while i < len(lines) and not lines[i].startswith(fence):
            body.append(lines[i])
            i += 1
        i += 1  # closing fence
        yield info, start, "\n".join(body) + "\n"


def check_links(doc, text):
    """Return error strings for relative link targets that do not exist."""
    errors = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL_SCHEMES):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure intra-document anchor
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{doc}:{lineno}: broken link -> {target}")
    return errors


def check_python_blocks(doc, text):
    """Execute ``python run`` blocks (shared namespace, temp cwd) and
    compile-check plain ``python`` blocks.  Returns error strings."""
    errors = []
    namespace = {"__name__": "__docs__"}
    original_cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        os.chdir(scratch)
        try:
            for info, start, source in extract_blocks(text):
                if info not in ("python", "python run"):
                    continue
                label = f"{doc}:{start}"
                try:
                    code = compile(source, f"{label} (doc block)", "exec")
                except SyntaxError:
                    errors.append(f"{label}: doc block does not parse\n"
                                  + traceback.format_exc(limit=0).rstrip())
                    continue
                if info != "python run":
                    continue
                try:
                    exec(code, namespace)
                except Exception:
                    errors.append(f"{label}: doc block raised\n"
                                  + traceback.format_exc().rstrip())
                    # Later blocks likely depend on this one; stop the file.
                    break
        finally:
            os.chdir(original_cwd)
    return errors


def check_contract_tables(doc):
    """Verify a doc's contract table against the code registries.

    Only PROTOCOL.md and OPERATIONS.md carry such tables; other
    documents return no errors.  Returns error strings.
    """
    src_root = REPO_ROOT / "src" / "repro"
    findings = []
    if doc.name == "PROTOCOL.md":
        findings = contracts.check_protocol_error_table(src_root, doc)
    elif doc.name == "OPERATIONS.md":
        findings = contracts.check_metrics_catalogue(src_root, doc)
    return [finding.render() for finding in findings]


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    documents = [Path(a).resolve() for a in argv] or default_documents()
    failures = []
    for doc in documents:
        if not doc.exists():
            failures.append(f"{doc}: no such document")
            continue
        text = doc.read_text(encoding="utf-8")
        failures.extend(check_links(doc, text))
        failures.extend(check_python_blocks(doc, text))
        failures.extend(check_contract_tables(doc))
        blocks = list(extract_blocks(text))
        ran = sum(1 for info, _, _ in blocks if info == "python run")
        compiled = sum(1 for info, _, _ in blocks if info == "python")
        print(f"{doc.relative_to(REPO_ROOT)}: "
              f"{ran} block(s) executed, {compiled} compile-checked")
    if failures:
        print("\n--- docs check failures ---", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("docs check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
