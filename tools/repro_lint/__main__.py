"""``python -m repro_lint`` (with ``tools/`` on ``sys.path``)."""

import sys

from repro_lint.cli import main

sys.exit(main())
