"""Targeted invariant lints grown from bugs this repo has actually had.

* ``wall-clock-arith`` — ``time.time()`` may be *stored* (lease stamps,
  trace display timestamps) but never *subtracted or compared*: lag,
  deadline and duration math must use the monotonic clocks, because a
  stepped wall clock turns a replica's lag negative or a deadline into a
  multi-hour hang.

* ``swallowed-exception`` — in the durability hot paths (WAL, admission,
  transport, compaction) a bare/broad handler whose body neither
  re-raises, nor logs, nor even reads the caught exception makes the
  next durability bug invisible; PR 5's WAL seq-gap fix was exactly a
  failure path that needed to stay loud.

* ``ack-before-fsync`` — in the admission commit path, no
  ``Future.set_result`` may appear inside the exclusive write region:
  an update ack *is* a durability ack, so success futures resolve only
  after the region (and its WAL fsync) has exited.  Failure futures are
  exempt — a negative ack promises nothing about disk.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro_lint.model import Finding, SourceFile

RULE_WALLCLOCK = "wall-clock-arith"
RULE_SWALLOW = "swallowed-exception"
RULE_ACK = "ack-before-fsync"

#: Path fragments that mark a file as a durability/serving hot path for
#: the swallowed-exception rule.
HOT_PATHS = (
    "store/wal.py",
    "service/admission.py",
    "service/compaction.py",
    "service/transport/",
)

#: Exception types too broad to swallow silently.
_BROAD_TYPES = {"Exception", "BaseException"}

#: Call names that count as "the handler reported the failure".
_LOG_HINTS = ("log", "warn", "error", "exception", "debug", "info", "print")


def _is_time_time(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "time"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "time"
    )


# --------------------------------------------------------------------- #
# wall-clock-arith
# --------------------------------------------------------------------- #
def check_wall_clock(sources: Sequence[SourceFile]) -> List[Finding]:
    """Flag arithmetic/comparisons on wall-clock readings."""
    findings: List[Finding] = []
    for source in sources:
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tainted: Set[str] = set()
            for stmt in ast.walk(func):
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and _is_time_time(stmt.value)
                ):
                    tainted.add(stmt.targets[0].id)

            def is_wall(node: ast.AST) -> bool:
                if _is_time_time(node):
                    return True
                return isinstance(node, ast.Name) and node.id in tainted

            for node in ast.walk(func):
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                    operands = [node.left, node.right]
                elif isinstance(node, ast.Compare):
                    operands = [node.left, *node.comparators]
                else:
                    continue
                if any(is_wall(operand) for operand in operands):
                    findings.append(
                        Finding(
                            rule=RULE_WALLCLOCK,
                            path=source.relpath,
                            line=node.lineno,
                            message=(
                                "wall-clock time.time() used in lag/deadline"
                                " arithmetic — use time.monotonic() /"
                                " time.perf_counter() (wall clocks step)"
                            ),
                        )
                    )
    return findings


# --------------------------------------------------------------------- #
# swallowed-exception
# --------------------------------------------------------------------- #
def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in _BROAD_TYPES:
            return True
    return False


def _handler_reports(handler: ast.ExceptHandler) -> bool:
    """True when the body re-raises, logs, or reads the caught exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name and any(hint in name.lower() for hint in _LOG_HINTS):
                return True
        if (
            handler.name
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


def check_swallowed(sources: Sequence[SourceFile]) -> List[Finding]:
    """Flag silent broad handlers in the durability hot paths."""
    findings: List[Finding] = []
    for source in sources:
        normalized = source.relpath.replace("\\", "/")
        if not any(fragment in normalized for fragment in HOT_PATHS):
            continue
        for handler in ast.walk(source.tree):
            if not isinstance(handler, ast.ExceptHandler):
                continue
            if _handler_is_broad(handler) and not _handler_reports(handler):
                findings.append(
                    Finding(
                        rule=RULE_SWALLOW,
                        path=source.relpath,
                        line=handler.lineno,
                        message=(
                            "broad except swallows silently in a durability"
                            " hot path — narrow the type, log, or re-raise"
                        ),
                    )
                )
    return findings


# --------------------------------------------------------------------- #
# ack-before-fsync
# --------------------------------------------------------------------- #
def _write_region(func: ast.FunctionDef) -> Optional[ast.With]:
    """The ``with self.<lock>.write():`` statement in ``func``, if any."""
    for node in ast.walk(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "write"
            ):
                return node
    return None


def check_ack_ordering(sources: Sequence[SourceFile]) -> List[Finding]:
    """No success ack inside the admission commit's exclusive region."""
    findings: List[Finding] = []
    for source in sources:
        normalized = source.relpath.replace("\\", "/")
        if not normalized.endswith("service/admission.py"):
            continue
        for func in ast.walk(source.tree):
            if not (
                isinstance(func, ast.FunctionDef) and func.name == "_commit"
            ):
                continue
            region = _write_region(func)
            if region is None:
                findings.append(
                    Finding(
                        rule=RULE_ACK,
                        path=source.relpath,
                        line=func.lineno,
                        message=(
                            "_commit has no exclusive write region — the"
                            " fsync-before-ack invariant is unverifiable"
                        ),
                    )
                )
                continue
            end = region.end_lineno or region.lineno
            for node in ast.walk(region):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_result"
                    and region.lineno <= node.lineno <= end
                ):
                    findings.append(
                        Finding(
                            rule=RULE_ACK,
                            path=source.relpath,
                            line=node.lineno,
                            message=(
                                "future resolved inside the exclusive write"
                                " region — acks must follow the WAL fsync"
                                " (update ack == durability ack)"
                            ),
                        )
                    )
    return findings


def run_all(sources: Sequence[SourceFile]) -> List[Finding]:
    """All invariant lints over ``sources``."""
    findings: List[Finding] = []
    findings.extend(check_wall_clock(sources))
    findings.extend(check_swallowed(sources))
    findings.extend(check_ack_ordering(sources))
    return findings
