"""Fixture service: a two-op dispatch vocabulary."""


class QueryService:
    def _dispatch(self, op, payload):
        if op == "add":
            return self._add(payload)
        if op == "stats":
            return self._stats()
        raise ValueError(op)

    def _add(self, payload):
        return {"admitted": len(payload)}

    def _stats(self):
        return {"ok": True}
