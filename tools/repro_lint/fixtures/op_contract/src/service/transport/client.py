"""Seeded violation: the client auto-retries a non-idempotent op.

``add`` is in ``NONIDEMPOTENT_OPS`` — retrying it after an ambiguous
failure can apply the batch twice.  The linter must flag the divergence
between this private set and framing's ``IDEMPOTENT_OPS``.
"""

_IDEMPOTENT_OPS = frozenset({"stats", "add"})


class ServiceClient:
    def add(self, payload):
        return self._call({"op": "add", "payload": payload})

    def stats(self):
        return self._call({"op": "stats"})

    def hello(self):
        return self._call({"op": "hello"})

    def _call(self, request):
        return request
