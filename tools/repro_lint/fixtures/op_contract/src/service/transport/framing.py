"""Fixture framing: the wire-contract idempotency partition."""

IDEMPOTENT_OPS = frozenset({"stats"})
NONIDEMPOTENT_OPS = frozenset({"add"})
