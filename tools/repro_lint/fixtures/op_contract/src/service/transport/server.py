"""Fixture server: transport ops and the per-op metric vocabulary."""

_TRANSPORT_OPS = frozenset({"hello"})
_METRIC_OPS = ("add", "stats", "batch", "other")
