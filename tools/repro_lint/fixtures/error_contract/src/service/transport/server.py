"""Seeded violation: the error map uses a constant the registry lacks."""

from repro.service.transport.framing import E_BADREQ  # noqa: F401

_ERROR_CODE_BY_TYPE = {
    "ValidationError": E_BADREQ,
    "RuntimeError": E_OOPS,  # noqa: F821 - deliberately not in the registry
}
