"""Fixture framing module: the two-code E_* registry."""

E_BADREQ = "bad_request"
E_INTERNAL = "internal"
