"""Seeded violations: wall-clock readings in lag and deadline math."""

import time


def lag_seconds(last_applied):
    now = time.time()
    return now - last_applied


def deadline_passed(deadline):
    return time.time() > deadline
