"""Benign clock usage: monotonic math, wall clock only stored."""

import time


def elapsed(started_monotonic):
    return time.monotonic() - started_monotonic


def stamp():
    issued_at = time.time()
    return {"issued_at": issued_at}
