"""Benign variants the lock rules must not flag.

Both methods take the locks in the same order (no cycle), and the fsync
happens after the lock is released (no blocking-under-lock).
"""

import os
import threading


class Ordered:
    def __init__(self, fd):
        self._meta = threading.Lock()
        self._data = threading.Lock()
        self._fd = fd
        self.pending = []

    def stage(self, record):
        with self._meta:
            with self._data:
                self.pending.append(record)

    def promote(self):
        with self._meta:
            with self._data:
                batch, self.pending = self.pending, []
        os.fsync(self._fd)
        return batch
