"""Benign handlers: broad-but-logged, and narrow-and-silent."""

import logging

log = logging.getLogger(__name__)


def close_loudly(sock):
    try:
        sock.close()
    except Exception:
        log.warning("close failed", exc_info=True)


def close_best_effort(sock):
    try:
        sock.close()
    except OSError:
        pass
