"""Benign commit: success futures resolve only after the write region."""


class AdmissionQueue:
    def _commit(self, batch):
        with self._lock.write():
            self._wal.append(batch)
            self._wal.fsync()
        for item in batch:
            item.future.set_result(True)
