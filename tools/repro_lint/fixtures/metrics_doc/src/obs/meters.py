"""Seeded violation: registers a metric the catalogue never mentions."""

from repro.obs import get_registry

registry = get_registry()
_hits = registry.counter("repro_cache_hits_total", "engine cache hits")
_lag = registry.gauge("repro_replica_lag_seconds", "replica staleness")
_ghost = registry.counter("repro_ghost_total", "not in OPERATIONS.md")
