"""Fixture failpoint registry: one fired name, one orphan."""

CATALOGUE = {
    "wal.before_fsync": "crash between append and fsync",
    "repl.drop_chunk": "never fired anywhere - orphaned entry",
}


def fire(name):
    del name
