"""Seeded violation: fires a failpoint the CATALOGUE does not list."""

from repro.chaos.failpoints import fire


def append(record):
    fire("wal.before_fsync")
    fire("wal.after_rename")
    return record
