"""Seeded violation: success futures resolved inside the write region.

The fsync lives at the end of the region; resolving here acks an update
that a crash between ``set_result`` and the fsync would lose.
"""


class AdmissionQueue:
    def _commit(self, batch):
        with self._lock.write():
            self._wal.append(batch)
            for item in batch:
                item.future.set_result(True)
