"""Seeded violations: blocking I/O reachable while a lock is held.

``flush`` fsyncs directly under the lock; ``push`` reaches ``sendall``
through a helper, so the transitive call-summary propagation must carry
the blocking call up to the locked region.
"""

import os
import threading


class Flusher:
    def __init__(self, fd, sock):
        self._lock = threading.Lock()
        self._fd = fd
        self._sock = sock

    def flush(self):
        with self._lock:
            os.fsync(self._fd)

    def push(self, payload):
        with self._lock:
            self._send(payload)

    def _send(self, payload):
        self._sock.sendall(payload)
