"""Seeded violation: a silent broad handler on the transport hot path."""


def close_quietly(sock):
    try:
        sock.close()
    except Exception:
        pass
