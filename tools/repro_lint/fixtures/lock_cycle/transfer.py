"""Seeded violation: the classic two-lock transfer deadlock.

``forward`` takes debit -> credit, ``backward`` takes credit -> debit;
two threads running one each can deadlock.  The linter must report the
cycle between the two lock nodes.
"""

import threading


class Transfer:
    def __init__(self):
        self._debit = threading.Lock()
        self._credit = threading.Lock()
        self.balance = 0

    def forward(self, amount):
        with self._debit:
            with self._credit:
                self.balance += amount

    def backward(self, amount):
        with self._credit:
            with self._debit:
                self.balance -= amount
