"""Shared plumbing for the static half: findings, sources, waivers.

A *finding* is one rule violation anchored at a ``path:line``.  Findings
can be waived in the source itself with a line pragma::

    with self._sync_lock:  # repro-lint: allow[blocking-under-lock]

The pragma names the rule(s) it waives and applies to findings reported
on that exact line — which is why rules anchor their findings at the
statement that *owns* the decision (the ``with`` line for lock-region
rules, the ``except`` line for handler rules), so one pragma sits next
to one justifying comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

#: ``# repro-lint: allow[rule-a,rule-b]``
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*allow\[([a-z0-9_,\-\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """Format as a clickable ``path:line: [rule] message`` string."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed Python source file plus its per-line waiver pragmas."""

    path: Path
    relpath: str  #: path relative to the analysis root (stable in messages)
    text: str
    tree: ast.AST
    waivers: Dict[int, Set[str]] = field(default_factory=dict)

    def waived(self, line: int, rule: str) -> bool:
        """True when ``line`` carries an ``allow[...]`` pragma for ``rule``."""
        return rule in self.waivers.get(line, set())


def parse_waivers(text: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids waived on that line."""
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            waivers[lineno] = {rule for rule in rules if rule}
    return waivers


def load_source(path: Path, root: Path) -> Optional[SourceFile]:
    """Parse one file; ``None`` when it does not parse (other gates own
    syntax errors — the lint pass should not double-report them)."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return None
    try:
        rel = str(path.relative_to(root))
    except ValueError:
        rel = str(path)
    return SourceFile(
        path=path,
        relpath=rel,
        text=text,
        tree=tree,
        waivers=parse_waivers(text),
    )


def iter_python_files(root: Path) -> Iterable[Path]:
    """Every ``*.py`` under ``root`` (or ``root`` itself when a file)."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def load_tree(root: Path) -> List[SourceFile]:
    """Load every parseable Python file under ``root``."""
    sources = []
    for path in iter_python_files(root):
        source = load_source(path, root if root.is_dir() else root.parent)
        if source is not None:
            sources.append(source)
    return sources


def drop_waived(findings: Iterable[Finding], sources: List[SourceFile]) -> List[Finding]:
    """Filter out findings whose anchor line carries a matching pragma."""
    by_rel = {source.relpath: source for source in sources}
    kept = []
    for finding in findings:
        source = by_rel.get(finding.path)
        if source is not None and source.waived(finding.line, finding.rule):
            continue
        kept.append(finding)
    return kept
