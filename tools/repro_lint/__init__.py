"""repro_lint — repo-specific static analysis + runtime lock checking.

Two halves:

* **Static** (``repro-lint`` CLI / ``cli.py``): stdlib-``ast`` passes over
  ``src/`` that machine-check the concurrency and wire-contract invariants
  documented in ``docs/INVARIANTS.md`` — lock-order discipline, blocking
  calls under hot-path locks, the ``E_*`` error-code registry vs its
  consumers, the op/idempotency vocabulary, failpoint and metric
  registries vs their docs, wall-clock-free lag math, no swallowed
  exceptions in durability hot paths, and fsync-before-ack ordering in
  the admission commit path.

* **Runtime** (``lockcheck.py``): an instrumented-lock shim (activated by
  ``REPRO_LOCKCHECK=1``, zero-cost when off) that records the global
  lock-acquisition-order graph across threads while the tier-2
  concurrency/chaos suites run, and fails on cycles or over-threshold
  holds.

No third-party dependencies; everything here runs on the stdlib alone so
the lint gate cannot rot when the runtime environment is minimal.
"""

from repro_lint.model import Finding  # noqa: F401

__all__ = ["Finding"]
